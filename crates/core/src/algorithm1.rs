//! Calculation range determination (the paper's Algorithm 1).
//!
//! For every block, determine which of its output elements are actually
//! consumed downstream — its **calculation range**. The paper phrases this
//! as a recursion from the root blocks: "initially determine the calculation
//! range of the child blocks, which are then employed to determine the
//! calculation range of their parent blocks".
//!
//! Semantics (per output port `B:o`):
//!
//! - If `B:o` has consumers, its range is the union over each consumer input
//!   `C:i` of the elements `C` needs from that input, which in turn is the
//!   union over `C`'s output ports `o'` of `iomap(C, o', i)` applied to
//!   `C`'s own range on `o'`.
//! - If `B:o` has no consumers (paper line 16–18: `b_c = ∅`), the full
//!   output is kept — unless [`RangeOptions::eliminate_dead_ends`] opts into
//!   the more aggressive empty range.
//! - Sinks anchor the recursion: an `Outport` needs its whole input (model
//!   outputs must be complete), a `Terminator` needs nothing (so chains
//!   feeding only terminators dissolve), and stateful blocks (`UnitDelay`)
//!   need their whole input regardless of consumption, which also breaks
//!   feedback cycles.

use crate::IoMappings;
use frodo_graph::Dfg;
use frodo_model::{BlockId, BlockKind, InPort, OutPort};
use frodo_ranges::IndexSet;
use std::collections::BTreeMap;

/// Which engine computes the ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RangeEngine {
    /// The paper's Algorithm 1: depth-first recursion from the roots with
    /// memoization for diamond sharing.
    #[default]
    Recursive,
    /// An equivalent single reverse-topological sweep.
    Iterative,
}

/// Tuning knobs for range determination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RangeOptions {
    /// Engine selection (the two engines produce identical results).
    pub engine: RangeEngine,
    /// When `true`, output ports with no consumers get an *empty* range
    /// (dead-code elimination) instead of the paper's conservative full
    /// range. Off by default for paper fidelity.
    pub eliminate_dead_ends: bool,
}

/// The calculation range of every output port in a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranges {
    map: BTreeMap<OutPort, IndexSet>,
}

impl Ranges {
    /// The calculation range of `block`'s output `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port was not analyzed (not part of the graph).
    pub fn out(&self, block: BlockId, port: usize) -> &IndexSet {
        &self.map[&OutPort::new(block, port)]
    }

    /// The calculation range, if the port exists.
    pub fn try_out(&self, block: BlockId, port: usize) -> Option<&IndexSet> {
        self.map.get(&OutPort::new(block, port))
    }

    /// Iterates over all `(port, range)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&OutPort, &IndexSet)> {
        self.map.iter()
    }

    /// Number of analyzed output ports.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The elements a consumer block needs from one of its input ports,
/// given the consumer's own output ranges.
fn input_need(
    dfg: &Dfg,
    maps: &IoMappings,
    ranges_of: &mut dyn FnMut(OutPort) -> IndexSet,
    port: InPort,
) -> IndexSet {
    let block = port.block;
    let kind = &dfg.model().block(block).kind;
    let in_len = dfg.shapes().input(block, port.port).numel();
    match kind {
        // Model outputs must be produced in full.
        BlockKind::Outport { .. } => IndexSet::full(in_len),
        // Discarded data is never needed.
        BlockKind::Terminator => IndexSet::new(),
        // State must be maintained every step, independent of consumption.
        k if k.is_stateful() => IndexSet::full(in_len),
        _ => {
            let n_out = kind.num_outputs();
            let mut need = IndexSet::new();
            for o in 0..n_out {
                let out_range = ranges_of(OutPort::new(block, o));
                let m = maps.map(block, o, port.port);
                need = need.union(&m.apply(&out_range));
            }
            need
        }
    }
}

fn full_range_of(dfg: &Dfg, port: OutPort) -> IndexSet {
    IndexSet::full(dfg.shapes().output(port.block, port.port).numel())
}

/// Computes the calculation range of every output port.
///
/// Dispatches on [`RangeOptions::engine`]; both engines implement the same
/// semantics (see the module docs) and are tested to agree.
pub fn determine_ranges(dfg: &Dfg, maps: &IoMappings, opts: RangeOptions) -> Ranges {
    match opts.engine {
        RangeEngine::Recursive => recursive_ranges(dfg, maps, opts),
        RangeEngine::Iterative => iterative_ranges(dfg, maps, opts),
    }
}

/// The no-elimination baseline: every output port keeps its full range.
///
/// Used by the comparison generators (Simulink-style, DFSynth-style, HCG-
/// style), which the paper characterizes as lacking range optimization.
pub fn full_ranges(dfg: &Dfg) -> Ranges {
    let mut map = BTreeMap::new();
    for (id, block) in dfg.model().iter() {
        for o in 0..block.kind.num_outputs() {
            let port = OutPort::new(id, o);
            map.insert(port, full_range_of(dfg, port));
        }
    }
    Ranges { map }
}

/// Paper-faithful engine: depth-first traversal from the root blocks.
///
/// `rangeDetermine` (Algorithm 1 lines 1–13) walks the roots; `recursive`
/// (lines 14–27) computes each block's range from its children's ranges. We
/// memoize per output port so diamonds are computed once, and run the
/// depth-first walk on an explicit work stack so arbitrarily deep models
/// (thousands of chained blocks) cannot overflow the call stack.
fn recursive_ranges(dfg: &Dfg, maps: &IoMappings, opts: RangeOptions) -> Ranges {
    let mut memo: BTreeMap<OutPort, IndexSet> = BTreeMap::new();

    /// The output ports whose ranges a `Finish` of `port` will read:
    /// every output of every consumer whose input requirement actually
    /// depends on its own ranges (sinks and stateful blocks do not).
    fn child_ports(dfg: &Dfg, port: OutPort) -> Vec<OutPort> {
        let mut out = Vec::new();
        for c in dfg.consumers_of(port) {
            let kind = &dfg.model().block(c.block).kind;
            let independent = matches!(kind, BlockKind::Outport { .. } | BlockKind::Terminator)
                || kind.is_stateful();
            if independent {
                continue;
            }
            for o in 0..kind.num_outputs() {
                out.push(OutPort::new(c.block, o));
            }
        }
        out
    }

    enum Frame {
        Visit(OutPort),
        Finish(OutPort),
    }

    let mut stack: Vec<Frame> = Vec::new();
    // Lines 2–11: find the roots and start the depth-first walk from them;
    // a defensive sweep afterwards covers ports a root never reaches.
    for root in dfg.roots() {
        for o in 0..dfg.model().block(root).kind.num_outputs() {
            stack.push(Frame::Visit(OutPort::new(root, o)));
        }
    }
    for (id, block) in dfg.model().iter() {
        for o in 0..block.kind.num_outputs() {
            stack.push(Frame::Visit(OutPort::new(id, o)));
        }
    }

    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Visit(port) => {
                if memo.contains_key(&port) {
                    continue;
                }
                stack.push(Frame::Finish(port));
                for child in child_ports(dfg, port) {
                    if !memo.contains_key(&child) {
                        stack.push(Frame::Visit(child));
                    }
                }
            }
            Frame::Finish(port) => {
                if memo.contains_key(&port) {
                    continue;
                }
                // A diamond can pop this Finish before a shared child's own
                // Finish (its frame may sit deeper in the stack); reschedule
                // until every child range is final.
                let missing: Vec<OutPort> = child_ports(dfg, port)
                    .into_iter()
                    .filter(|p| !memo.contains_key(p))
                    .collect();
                if !missing.is_empty() {
                    stack.push(Frame::Finish(port));
                    for child in missing {
                        stack.push(Frame::Visit(child));
                    }
                    continue;
                }
                let consumers = dfg.consumers_of(port);
                let range = if consumers.is_empty() {
                    // Algorithm 1 lines 16–18: no children ⇒ keep the full
                    // output, unless dead-end elimination is enabled.
                    if opts.eliminate_dead_ends {
                        IndexSet::new()
                    } else {
                        full_range_of(dfg, port)
                    }
                } else {
                    // Lines 20–25: merge the input ranges of each child.
                    let mut r = IndexSet::new();
                    for c in consumers {
                        let mut ranges_of = |p: OutPort| {
                            memo.get(&p)
                                .cloned()
                                .expect("child ranges are final before Finish")
                        };
                        r = r.union(&input_need(dfg, maps, &mut ranges_of, c));
                    }
                    r
                };
                memo.insert(port, range);
            }
        }
    }
    Ranges { map: memo }
}

/// Iterative engine: one sweep over the reverse topological order.
///
/// Consumers are scheduled after producers, so visiting the translation
/// sequence backwards guarantees every consumer's range is final before its
/// producers are processed. Stateful blocks need no ordering care because
/// their input requirement is constant (full).
fn iterative_ranges(dfg: &Dfg, maps: &IoMappings, opts: RangeOptions) -> Ranges {
    let order = dfg.schedule().expect("a valid Dfg always has a schedule");
    let mut map: BTreeMap<OutPort, IndexSet> = BTreeMap::new();
    for &id in order.iter().rev() {
        let n_out = dfg.model().block(id).kind.num_outputs();
        for o in 0..n_out {
            let port = OutPort::new(id, o);
            let consumers = dfg.consumers_of(port);
            let range = if consumers.is_empty() {
                if opts.eliminate_dead_ends {
                    IndexSet::new()
                } else {
                    full_range_of(dfg, port)
                }
            } else {
                let mut r = IndexSet::new();
                for c in consumers {
                    let mut ranges_of = |p: OutPort| {
                        map.get(&p)
                            .cloned()
                            // A consumer not yet final can only be a delay
                            // cycle, whose input need ignores this value.
                            .unwrap_or_else(|| full_range_of(dfg, p))
                    };
                    r = r.union(&input_need(dfg, maps, &mut ranges_of, c));
                }
                r
            };
            map.insert(port, range);
        }
    }
    Ranges { map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_model::{Block, Model, SelectorMode, Tensor};
    use frodo_ranges::Shape;

    fn analyze(m: Model, opts: RangeOptions) -> (Dfg, IoMappings, Ranges) {
        let dfg = Dfg::new(m).unwrap();
        let maps = IoMappings::derive(&dfg);
        let ranges = determine_ranges(&dfg, &maps, opts);
        (dfg, maps, ranges)
    }

    /// Figure 1 / Figure 5 model: in(50) ⊛ k(11) → selector [5,55) → out.
    fn figure1() -> Model {
        let mut m = Model::new("Convolution");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: Tensor::vector(vec![0.1; 11]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        m
    }

    #[test]
    fn figure5_conv_range_shrinks_to_5_55() {
        // Paper Figure 5 Step 1: the convolution's range goes [0,60) → [5,55).
        let (dfg, _, ranges) = analyze(figure1(), RangeOptions::default());
        let conv = dfg.model().find("conv").unwrap();
        assert_eq!(ranges.out(conv, 0), &IndexSet::from_range(5, 55));
        // the selector still produces its whole (already minimal) output
        let sel = dfg.model().find("sel").unwrap();
        assert_eq!(ranges.out(sel, 0), &IndexSet::full(50));
        // and the model input stays fully needed (same convolution reads all)
        let inp = dfg.model().find("in").unwrap();
        assert_eq!(ranges.out(inp, 0), &IndexSet::full(50));
    }

    #[test]
    fn both_engines_agree_on_figure1() {
        let (_, _, rec) = analyze(figure1(), RangeOptions::default());
        let (_, _, it) = analyze(
            figure1(),
            RangeOptions {
                engine: RangeEngine::Iterative,
                ..Default::default()
            },
        );
        assert_eq!(rec, it);
    }

    #[test]
    fn narrower_selector_shrinks_source_too() {
        // selecting deep in the middle lets even the Inport range shrink
        let mut m = Model::new("narrow");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(100),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 40, end: 50 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        let (dfg, _, ranges) = analyze(m, RangeOptions::default());
        let g = dfg.model().find("g").unwrap();
        let i = dfg.model().find("in").unwrap();
        assert_eq!(ranges.out(g, 0), &IndexSet::from_range(40, 50));
        assert_eq!(ranges.out(i, 0), &IndexSet::from_range(40, 50));
    }

    #[test]
    fn fan_out_unions_consumer_needs() {
        // two selectors on the same gain: ranges union
        let mut m = Model::new("fan");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(100),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let s1 = m.add(Block::new(
            "s1",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 0, end: 10 },
            },
        ));
        let s2 = m.add(Block::new(
            "s2",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 50, end: 70 },
            },
        ));
        let o1 = m.add(Block::new("o1", BlockKind::Outport { index: 0 }));
        let o2 = m.add(Block::new("o2", BlockKind::Outport { index: 1 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, s1, 0).unwrap();
        m.connect(g, 0, s2, 0).unwrap();
        m.connect(s1, 0, o1, 0).unwrap();
        m.connect(s2, 0, o2, 0).unwrap();
        let (dfg, _, ranges) = analyze(m, RangeOptions::default());
        let g = dfg.model().find("g").unwrap();
        let expected = IndexSet::from_range(0, 10).union(&IndexSet::from_range(50, 70));
        assert_eq!(ranges.out(g, 0), &expected);
    }

    #[test]
    fn reduction_blocks_stop_propagation() {
        // sum-of-elements downstream forces the full upstream range even
        // though a selector follows the sum
        let mut m = Model::new("red");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let r = m.add(Block::new("r", BlockKind::SumOfElements));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, r, 0).unwrap();
        m.connect(r, 0, o, 0).unwrap();
        let (dfg, _, ranges) = analyze(m, RangeOptions::default());
        let g = dfg.model().find("g").unwrap();
        assert_eq!(ranges.out(g, 0), &IndexSet::full(50));
    }

    #[test]
    fn terminator_chain_dissolves() {
        // a gain feeding only a terminator computes nothing
        let mut m = Model::new("dead");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(8),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let t = m.add(Block::new("t", BlockKind::Terminator));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, t, 0).unwrap();
        m.connect(i, 0, o, 0).unwrap();
        let (dfg, _, ranges) = analyze(m, RangeOptions::default());
        let g = dfg.model().find("g").unwrap();
        assert!(ranges.out(g, 0).is_empty());
    }

    #[test]
    fn dead_end_default_keeps_full_range() {
        // an unconsumed output port keeps its full range (paper lines 16-18)
        let mut m = Model::new("dangling");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(8),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(i, 0, o, 0).unwrap();
        // g's output goes nowhere
        let (dfg, _, ranges) = analyze(m.clone(), RangeOptions::default());
        let gid = dfg.model().find("g").unwrap();
        assert_eq!(ranges.out(gid, 0), &IndexSet::full(8));

        // ...unless dead-end elimination is on
        let (dfg, _, ranges) = analyze(
            m,
            RangeOptions {
                eliminate_dead_ends: true,
                ..Default::default()
            },
        );
        let gid = dfg.model().find("g").unwrap();
        assert!(ranges.out(gid, 0).is_empty());
    }

    #[test]
    fn delay_feedback_is_fully_maintained() {
        // accumulator: add -> delay -> add; the delay keeps everything alive
        let mut m = Model::new("acc");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(6),
            },
        ));
        let add = m.add(Block::new("add", BlockKind::Add));
        let z = m.add(Block::new(
            "z",
            BlockKind::UnitDelay {
                initial: Tensor::vector(vec![0.0; 6]),
            },
        ));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 0, end: 2 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, add, 0).unwrap();
        m.connect(z, 0, add, 1).unwrap();
        m.connect(add, 0, z, 0).unwrap();
        m.connect(add, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        let (dfg, _, ranges) = analyze(m, RangeOptions::default());
        let add = dfg.model().find("add").unwrap();
        // despite the selector, the delay's state keeps the add full
        assert_eq!(ranges.out(add, 0), &IndexSet::full(6));
    }

    #[test]
    fn pad_then_selector_composes() {
        // in(10) -> pad(3,3) -> selector [0, 5) -> out
        // selector needs pad outputs [0,5); pad outputs 0..3 are padding, so
        // the source only needs elements [0, 2)
        let mut m = Model::new("padsel");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(10),
            },
        ));
        let p = m.add(Block::new(
            "p",
            BlockKind::Pad {
                left: 3,
                right: 3,
                value: 0.0,
            },
        ));
        let s = m.add(Block::new(
            "s",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 0, end: 5 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, p, 0).unwrap();
        m.connect(p, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        let (dfg, _, ranges) = analyze(m, RangeOptions::default());
        let i = dfg.model().find("in").unwrap();
        let p = dfg.model().find("p").unwrap();
        assert_eq!(ranges.out(p, 0), &IndexSet::from_range(0, 5));
        assert_eq!(ranges.out(i, 0), &IndexSet::from_range(0, 2));
    }

    #[test]
    fn full_ranges_matches_shapes() {
        let dfg = Dfg::new(figure1()).unwrap();
        let full = full_ranges(&dfg);
        let conv = dfg.model().find("conv").unwrap();
        assert_eq!(full.out(conv, 0), &IndexSet::full(60));
        assert_eq!(full.len(), 4); // in, k, conv, sel (outport has no outputs)
    }
}
