//! Optimizable-block classification and savings reporting.

use crate::Ranges;
use frodo_graph::Dfg;
use frodo_model::{BlockId, OutPort};
use std::fmt;

/// Per-block statistics of the redundancy elimination.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockStat {
    /// The block.
    pub block: BlockId,
    /// Block name for reporting.
    pub name: String,
    /// Block type name.
    pub type_name: &'static str,
    /// Total output elements across all output ports.
    pub full_elements: usize,
    /// Output elements remaining after range determination.
    pub kept_elements: usize,
    /// Whether the block's range shrank (the paper's *optimizable* blocks).
    pub optimizable: bool,
}

impl BlockStat {
    /// Elements whose computation was eliminated.
    pub fn eliminated(&self) -> usize {
        self.full_elements - self.kept_elements
    }

    /// Fraction of the output still computed (1.0 = nothing eliminated).
    pub fn coverage(&self) -> f64 {
        if self.full_elements == 0 {
            1.0
        } else {
            self.kept_elements as f64 / self.full_elements as f64
        }
    }
}

/// Summary of a redundancy-elimination pass over one model: which blocks are
/// optimizable and how many element computations were eliminated.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationReport {
    stats: Vec<BlockStat>,
}

impl OptimizationReport {
    /// Builds the report by comparing ranges against full output shapes.
    pub fn build(dfg: &Dfg, ranges: &Ranges) -> Self {
        let stats = dfg
            .model()
            .iter()
            .map(|(id, block)| {
                let n_out = block.kind.num_outputs();
                let mut full = 0;
                let mut kept = 0;
                for o in 0..n_out {
                    let numel = dfg.shapes().output(id, o).numel();
                    full += numel;
                    kept += ranges
                        .try_out(id, o)
                        .map(|r| r.clamp_to(numel).count())
                        .unwrap_or(numel);
                }
                BlockStat {
                    block: id,
                    // the report outlives the analysis it is built from, so
                    // each row owns its display name
                    name: block.name.clone(),
                    type_name: block.kind.type_name(),
                    full_elements: full,
                    kept_elements: kept,
                    optimizable: kept < full,
                }
            })
            .collect();
        OptimizationReport { stats }
    }

    /// Per-block statistics, in block-id order.
    pub fn stats(&self) -> &[BlockStat] {
        &self.stats
    }

    /// The stat of one block.
    ///
    /// # Panics
    ///
    /// Panics if the block is not part of the analyzed model.
    pub fn stat(&self, block: BlockId) -> &BlockStat {
        &self.stats[block.index()]
    }

    /// The blocks whose calculation range shrank.
    pub fn optimizable_blocks(&self) -> Vec<BlockId> {
        self.stats
            .iter()
            .filter(|s| s.optimizable)
            .map(|s| s.block)
            .collect()
    }

    /// Total output elements across all blocks, before elimination.
    pub fn total_elements(&self) -> usize {
        self.stats.iter().map(|s| s.full_elements).sum()
    }

    /// Total element computations eliminated.
    pub fn total_eliminated(&self) -> usize {
        self.stats.iter().map(BlockStat::eliminated).sum()
    }

    /// Overall fraction of element computations eliminated.
    pub fn elimination_ratio(&self) -> f64 {
        let total = self.total_elements();
        if total == 0 {
            0.0
        } else {
            self.total_eliminated() as f64 / total as f64
        }
    }
}

impl fmt::Display for OptimizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "redundancy elimination: {}/{} blocks optimizable, {}/{} elements eliminated ({:.1}%)",
            self.optimizable_blocks().len(),
            self.stats.len(),
            self.total_eliminated(),
            self.total_elements(),
            100.0 * self.elimination_ratio()
        )?;
        for s in &self.stats {
            if s.optimizable {
                writeln!(
                    f,
                    "  {} <{}>: {} -> {} elements",
                    s.name, s.type_name, s.full_elements, s.kept_elements
                )?;
            }
        }
        Ok(())
    }
}

/// Recomputes, for reporting, which output ports carry reduced ranges.
pub(crate) fn reduced_ports(dfg: &Dfg, ranges: &Ranges) -> Vec<OutPort> {
    let mut out = Vec::new();
    for (id, block) in dfg.model().iter() {
        for o in 0..block.kind.num_outputs() {
            let numel = dfg.shapes().output(id, o).numel();
            if let Some(r) = ranges.try_out(id, o) {
                if r.clamp_to(numel).count() < numel {
                    out.push(OutPort::new(id, o));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{determine_ranges, IoMappings, RangeOptions};
    use frodo_model::{Block, BlockKind, Model, SelectorMode, Tensor};
    use frodo_ranges::Shape;

    fn figure1_report() -> (Dfg, OptimizationReport) {
        let mut m = Model::new("Convolution");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: Tensor::vector(vec![0.1; 11]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        let dfg = Dfg::new(m, &frodo_obs::Trace::noop()).unwrap();
        let maps = IoMappings::derive(&dfg);
        let ranges = determine_ranges(&dfg, &maps, RangeOptions::default());
        let report = OptimizationReport::build(&dfg, &ranges);
        (dfg, report)
    }

    #[test]
    fn conv_is_the_optimizable_block() {
        let (dfg, report) = figure1_report();
        let conv = dfg.model().find("conv").unwrap();
        assert_eq!(report.optimizable_blocks(), vec![conv]);
        let stat = report.stat(conv);
        assert_eq!(stat.full_elements, 60);
        assert_eq!(stat.kept_elements, 50);
        assert_eq!(stat.eliminated(), 10);
        assert!((stat.coverage() - 50.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn totals_add_up() {
        let (_, report) = figure1_report();
        assert_eq!(report.total_eliminated(), 10);
        assert!(report.elimination_ratio() > 0.0);
        assert!(report.to_string().contains("conv"));
    }

    #[test]
    fn reduced_ports_lists_conv_output() {
        let (dfg, _) = figure1_report();
        let maps = IoMappings::derive(&dfg);
        let ranges = determine_ranges(&dfg, &maps, RangeOptions::default());
        let ports = reduced_ports(&dfg, &ranges);
        let conv = dfg.model().find("conv").unwrap();
        assert_eq!(ports, vec![OutPort::new(conv, 0)]);
    }
}
