//! FRODO's primary contribution: redundancy elimination for data-intensive
//! Simulink models.
//!
//! The pipeline (paper Figure 2) has two components:
//!
//! 1. **Model analysis** — [`Analysis::run`] flattens the model, constructs
//!    the dataflow graph, and derives the I/O mapping of every block from the
//!    block property library ([`IoMappings`]).
//! 2. **Redundancy elimination** — [`determine_ranges`] implements the
//!    paper's Algorithm 1: starting from the graph's sinks it recursively
//!    determines every block's *calculation range*; blocks whose range
//!    shrank below their full output are *optimizable*
//!    ([`Analysis::is_optimizable`]) and receive concise code downstream.
//!
//! Three interchangeable engines implement Algorithm 1 — the paper's
//! recursion ([`RangeEngine::Recursive`]), an iterative reverse-topological
//! pass ([`RangeEngine::Iterative`]), and a level-scheduled multi-threaded
//! fan-out ([`RangeEngine::Parallel`]) — which are tested to agree
//! exactly on every model.
//!
//! # Example
//!
//! The paper's Figure-1 convolution model: the `Selector` keeps only outputs
//! `[5, 55)` of the full convolution, so the `Convolution` block's
//! calculation range shrinks from 60 to 50 elements:
//!
//! ```
//! use frodo_core::Analysis;
//! use frodo_model::{Block, BlockKind, Model, SelectorMode, Tensor};
//! use frodo_ranges::{IndexSet, Shape};
//!
//! # fn main() -> Result<(), frodo_model::ModelError> {
//! let mut m = Model::new("Convolution");
//! let i = m.add(Block::new("in", BlockKind::Inport { index: 0, shape: Shape::Vector(50) }));
//! let k = m.add(Block::new("k", BlockKind::Constant { value: Tensor::vector(vec![0.1; 11]) }));
//! let c = m.add(Block::new("conv", BlockKind::Convolution));
//! let s = m.add(Block::new("sel", BlockKind::Selector {
//!     mode: SelectorMode::StartEnd { start: 5, end: 55 },
//! }));
//! let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
//! m.connect(i, 0, c, 0)?;
//! m.connect(k, 0, c, 1)?;
//! m.connect(c, 0, s, 0)?;
//! m.connect(s, 0, o, 0)?;
//!
//! let analysis = Analysis::run(m)?;
//! let conv = analysis.dfg().model().find("conv").unwrap();
//! assert_eq!(analysis.range(conv, 0), &IndexSet::from_range(5, 55));
//! assert!(analysis.is_optimizable(conv));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm1;
mod classify;
pub mod explain;
pub mod incremental;
mod iomap;
mod pipeline;

pub use algorithm1::{
    determine_ranges, determine_ranges_with_stats, full_ranges, RangeEngine, RangeOptions,
    RangeStats, Ranges,
};
pub use classify::{BlockStat, OptimizationReport};
pub use iomap::IoMappings;
pub use pipeline::Analysis;
