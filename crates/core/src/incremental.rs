//! Incremental range analysis at region granularity.
//!
//! [`analyze_incremental`] produces the same [`Analysis`] artifact as
//! [`Analysis::run_traced`], but computes Algorithm 1 region by region
//! (see [`frodo_graph::partition_regions`]) and caches each region's
//! calculation ranges in a caller-owned [`RegionCache`]. Resubmitting an
//! edited model re-runs Algorithm 1 only on the regions whose *content*
//! or *boundary demand* changed — on a one-block edit of a large model
//! that is typically a single region.
//!
//! Soundness rests on two facts:
//!
//! - A region's ranges are a pure function of (a) the region's content —
//!   its blocks' kinds, parameters, names, wiring, and port shapes — and
//!   (b) the demand at its boundary: what each external consumer needs
//!   from the region's output ports. Both are digested into the cache
//!   key, together with the options that shape ranges.
//! - The partition's emission order finalizes every external consumer's
//!   ranges before a region is processed (consumers sit in earlier-or-same
//!   chunks of the same component; cross-component consumers are
//!   *independent* and contribute only their kind and input length).
//!
//! Cached entries are keyed by a 128-bit FNV-1a digest and store the
//! ranges of every output port in the region, so a hit replays the whole
//! region without touching [`port_range`].
//!
//! [`port_range`]: crate::algorithm1

use crate::algorithm1::{full_range_of, port_range, EngineCtx};
use crate::{Analysis, IoMappings, OptimizationReport, RangeOptions, Ranges};
use frodo_graph::{partition_regions, Dfg, RegionPartition};
use frodo_model::{BlockId, BlockKind, InPort, Model, ModelError, OutPort};
use frodo_obs::Trace;
use frodo_ranges::IndexSet;
use std::collections::{BTreeMap, HashMap};

/// 128-bit FNV-1a, used for every region digest. Wide enough that a
/// silent collision (which would replay wrong ranges) is not a practical
/// concern, cheap enough to run over every block of every submission.
#[derive(Debug, Clone, Copy)]
struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;

    fn new() -> Self {
        Fnv128(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_usize(&mut self, v: usize) {
        self.write(&(v as u64).to_le_bytes());
    }

    fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }

    fn write_ranges(&mut self, set: &IndexSet) {
        self.write_usize(set.intervals().len());
        for iv in set.intervals() {
            self.write_usize(iv.start);
            self.write_usize(iv.end);
        }
    }

    fn finish(self) -> u128 {
        self.0
    }
}

/// A caller-owned cache of per-region range results, keyed by the region's
/// combined content ⊕ demand ⊕ options digest. Owned by a compile session
/// and carried across submissions; never shared between sessions with
/// different keyed options.
#[derive(Debug, Default)]
pub struct RegionCache {
    map: HashMap<u128, Vec<(OutPort, IndexSet)>>,
}

impl RegionCache {
    /// An empty cache.
    pub fn new() -> Self {
        RegionCache::default()
    }

    /// Number of cached regions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every cached region.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// Region-cache effectiveness of one [`analyze_incremental`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Regions the model was partitioned into.
    pub regions: u64,
    /// Regions whose ranges were replayed from the cache.
    pub hits: u64,
    /// Regions recomputed (the *dirty cone* of the edit).
    pub misses: u64,
    /// Blocks inside the recomputed regions.
    pub dirty_blocks: u64,
}

impl IncrementalStats {
    /// Hit fraction in `[0, 1]`; `1.0` for an empty partition.
    pub fn hit_rate(&self) -> f64 {
        if self.regions == 0 {
            1.0
        } else {
            self.hits as f64 / self.regions as f64
        }
    }
}

/// One region of the analyzed model: its blocks (in intra-region
/// dependency order) and its content digest. Code generation keys its
/// per-region fragment cache off these.
#[derive(Debug, Clone)]
pub struct RegionInfo {
    /// The region's blocks, sorted so consumers precede producers.
    pub blocks: Vec<BlockId>,
    /// 128-bit digest of the region's content (block kinds, parameters,
    /// names, wiring, and port shapes).
    pub content: u128,
}

/// The result of one incremental analysis pass: the standard [`Analysis`]
/// artifact plus the region partition and cache statistics.
#[derive(Debug)]
pub struct IncrementalAnalysis {
    /// The analysis, identical to what [`Analysis::run_traced`] produces
    /// for the same model and options.
    pub analysis: Analysis,
    /// Region-cache effectiveness of this pass.
    pub stats: IncrementalStats,
    /// The regions, in the partition's processing order.
    pub regions: Vec<RegionInfo>,
}

/// Digest of one block's analysis-relevant content: identity, kind (with
/// every parameter, via its `Debug` form — `f64` debug-formats as the
/// shortest round-trip representation, so distinct values digest
/// distinctly), input wiring, and port shapes.
fn block_digest(dfg: &Dfg, id: BlockId) -> u128 {
    let block = dfg.model().block(id);
    let mut h = Fnv128::new();
    h.write_usize(id.index());
    h.write(block.name.as_bytes());
    h.write(format!("{:?}", block.kind).as_bytes());
    for p in 0..block.kind.num_inputs() {
        let src = dfg.source_of(InPort::new(id, p));
        h.write_usize(src.block.index());
        h.write_usize(src.port);
        h.write(format!("{:?}", dfg.shapes().input(id, p)).as_bytes());
    }
    for o in 0..block.kind.num_outputs() {
        h.write(format!("{:?}", dfg.shapes().output(id, o)).as_bytes());
    }
    h.finish()
}

/// Digest of the demand at a region's boundary: for every output port of
/// the region, what each *external* consumer contributes to its range.
/// Independent consumers (sinks, stateful blocks) contribute a class tag
/// and input length; dependent external consumers contribute their I/O
/// mappings and their (already final) output ranges — exactly the inputs
/// [`port_range`] reads.
///
/// [`port_range`]: crate::algorithm1
fn demand_digest(
    dfg: &Dfg,
    maps: &IoMappings,
    partition: &RegionPartition,
    region_idx: usize,
    blocks: &[BlockId],
    ranges: &BTreeMap<OutPort, IndexSet>,
) -> u128 {
    let mut h = Fnv128::new();
    for &b in blocks {
        for o in 0..dfg.model().block(b).kind.num_outputs() {
            let port = OutPort::new(b, o);
            let consumers = dfg.consumers_of(port);
            h.write_usize(consumers.len());
            for &c in consumers {
                if partition.region_of(c.block) == region_idx {
                    // internal demand is covered by the content digest
                    h.write(b"i");
                    continue;
                }
                let kind = &dfg.model().block(c.block).kind;
                match kind {
                    BlockKind::Outport { .. } => {
                        h.write(b"O");
                        h.write_usize(dfg.shapes().input(c.block, c.port).numel());
                    }
                    BlockKind::Terminator => h.write(b"T"),
                    k if k.is_stateful() => {
                        h.write(b"S");
                        h.write_usize(dfg.shapes().input(c.block, c.port).numel());
                    }
                    k => {
                        h.write(b"D");
                        h.write_usize(c.block.index());
                        h.write_usize(c.port);
                        for o2 in 0..k.num_outputs() {
                            let p2 = OutPort::new(c.block, o2);
                            h.write(format!("{:?}", maps.map(c.block, o2, c.port)).as_bytes());
                            match ranges.get(&p2) {
                                Some(r) => h.write_ranges(r),
                                // mirrors the conservative full-range
                                // fallback the compute path would take
                                None => h.write_ranges(&full_range_of(dfg, p2)),
                            }
                        }
                    }
                }
            }
        }
    }
    h.finish()
}

/// Runs the full analysis pipeline with region-cached range
/// determination. Produces an [`Analysis`] identical to
/// [`Analysis::run_traced`] with the same model and options (all range
/// engines agree, and the regional walk implements the same per-port
/// computation), while re-running Algorithm 1 only on regions missing
/// from `cache`.
///
/// Recorded on `trace`: the standard `flatten`/`dfg`/`iomap`/`ranges`/
/// `classify` spans, with `region_total`, `region_hits`, `region_misses`,
/// and `region_dirty_blocks` counters added to the `ranges` span.
///
/// `region_max` bounds region size in blocks (`0` = one region per
/// connected component); smaller regions shrink the dirty cone of an edit
/// but key more entries.
///
/// # Errors
///
/// Propagates model flattening/validation/shape-inference failures.
pub fn analyze_incremental(
    model: Model,
    options: RangeOptions,
    region_max: usize,
    cache: &mut RegionCache,
    trace: &Trace,
) -> Result<IncrementalAnalysis, ModelError> {
    let dfg = Dfg::new(model, trace)?;
    let threads = options.resolved_threads();
    let mappings = {
        let span = trace.span("iomap");
        span.count("iomap_threads", threads as u64);
        IoMappings::derive_with(&dfg, threads)
    };

    let span = trace.span("ranges");
    let partition = partition_regions(&dfg, region_max)?;
    // every option that shapes range results (engine choice does not:
    // the engines are tested to agree on every model)
    let options_digest = {
        let mut h = Fnv128::new();
        h.write(b"regions-v1");
        h.write(if options.eliminate_dead_ends {
            b"1"
        } else {
            b"0"
        });
        h.finish()
    };

    let mut regions = Vec::with_capacity(partition.len());
    for blocks in partition.regions() {
        let mut h = Fnv128::new();
        h.write_usize(blocks.len());
        for &b in blocks {
            h.write_u128(block_digest(&dfg, b));
        }
        regions.push(RegionInfo {
            blocks: blocks.clone(),
            content: h.finish(),
        });
    }

    let mut map: BTreeMap<OutPort, IndexSet> = BTreeMap::new();
    let mut ctx = EngineCtx::default();
    let mut stats = IncrementalStats {
        regions: partition.len() as u64,
        ..IncrementalStats::default()
    };
    for (idx, info) in regions.iter().enumerate() {
        let key = {
            let mut h = Fnv128::new();
            h.write_u128(info.content);
            h.write_u128(demand_digest(
                &dfg,
                &mappings,
                &partition,
                idx,
                &info.blocks,
                &map,
            ));
            h.write_u128(options_digest);
            h.finish()
        };
        if let Some(entries) = cache.map.get(&key) {
            stats.hits += 1;
            for (port, range) in entries {
                map.insert(*port, range.clone());
            }
            continue;
        }
        stats.misses += 1;
        stats.dirty_blocks += info.blocks.len() as u64;
        let mut computed = Vec::new();
        for &b in &info.blocks {
            for o in 0..dfg.model().block(b).kind.num_outputs() {
                let port = OutPort::new(b, o);
                // a gap (`None`) never occurs for a dependent consumer —
                // the partition order finalizes them first — so this is
                // the same conservative fallback the engines use inside
                // delay cycles
                let r = port_range(
                    &dfg,
                    &mappings,
                    options,
                    port,
                    &mut |p| map.get(&p),
                    &mut ctx,
                );
                map.insert(port, r.clone());
                computed.push((port, r));
            }
        }
        cache.map.insert(key, computed);
    }
    let engine_stats = ctx.stats();
    span.count("iomap_cache_hits", engine_stats.iomap_cache_hits);
    span.count("iomap_cache_misses", engine_stats.iomap_cache_misses);
    span.count("set_ops_inline", engine_stats.set_ops_inline);
    span.count("set_ops_spilled", engine_stats.set_ops_spilled);
    span.count("region_total", stats.regions);
    span.count("region_hits", stats.hits);
    span.count("region_misses", stats.misses);
    span.count("region_dirty_blocks", stats.dirty_blocks);
    let ranges = Ranges::from_map(map);
    drop(span);

    let report = {
        let span = trace.span("classify");
        let report = OptimizationReport::build(&dfg, &ranges);
        span.count("blocks_analyzed", report.stats().len() as u64);
        span.count(
            "blocks_optimizable",
            report.optimizable_blocks().len() as u64,
        );
        span.count("elements_total", report.total_elements() as u64);
        span.count("elements_eliminated", report.total_eliminated() as u64);
        report
    };

    Ok(IncrementalAnalysis {
        analysis: Analysis::from_parts(dfg, mappings, ranges, report, options),
        stats,
        regions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_model::{Block, SelectorMode, Tensor};
    use frodo_ranges::Shape;

    fn figure1() -> Model {
        let mut m = Model::new("Convolution");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: Tensor::vector(vec![0.1; 11]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        m
    }

    #[test]
    fn incremental_matches_the_monolithic_pipeline() {
        let cold = Analysis::run(figure1()).unwrap();
        let mut cache = RegionCache::new();
        for region_max in [1, 2, 4, 0] {
            let inc = analyze_incremental(
                figure1(),
                RangeOptions::default(),
                region_max,
                &mut RegionCache::new(),
                &Trace::noop(),
            )
            .unwrap();
            assert_eq!(
                inc.analysis.ranges(),
                cold.ranges(),
                "region_max={region_max}"
            );
            assert_eq!(inc.analysis.report(), cold.report());
        }
        // and a second identical submission hits every region
        let first = analyze_incremental(
            figure1(),
            RangeOptions::default(),
            2,
            &mut cache,
            &Trace::noop(),
        )
        .unwrap();
        assert_eq!(first.stats.hits, 0);
        let again = analyze_incremental(
            figure1(),
            RangeOptions::default(),
            2,
            &mut cache,
            &Trace::noop(),
        )
        .unwrap();
        assert_eq!(again.stats.misses, 0);
        assert_eq!(again.stats.hits, again.stats.regions);
        assert_eq!(again.analysis.ranges(), cold.ranges());
    }

    #[test]
    fn param_edit_dirties_only_the_edited_region() {
        // a long gain chain: editing one gain's parameter changes neither
        // ranges nor demand anywhere else, so exactly one region misses
        let chain = |edited_gain: f64| {
            let mut m = Model::new("chain");
            let mut prev = m.add(Block::new(
                "in",
                BlockKind::Inport {
                    index: 0,
                    shape: Shape::Vector(16),
                },
            ));
            for k in 0..12 {
                let gain = if k == 6 { edited_gain } else { 2.0 };
                let g = m.add(Block::new(format!("g{k}"), BlockKind::Gain { gain }));
                m.connect(prev, 0, g, 0).unwrap();
                prev = g;
            }
            let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
            m.connect(prev, 0, o, 0).unwrap();
            m
        };
        let mut cache = RegionCache::new();
        let opts = RangeOptions::default();
        let cold = analyze_incremental(chain(2.0), opts, 3, &mut cache, &Trace::noop()).unwrap();
        assert!(cold.stats.regions >= 4);
        let warm = analyze_incremental(chain(9.0), opts, 3, &mut cache, &Trace::noop()).unwrap();
        assert_eq!(warm.stats.misses, 1, "{:?}", warm.stats);
        assert_eq!(warm.stats.dirty_blocks, 3);
        // the ranges still match a cold monolithic run of the edited model
        let reference = Analysis::run_with(chain(9.0), opts).unwrap();
        assert_eq!(warm.analysis.ranges(), reference.ranges());
    }

    #[test]
    fn demand_change_propagates_past_unchanged_regions() {
        // in -> g0 -> g1 -> ... -> sel -> out, one block per region: when
        // the selector narrows, every upstream gain's range must change
        // even though no upstream region's content changed
        let chain = |end: usize| {
            let mut m = Model::new("demand");
            let mut prev = m.add(Block::new(
                "in",
                BlockKind::Inport {
                    index: 0,
                    shape: Shape::Vector(32),
                },
            ));
            for k in 0..5 {
                let g = m.add(Block::new(format!("g{k}"), BlockKind::Gain { gain: 2.0 }));
                m.connect(prev, 0, g, 0).unwrap();
                prev = g;
            }
            let s = m.add(Block::new(
                "sel",
                BlockKind::Selector {
                    mode: SelectorMode::StartEnd { start: 0, end },
                },
            ));
            m.connect(prev, 0, s, 0).unwrap();
            let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
            m.connect(s, 0, o, 0).unwrap();
            m
        };
        let mut cache = RegionCache::new();
        let opts = RangeOptions::default();
        analyze_incremental(chain(20), opts, 1, &mut cache, &Trace::noop()).unwrap();
        let warm = analyze_incremental(chain(8), opts, 1, &mut cache, &Trace::noop()).unwrap();
        // every gain (and the input) saw new demand: nothing upstream of
        // the selector may replay stale ranges
        let reference = Analysis::run_with(chain(8), opts).unwrap();
        assert_eq!(warm.analysis.ranges(), reference.ranges());
        let dfg = warm.analysis.dfg();
        for k in 0..5 {
            let g = dfg.model().find(&format!("g{k}")).unwrap();
            assert_eq!(
                warm.analysis.range(g, 0),
                &IndexSet::from_range(0, 8),
                "g{k} must shrink to the new selector window"
            );
        }
    }

    #[test]
    fn options_split_the_region_cache() {
        // dead-end elimination changes consumer-less ranges, so flipping
        // it must never replay entries keyed under the other setting
        let mut m = Model::new("dangling");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(8),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(i, 0, o, 0).unwrap();
        let mut cache = RegionCache::new();
        let keep = analyze_incremental(
            m.clone(),
            RangeOptions::default(),
            0,
            &mut cache,
            &Trace::noop(),
        )
        .unwrap();
        let gid = keep.analysis.dfg().model().find("g").unwrap();
        assert_eq!(keep.analysis.range(gid, 0), &IndexSet::full(8));
        let eliminate = analyze_incremental(
            m,
            RangeOptions {
                eliminate_dead_ends: true,
                ..RangeOptions::default()
            },
            0,
            &mut cache,
            &Trace::noop(),
        )
        .unwrap();
        assert!(eliminate.analysis.range(gid, 0).is_empty());
    }

    #[test]
    fn incremental_records_region_counters() {
        let trace = Trace::new();
        let mut cache = RegionCache::new();
        analyze_incremental(figure1(), RangeOptions::default(), 2, &mut cache, &trace).unwrap();
        assert!(trace.counter_total("region_total") >= 2);
        assert_eq!(
            trace.counter_total("region_misses"),
            trace.counter_total("region_total")
        );
        assert!(trace.counter_total("region_dirty_blocks") >= 5);
        let snap = trace.snapshot();
        for stage in ["flatten", "dfg", "iomap", "ranges", "classify"] {
            assert!(
                snap.spans.iter().any(|s| s.name == stage),
                "missing {stage} span"
            );
        }
    }
}
