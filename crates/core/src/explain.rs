//! Human-readable traces of calculation-range determination.
//!
//! The paper's Figure 5 walks through redundancy elimination step by step
//! ("FRODO first determines the calculation range of actor ⑥, … then
//! determines the calculation range of actor ④ from [0, 59] to [5, 54]").
//! [`trace`] produces the same narrative for any analyzed model — useful
//! for debugging block property entries and for teaching what the analysis
//! concluded and why.

use crate::Analysis;
use frodo_model::{BlockKind, OutPort};
use std::fmt::Write as _;

/// Renders the range-determination walkthrough, one step per output port,
/// in the order Algorithm 1 finalizes them (reverse topological).
///
/// See the module docs; the CLI exposes this as `frodo analyze --trace`.
pub fn trace(analysis: &Analysis) -> String {
    let dfg = analysis.dfg();
    let model = dfg.model();
    let order = dfg.schedule().expect("analyzed models schedule");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "calculation range determination for '{}' (reverse translation order):",
        model.name()
    );
    let mut step = 1;
    for &id in order.iter().rev() {
        let block = model.block(id);
        for o in 0..block.kind.num_outputs() {
            let numel = dfg.shapes().output(id, o).numel();
            let range = analysis.range(id, o);
            let consumers = dfg.consumers_of(OutPort::new(id, o));
            let reason = if consumers.is_empty() {
                "no consumers: keep the full output (Algorithm 1, lines 16-18)".to_string()
            } else {
                let mut parts = Vec::new();
                for c in consumers {
                    let cb = model.block(c.block);
                    let what = match &cb.kind {
                        BlockKind::Outport { .. } => "model output needs everything".to_string(),
                        BlockKind::Terminator => "terminator needs nothing".to_string(),
                        k if k.is_stateful() => "state must be fully maintained".to_string(),
                        k => format!(
                            "maps its own range through the {} I/O mapping",
                            k.type_name()
                        ),
                    };
                    parts.push(format!("{} ({what})", cb.name));
                }
                format!("union of needs from {}", parts.join("; "))
            };
            let verdict = if range.count() < numel {
                format!("REDUCED to {range} of [0, {numel})")
            } else {
                format!("full [0, {numel})")
            };
            let _ = writeln!(
                out,
                "  step {step}: {} <{}> out{o}: {verdict}\n           {reason}",
                block.name,
                block.kind.type_name()
            );
            step += 1;
        }
    }
    let report = analysis.report();
    let _ = writeln!(
        out,
        "result: {} of {} blocks optimizable, {} of {} element computations eliminated",
        report.optimizable_blocks().len(),
        report.stats().len(),
        report.total_eliminated(),
        report.total_elements()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_model::{Block, Model, SelectorMode, Tensor};
    use frodo_ranges::Shape;

    #[test]
    fn trace_tells_the_figure5_story() {
        let mut m = Model::new("Convolution");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: Tensor::vector(vec![0.1; 11]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        let analysis = Analysis::run(m).unwrap();
        let text = trace(&analysis);
        // the conv's range shrinks from [0,60) to [5,55), as in Figure 5
        assert!(text.contains("conv <convolution> out0: REDUCED to [5, 55) of [0, 60)"));
        // the selector's consumers explain the model-output anchor
        assert!(text.contains("model output needs everything"));
        assert!(text.contains("1 of 5 blocks optimizable"));
    }

    #[test]
    fn trace_mentions_state_and_terminators() {
        let mut m = Model::new("t");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(4),
            },
        ));
        let z = m.add(Block::new(
            "z",
            BlockKind::UnitDelay {
                initial: Tensor::vector(vec![0.0; 4]),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let t = m.add(Block::new("t", BlockKind::Terminator));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, z, 0).unwrap();
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, t, 0).unwrap();
        m.connect(z, 0, o, 0).unwrap();
        let analysis = Analysis::run(m).unwrap();
        let text = trace(&analysis);
        assert!(text.contains("state must be fully maintained"));
        assert!(text.contains("terminator needs nothing"));
    }
}
