//! The end-to-end analysis pipeline: model → graph → mappings → ranges.

use crate::{determine_ranges, IoMappings, OptimizationReport, RangeOptions, Ranges};
use frodo_graph::Dfg;
use frodo_model::{BlockId, Model, ModelError, OutPort};
use frodo_ranges::IndexSet;
use std::time::{Duration, Instant};

/// Wall-clock cost of each analysis stage, measured with the monotonic
/// clock by [`Analysis::run_instrumented`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisTimings {
    /// Graph construction: flatten, validate, shape-infer, build adjacency.
    pub dfg: Duration,
    /// I/O-mapping derivation from the block property library.
    pub iomap: Duration,
    /// Algorithm 1: calculation range determination.
    pub ranges: Duration,
    /// Optimizable-block classification and report construction.
    pub classify: Duration,
}

/// The complete output of FRODO's analysis for one model: the dataflow
/// graph, the derived I/O mappings, the calculation ranges, and the
/// optimizable-block report. Code generators consume this artifact.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone)]
pub struct Analysis {
    dfg: Dfg,
    mappings: IoMappings,
    ranges: Ranges,
    report: OptimizationReport,
    options: RangeOptions,
}

impl Analysis {
    /// Runs the full pipeline with default options.
    ///
    /// # Errors
    ///
    /// Propagates model flattening/validation/shape-inference failures.
    pub fn run(model: Model) -> Result<Self, ModelError> {
        Analysis::run_with(model, RangeOptions::default())
    }

    /// Runs the full pipeline with explicit range options.
    ///
    /// # Errors
    ///
    /// Propagates model flattening/validation/shape-inference failures.
    pub fn run_with(model: Model, options: RangeOptions) -> Result<Self, ModelError> {
        Analysis::run_instrumented(model, options).map(|(analysis, _)| analysis)
    }

    /// Runs the full pipeline and reports how long each analysis stage
    /// took (monotonic clock). This is the entry point compilation drivers
    /// use to attribute cost to graph construction, I/O-mapping derivation,
    /// Algorithm 1, and classification separately.
    ///
    /// # Errors
    ///
    /// Propagates model flattening/validation/shape-inference failures.
    pub fn run_instrumented(
        model: Model,
        options: RangeOptions,
    ) -> Result<(Self, AnalysisTimings), ModelError> {
        let t0 = Instant::now();
        let dfg = Dfg::new(model)?;
        let t1 = Instant::now();
        let mappings = IoMappings::derive(&dfg);
        let t2 = Instant::now();
        let ranges = determine_ranges(&dfg, &mappings, options);
        let t3 = Instant::now();
        let report = OptimizationReport::build(&dfg, &ranges);
        let t4 = Instant::now();
        let timings = AnalysisTimings {
            dfg: t1 - t0,
            iomap: t2 - t1,
            ranges: t3 - t2,
            classify: t4 - t3,
        };
        Ok((
            Analysis {
                dfg,
                mappings,
                ranges,
                report,
                options,
            },
            timings,
        ))
    }

    /// The analyzed dataflow graph.
    pub fn dfg(&self) -> &Dfg {
        &self.dfg
    }

    /// The derived I/O mappings.
    pub fn mappings(&self) -> &IoMappings {
        &self.mappings
    }

    /// All calculation ranges.
    pub fn ranges(&self) -> &Ranges {
        &self.ranges
    }

    /// The calculation range of one output port.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn range(&self, block: BlockId, port: usize) -> &IndexSet {
        self.ranges.out(block, port)
    }

    /// The optimization report.
    pub fn report(&self) -> &OptimizationReport {
        &self.report
    }

    /// Whether a block's calculation range shrank (is *optimizable*).
    pub fn is_optimizable(&self, block: BlockId) -> bool {
        self.report.stat(block).optimizable
    }

    /// Output ports whose ranges were reduced.
    pub fn reduced_ports(&self) -> Vec<OutPort> {
        crate::classify::reduced_ports(&self.dfg, &self.ranges)
    }

    /// The options the analysis ran with.
    pub fn options(&self) -> RangeOptions {
        self.options
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_model::{Block, BlockKind, SelectorMode, Tensor};
    use frodo_ranges::Shape;

    fn figure1() -> Model {
        let mut m = Model::new("Convolution");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: Tensor::vector(vec![0.1; 11]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        m
    }

    #[test]
    fn pipeline_end_to_end() {
        let a = Analysis::run(figure1()).unwrap();
        let conv = a.dfg().model().find("conv").unwrap();
        assert!(a.is_optimizable(conv));
        assert_eq!(a.reduced_ports().len(), 1);
        assert_eq!(a.options(), RangeOptions::default());
    }

    /// Property tests (gated: the `proptest` crate is not vendored, so the
    /// default offline build compiles these out; re-add the dev-dependency
    /// and run `cargo test --features proptest` to enable them).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use crate::RangeEngine;
        use proptest::prelude::*;

        /// Generates a random layered feed-forward model mixing elementwise,
        /// windowed, and truncation blocks, to cross-check the two engines.
        fn arb_model() -> impl Strategy<Value = Model> {
            (
                2usize..6,
                proptest::collection::vec(0usize..6, 1..12),
                any::<u64>(),
            )
                .prop_map(|(width, kinds, seed)| {
                    let n = 24usize;
                    let mut m = Model::new("rand");
                    let mut frontier: Vec<BlockId> = Vec::new();
                    for w in 0..width.min(3) {
                        let id = m.add(Block::new(
                            format!("in{w}"),
                            BlockKind::Inport {
                                index: w,
                                shape: Shape::Vector(n),
                            },
                        ));
                        frontier.push(id);
                    }
                    let mut rng = seed;
                    let mut next = move |m: usize| {
                        rng = rng
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((rng >> 33) as usize) % m
                    };
                    for (step, k) in kinds.into_iter().enumerate() {
                        let src = frontier[next(frontier.len())];
                        let kind = match k {
                            0 => BlockKind::Gain { gain: 2.0 },
                            1 => BlockKind::Abs,
                            2 => BlockKind::MovingAverage { window: 3 },
                            3 => BlockKind::Difference,
                            4 => BlockKind::Selector {
                                mode: SelectorMode::StartEnd {
                                    start: 4,
                                    end: 4 + n / 2,
                                },
                            },
                            _ => BlockKind::Pad {
                                left: 2,
                                right: 2,
                                value: 0.0,
                            },
                        };
                        // only chain blocks that preserve "vector in, vector out"
                        let id = m.add(Block::new(format!("b{step}"), kind));
                        m.connect(src, 0, id, 0).unwrap();
                        // keep output length n by re-normalizing with a selector
                        let fix = m.add(Block::new(
                            format!("fix{step}"),
                            BlockKind::Selector {
                                mode: SelectorMode::StartEnd {
                                    start: 0,
                                    end: n / 2,
                                },
                            },
                        ));
                        m.connect(id, 0, fix, 0).unwrap();
                        let pad = m.add(Block::new(
                            format!("pad{step}"),
                            BlockKind::Pad {
                                left: 0,
                                right: n - n / 2,
                                value: 0.0,
                            },
                        ));
                        m.connect(fix, 0, pad, 0).unwrap();
                        frontier.push(pad);
                    }
                    for (w, src) in frontier.iter().enumerate().take(3) {
                        let o = m.add(Block::new(
                            format!("out{w}"),
                            BlockKind::Outport { index: w },
                        ));
                        m.connect(*src, 0, o, 0).unwrap();
                    }
                    m
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn prop_engines_agree_on_random_models(model in arb_model()) {
                let rec = Analysis::run_with(
                    model.clone(),
                    RangeOptions { engine: RangeEngine::Recursive, ..Default::default() },
                ).unwrap();
                let it = Analysis::run_with(
                    model,
                    RangeOptions { engine: RangeEngine::Iterative, ..Default::default() },
                ).unwrap();
                prop_assert_eq!(rec.ranges(), it.ranges());
            }

            #[test]
            fn prop_ranges_never_exceed_full(model in arb_model()) {
                let a = Analysis::run(model).unwrap();
                for (port, range) in a.ranges().iter() {
                    let numel = a.dfg().shapes().output(port.block, port.port).numel();
                    prop_assert!(range.is_subset(&frodo_ranges::IndexSet::full(numel)));
                }
            }
        }
    }
}
