//! The end-to-end analysis pipeline: model → graph → mappings → ranges.

use crate::{determine_ranges_with_stats, IoMappings, OptimizationReport, RangeOptions, Ranges};
use frodo_graph::Dfg;
use frodo_model::{BlockId, Model, ModelError, OutPort};
use frodo_obs::Trace;
use frodo_ranges::IndexSet;

/// The complete output of FRODO's analysis for one model: the dataflow
/// graph, the derived I/O mappings, the calculation ranges, and the
/// optimizable-block report. Code generators consume this artifact.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone)]
pub struct Analysis {
    dfg: Dfg,
    mappings: IoMappings,
    ranges: Ranges,
    report: OptimizationReport,
    options: RangeOptions,
}

impl Analysis {
    /// Assembles an analysis from independently computed parts (the
    /// incremental region analysis produces the same artifact without a
    /// monolithic range pass).
    pub(crate) fn from_parts(
        dfg: Dfg,
        mappings: IoMappings,
        ranges: Ranges,
        report: OptimizationReport,
        options: RangeOptions,
    ) -> Self {
        Analysis {
            dfg,
            mappings,
            ranges,
            report,
            options,
        }
    }

    /// Runs the full pipeline with default options and no tracing.
    /// (Thin wrapper over [`Analysis::run_traced`] with a no-op trace.)
    ///
    /// # Errors
    ///
    /// Propagates model flattening/validation/shape-inference failures.
    pub fn run(model: Model) -> Result<Self, ModelError> {
        Analysis::run_traced(model, RangeOptions::default(), &Trace::noop())
    }

    /// Runs the full pipeline with explicit range options and no tracing.
    /// (Thin wrapper over [`Analysis::run_traced`] with a no-op trace.)
    ///
    /// # Errors
    ///
    /// Propagates model flattening/validation/shape-inference failures.
    pub fn run_with(model: Model, options: RangeOptions) -> Result<Self, ModelError> {
        Analysis::run_traced(model, options, &Trace::noop())
    }

    /// The canonical pipeline entry: runs model analysis and redundancy
    /// elimination, recording every stage on `trace` — `flatten` and `dfg`
    /// spans from graph construction, then `iomap`, `ranges` (Algorithm 1),
    /// and `classify` spans with redundancy counters (`blocks_analyzed`,
    /// `blocks_optimizable`, `elements_total`, `elements_eliminated`).
    ///
    /// Pass [`Trace::noop`] when nobody is listening: the disabled
    /// recorder compiles to near-zero cost, so this is also the plain
    /// entry point ([`Analysis::run`] and [`Analysis::run_with`] are thin
    /// wrappers over it). Stage timings are read off the trace via
    /// [`frodo_obs::StageTimings::from_trace`] — there is no separate
    /// timing struct.
    ///
    /// # Errors
    ///
    /// Propagates model flattening/validation/shape-inference failures.
    pub fn run_traced(
        model: Model,
        options: RangeOptions,
        trace: &Trace,
    ) -> Result<Self, ModelError> {
        let dfg = Dfg::new(model, trace)?;
        let threads = options.resolved_threads();
        let mappings = {
            let span = trace.span("iomap");
            span.count("iomap_threads", threads as u64);
            IoMappings::derive_with(&dfg, threads)
        };
        let ranges = {
            let span = trace.span("ranges");
            let (ranges, stats) = determine_ranges_with_stats(&dfg, &mappings, options);
            span.count("iomap_cache_hits", stats.iomap_cache_hits);
            span.count("iomap_cache_misses", stats.iomap_cache_misses);
            span.count("set_ops_inline", stats.set_ops_inline);
            span.count("set_ops_spilled", stats.set_ops_spilled);
            span.count("analysis_levels", stats.levels);
            span.count("level_width_max", stats.max_level_width);
            ranges
        };
        let report = {
            let span = trace.span("classify");
            let report = OptimizationReport::build(&dfg, &ranges);
            span.count("blocks_analyzed", report.stats().len() as u64);
            span.count(
                "blocks_optimizable",
                report.optimizable_blocks().len() as u64,
            );
            span.count("elements_total", report.total_elements() as u64);
            span.count("elements_eliminated", report.total_eliminated() as u64);
            report
        };
        Ok(Analysis {
            dfg,
            mappings,
            ranges,
            report,
            options,
        })
    }

    /// The analyzed dataflow graph.
    pub fn dfg(&self) -> &Dfg {
        &self.dfg
    }

    /// The derived I/O mappings.
    pub fn mappings(&self) -> &IoMappings {
        &self.mappings
    }

    /// All calculation ranges.
    pub fn ranges(&self) -> &Ranges {
        &self.ranges
    }

    /// The calculation range of one output port.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn range(&self, block: BlockId, port: usize) -> &IndexSet {
        self.ranges.out(block, port)
    }

    /// The optimization report.
    pub fn report(&self) -> &OptimizationReport {
        &self.report
    }

    /// Whether a block's calculation range shrank (is *optimizable*).
    pub fn is_optimizable(&self, block: BlockId) -> bool {
        self.report.stat(block).optimizable
    }

    /// Output ports whose ranges were reduced.
    pub fn reduced_ports(&self) -> Vec<OutPort> {
        crate::classify::reduced_ports(&self.dfg, &self.ranges)
    }

    /// The options the analysis ran with.
    pub fn options(&self) -> RangeOptions {
        self.options
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_model::{Block, BlockKind, SelectorMode, Tensor};
    use frodo_ranges::Shape;

    fn figure1() -> Model {
        let mut m = Model::new("Convolution");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: Tensor::vector(vec![0.1; 11]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        m
    }

    #[test]
    fn pipeline_end_to_end() {
        let a = Analysis::run(figure1()).unwrap();
        let conv = a.dfg().model().find("conv").unwrap();
        assert!(a.is_optimizable(conv));
        assert_eq!(a.reduced_ports().len(), 1);
        assert_eq!(a.options(), RangeOptions::default());
    }

    #[test]
    fn traced_run_records_every_analysis_stage() {
        let trace = Trace::new();
        let a = Analysis::run_traced(figure1(), RangeOptions::default(), &trace).unwrap();
        let snap = trace.snapshot();
        for stage in ["flatten", "dfg", "iomap", "ranges", "classify"] {
            assert!(
                snap.spans.iter().any(|s| s.name == stage),
                "missing {stage} span"
            );
        }
        assert_eq!(trace.counter_total("blocks_analyzed"), 5);
        assert_eq!(trace.counter_total("blocks_optimizable"), 1);
        // hot-path instrumentation: every run derives at least one mapping
        // and performs at least one set operation, all inline on this model
        assert_eq!(trace.counter_total("iomap_threads"), 1);
        assert!(trace.counter_total("iomap_cache_misses") > 0);
        assert!(trace.counter_total("set_ops_inline") > 0);
        assert_eq!(
            trace.counter_total("elements_eliminated") as usize,
            a.report().total_eliminated()
        );
        let timings = frodo_obs::StageTimings::from_trace(&trace);
        assert_eq!(timings.parse, std::time::Duration::ZERO);
        assert!(timings.algorithm1() > std::time::Duration::ZERO);
    }

    #[test]
    fn untraced_wrappers_match_the_canonical_entry() {
        let via_run = Analysis::run(figure1()).unwrap();
        let via_traced =
            Analysis::run_traced(figure1(), RangeOptions::default(), &Trace::noop()).unwrap();
        assert_eq!(via_run.ranges(), via_traced.ranges());
        assert_eq!(via_run.report(), via_traced.report());
    }

    /// Property tests (gated: the `proptest` crate is not vendored, so the
    /// default offline build compiles these out; re-add the dev-dependency
    /// and run `cargo test --features proptest` to enable them).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use crate::RangeEngine;
        use proptest::prelude::*;

        /// Generates a random layered feed-forward model mixing elementwise,
        /// windowed, and truncation blocks, to cross-check the two engines.
        fn arb_model() -> impl Strategy<Value = Model> {
            (
                2usize..6,
                proptest::collection::vec(0usize..6, 1..12),
                any::<u64>(),
            )
                .prop_map(|(width, kinds, seed)| {
                    let n = 24usize;
                    let mut m = Model::new("rand");
                    let mut frontier: Vec<BlockId> = Vec::new();
                    for w in 0..width.min(3) {
                        let id = m.add(Block::new(
                            format!("in{w}"),
                            BlockKind::Inport {
                                index: w,
                                shape: Shape::Vector(n),
                            },
                        ));
                        frontier.push(id);
                    }
                    let mut rng = seed;
                    let mut next = move |m: usize| {
                        rng = rng
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((rng >> 33) as usize) % m
                    };
                    for (step, k) in kinds.into_iter().enumerate() {
                        let src = frontier[next(frontier.len())];
                        let kind = match k {
                            0 => BlockKind::Gain { gain: 2.0 },
                            1 => BlockKind::Abs,
                            2 => BlockKind::MovingAverage { window: 3 },
                            3 => BlockKind::Difference,
                            4 => BlockKind::Selector {
                                mode: SelectorMode::StartEnd {
                                    start: 4,
                                    end: 4 + n / 2,
                                },
                            },
                            _ => BlockKind::Pad {
                                left: 2,
                                right: 2,
                                value: 0.0,
                            },
                        };
                        // only chain blocks that preserve "vector in, vector out"
                        let id = m.add(Block::new(format!("b{step}"), kind));
                        m.connect(src, 0, id, 0).unwrap();
                        // keep output length n by re-normalizing with a selector
                        let fix = m.add(Block::new(
                            format!("fix{step}"),
                            BlockKind::Selector {
                                mode: SelectorMode::StartEnd {
                                    start: 0,
                                    end: n / 2,
                                },
                            },
                        ));
                        m.connect(id, 0, fix, 0).unwrap();
                        let pad = m.add(Block::new(
                            format!("pad{step}"),
                            BlockKind::Pad {
                                left: 0,
                                right: n - n / 2,
                                value: 0.0,
                            },
                        ));
                        m.connect(fix, 0, pad, 0).unwrap();
                        frontier.push(pad);
                    }
                    for (w, src) in frontier.iter().enumerate().take(3) {
                        let o = m.add(Block::new(
                            format!("out{w}"),
                            BlockKind::Outport { index: w },
                        ));
                        m.connect(*src, 0, o, 0).unwrap();
                    }
                    m
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn prop_engines_agree_on_random_models(model in arb_model(), threads in 1usize..8) {
                let rec = Analysis::run_with(
                    model.clone(),
                    RangeOptions { engine: RangeEngine::Recursive, ..Default::default() },
                ).unwrap();
                let it = Analysis::run_with(
                    model.clone(),
                    RangeOptions { engine: RangeEngine::Iterative, ..Default::default() },
                ).unwrap();
                let par = Analysis::run_with(
                    model,
                    RangeOptions {
                        engine: RangeEngine::Parallel,
                        threads,
                        ..Default::default()
                    },
                ).unwrap();
                prop_assert_eq!(rec.ranges(), it.ranges());
                prop_assert_eq!(rec.ranges(), par.ranges());
            }

            #[test]
            fn prop_ranges_never_exceed_full(model in arb_model()) {
                let a = Analysis::run(model).unwrap();
                for (port, range) in a.ranges().iter() {
                    let numel = a.dfg().shapes().output(port.block, port.port).numel();
                    prop_assert!(range.is_subset(&frodo_ranges::IndexSet::full(numel)));
                }
            }
        }
    }
}
