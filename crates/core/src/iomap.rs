//! I/O mapping derivation over a whole dataflow graph.

use frodo_graph::Dfg;
use frodo_model::{proplib, BlockId};
use frodo_ranges::PortMap;

/// The derived I/O mapping of every block in a graph: for block `b`,
/// `maps[b][out_port][in_port]` converts a request on `out_port` into the
/// elements required from `in_port`.
///
/// This realizes the paper's *I/O mapping derivation* step: the block
/// property library is instantiated with each block's concrete parameters
/// and resolved port shapes, extending the single-element relationship "to
/// include each output element" (paper §3.1, Figure 3).
#[derive(Debug, Clone)]
pub struct IoMappings {
    maps: Vec<Vec<Vec<PortMap>>>,
}

impl IoMappings {
    /// Derives the mappings of every block in the graph.
    pub fn derive(dfg: &Dfg) -> Self {
        IoMappings::derive_with(dfg, 1)
    }

    /// [`IoMappings::derive`] fanned out over `threads` workers.
    ///
    /// Every block's mapping is derived independently from its own
    /// parameters and resolved shapes, so the blocks are split into
    /// contiguous chunks processed concurrently and re-joined in block-id
    /// order — the result is identical for any thread count. `threads ≤ 1`
    /// (and small models, where spawn overhead dominates) run inline.
    pub fn derive_with(dfg: &Dfg, threads: usize) -> Self {
        let model = dfg.model();
        let shapes = dfg.shapes();
        let derive_one = |(id, block): (frodo_model::BlockId, &frodo_model::Block)| {
            let n_in = block.kind.num_inputs();
            let n_out = block.kind.num_outputs();
            let in_shapes = shapes.inputs_of(id, n_in);
            let out_shapes = shapes.outputs_of(id, n_out);
            proplib::io_maps_of(block, &in_shapes, &out_shapes)
        };
        let n = model.len();
        const MIN_BLOCKS_PER_WORKER: usize = 64;
        let threads = threads.min(n / MIN_BLOCKS_PER_WORKER).max(1);
        if threads <= 1 {
            return IoMappings {
                maps: model.iter().map(derive_one).collect(),
            };
        }
        let blocks: Vec<_> = model.iter().collect();
        let chunk = n.div_ceil(threads);
        let derive_one = &derive_one;
        let chunks = std::thread::scope(|s| {
            let handles: Vec<_> = blocks
                .chunks(chunk)
                .map(|c| s.spawn(move || c.iter().copied().map(derive_one).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("iomap worker panicked"))
                .collect::<Vec<_>>()
        });
        IoMappings {
            maps: chunks.into_iter().flatten().collect(),
        }
    }

    /// The mapping of `(block, out_port) → in_port`.
    ///
    /// # Panics
    ///
    /// Panics if the ports exceed the block's arity.
    pub fn map(&self, block: BlockId, out_port: usize, in_port: usize) -> &PortMap {
        &self.maps[block.index()][out_port][in_port]
    }

    /// All mappings of one block, indexed `[out_port][in_port]`.
    pub fn of(&self, block: BlockId) -> &[Vec<PortMap>] {
        &self.maps[block.index()]
    }

    /// Whether *every* path through this block propagates range information
    /// (no `All`/`Dynamic` mapping) — i.e. range reductions downstream of the
    /// block can reach its producers.
    pub fn is_range_transparent(&self, block: BlockId) -> bool {
        self.maps[block.index()]
            .iter()
            .flatten()
            .all(PortMap::is_range_transparent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_model::{Block, BlockKind, Model, SelectorMode};
    use frodo_ranges::{IndexSet, Shape};

    fn selector_graph() -> (Dfg, BlockId, BlockId) {
        let mut m = Model::new("sel");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(60),
            },
        ));
        let s = m.add(Block::new(
            "s",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        let dfg = Dfg::new(m, &frodo_obs::Trace::noop()).unwrap();
        let (s, o) = (
            dfg.model().find("s").unwrap(),
            dfg.model().find("o").unwrap(),
        );
        (dfg, s, o)
    }

    #[test]
    fn derive_produces_parameterized_maps() {
        let (dfg, s, _) = selector_graph();
        let maps = IoMappings::derive(&dfg);
        let m = maps.map(s, 0, 0);
        assert_eq!(m.apply(&IndexSet::point(0)), IndexSet::point(5));
    }

    #[test]
    fn transparency_classification() {
        let (dfg, s, _) = selector_graph();
        let maps = IoMappings::derive(&dfg);
        assert!(maps.is_range_transparent(s));

        // A reduction is not transparent.
        let mut m = Model::new("red");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(8),
            },
        ));
        let r = m.add(Block::new("r", BlockKind::SumOfElements));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, r, 0).unwrap();
        m.connect(r, 0, o, 0).unwrap();
        let dfg = Dfg::new(m, &frodo_obs::Trace::noop()).unwrap();
        let maps = IoMappings::derive(&dfg);
        let r = dfg.model().find("r").unwrap();
        assert!(!maps.is_range_transparent(r));
    }
}
