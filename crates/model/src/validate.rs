//! Structural model validation.

use crate::{BlockKind, InPort, Model, ModelError};

/// Validates a model's structural well-formedness:
///
/// 1. every input port has exactly one incoming connection,
/// 2. `Inport`/`Outport` indices are unique and contiguous from zero,
/// 3. each subsystem's inner port blocks match its declared arity, and
/// 4. shape inference succeeds on the flattened model.
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate(model: &Model) -> Result<(), ModelError> {
    // (1) connectivity — duplicate inputs are rejected at connect() time for
    // builder-constructed models but can arrive via file formats.
    for (id, block) in model.iter() {
        for p in 0..block.kind.num_inputs() {
            let port = InPort::new(id, p);
            let n = model.connections().iter().filter(|c| c.to == port).count();
            match n {
                0 => return Err(ModelError::UnconnectedInput(port)),
                1 => {}
                _ => return Err(ModelError::DuplicateInput(port)),
            }
        }
    }

    // (2) port-block index contiguity
    check_port_indices(model)?;

    // (3) subsystem consistency
    for (id, block) in model.iter() {
        if let BlockKind::Subsystem(inner) = &block.kind {
            check_port_indices(inner).map_err(|_| ModelError::BadSubsystem {
                block: id,
                reason: "inner Inport/Outport indices are not contiguous".into(),
            })?;
            inner.validate().map_err(|e| ModelError::BadSubsystem {
                block: id,
                reason: e.to_string(),
            })?;
        }
    }

    // (4) the whole model must type-check
    model.flattened(&frodo_obs::Trace::noop())?.infer_shapes()?;
    Ok(())
}

fn check_port_indices(model: &Model) -> Result<(), ModelError> {
    let mut in_idx: Vec<usize> = model
        .blocks()
        .iter()
        .filter_map(|b| match b.kind {
            BlockKind::Inport { index, .. } => Some(index),
            _ => None,
        })
        .collect();
    let mut out_idx: Vec<usize> = model
        .blocks()
        .iter()
        .filter_map(|b| match b.kind {
            BlockKind::Outport { index } => Some(index),
            _ => None,
        })
        .collect();
    in_idx.sort_unstable();
    out_idx.sort_unstable();
    for (expect, &got) in in_idx.iter().enumerate() {
        if got != expect {
            let offender = model.inport(got).or_else(|| model.inport(expect));
            return Err(ModelError::BadParameter {
                block: offender.unwrap_or(crate::BlockId::from_index(0)),
                reason: format!("Inport indices not contiguous: expected {expect}, found {got}"),
            });
        }
    }
    for (expect, &got) in out_idx.iter().enumerate() {
        if got != expect {
            let offender = model.outport(got).or_else(|| model.outport(expect));
            return Err(ModelError::BadParameter {
                block: offender.unwrap_or(crate::BlockId::from_index(0)),
                reason: format!("Outport indices not contiguous: expected {expect}, found {got}"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Block, Tensor};
    use frodo_ranges::Shape;

    #[test]
    fn valid_model_passes() {
        let mut m = Model::new("ok");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(4),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, o, 0).unwrap();
        assert!(m.validate().is_ok());
    }

    #[test]
    fn unconnected_input_fails() {
        let mut m = Model::new("bad");
        m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        assert!(matches!(m.validate(), Err(ModelError::UnconnectedInput(_))));
    }

    #[test]
    fn gapped_inport_indices_fail() {
        let mut m = Model::new("bad");
        let i = m.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 1,
                shape: Shape::Scalar,
            },
        ));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, o, 0).unwrap();
        assert!(matches!(m.validate(), Err(ModelError::BadParameter { .. })));
    }

    #[test]
    fn shape_errors_surface_through_validate() {
        let mut m = Model::new("bad");
        let a = m.add(Block::new(
            "a",
            BlockKind::Constant {
                value: Tensor::vector(vec![1.0; 3]),
            },
        ));
        let b = m.add(Block::new(
            "b",
            BlockKind::Constant {
                value: Tensor::vector(vec![1.0; 4]),
            },
        ));
        let add = m.add(Block::new("add", BlockKind::Add));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(a, 0, add, 0).unwrap();
        m.connect(b, 0, add, 1).unwrap();
        m.connect(add, 0, o, 0).unwrap();
        assert!(matches!(
            m.validate(),
            Err(ModelError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn subsystem_validation_recurses() {
        let mut inner = Model::new("inner");
        inner.add(Block::new("g", BlockKind::Gain { gain: 1.0 })); // unconnected
        let mut m = Model::new("outer");
        m.add(Block::new("s", BlockKind::Subsystem(Box::new(inner))));
        assert!(matches!(m.validate(), Err(ModelError::BadSubsystem { .. })));
    }
}
