//! The **block property library**: per block type and parameters, the output
//! shape rules and the I/O mappings that drive redundancy elimination.
//!
//! The paper (§3.1) describes this library as recording, for every supported
//! block, "critical details such as type, parameters, and mapping", noting
//! that "even for actors of the same type, the contained mapping can vary
//! depending on the specific parameters" (e.g. a `Selector` in Start–End mode
//! versus IndexPort mode). [`output_shapes`] encodes the shape rules;
//! [`io_map`] encodes the mappings; [`infer_shapes`] runs the shape rules
//! over a whole model.

use crate::{
    Block, BlockId, BlockKind, InPort, LogicOp, Model, ModelError, OutPort, SelectorMode,
    ShapeTable,
};
use frodo_ranges::{PortMap, Shape};

/// Result of a shape rule: one shape per output port.
type ShapeResult = Result<Vec<Shape>, String>;

fn broadcast(a: Shape, b: Shape) -> Result<Shape, String> {
    match (a.is_scalar(), b.is_scalar()) {
        (true, _) => Ok(b),
        (_, true) => Ok(a),
        _ if a == b => Ok(a),
        _ => Err(format!("incompatible operand shapes {a} and {b}")),
    }
}

fn expect_vector(s: Shape, what: &str) -> Result<usize, String> {
    match s {
        Shape::Vector(n) => Ok(n),
        Shape::Scalar => Ok(1),
        Shape::Matrix(_, _) => Err(format!("{what} must be a vector, got {s}")),
    }
}

/// Computes the output shapes of a block from its input shapes.
///
/// This is the shape-rule half of the block property library. `in_shapes`
/// must have exactly [`BlockKind::num_inputs`] entries.
///
/// # Errors
///
/// Returns a human-readable reason when the operand shapes are incompatible
/// with the block's parameters.
pub fn output_shapes(kind: &BlockKind, in_shapes: &[Shape]) -> ShapeResult {
    debug_assert_eq!(in_shapes.len(), kind.num_inputs());
    match kind {
        BlockKind::Inport { shape, .. } => Ok(vec![*shape]),
        BlockKind::Constant { value } => Ok(vec![value.shape()]),
        BlockKind::Outport { .. } | BlockKind::Terminator => Ok(vec![]),

        BlockKind::Gain { .. }
        | BlockKind::Bias { .. }
        | BlockKind::Abs
        | BlockKind::Sqrt
        | BlockKind::Square
        | BlockKind::Exp
        | BlockKind::Log
        | BlockKind::Sin
        | BlockKind::Cos
        | BlockKind::Tanh
        | BlockKind::Negate
        | BlockKind::Reciprocal
        | BlockKind::Saturation { .. }
        | BlockKind::Rounding { .. } => Ok(vec![in_shapes[0]]),

        BlockKind::Add
        | BlockKind::Subtract
        | BlockKind::Multiply
        | BlockKind::Divide
        | BlockKind::Min
        | BlockKind::Max
        | BlockKind::Mod
        | BlockKind::Relational { .. } => Ok(vec![broadcast(in_shapes[0], in_shapes[1])?]),

        BlockKind::Logical { op } => {
            if *op == LogicOp::Not {
                Ok(vec![in_shapes[0]])
            } else {
                Ok(vec![broadcast(in_shapes[0], in_shapes[1])?])
            }
        }

        BlockKind::Switch { .. } => {
            let data = broadcast(in_shapes[0], in_shapes[2])?;
            let out = broadcast(data, in_shapes[1])?;
            // control may be scalar (broadcast) or match the data shape, but
            // the output shape is governed by the data operands
            if !in_shapes[1].is_scalar() && in_shapes[1] != data {
                return Err(format!(
                    "switch control shape {} does not match data shape {data}",
                    in_shapes[1]
                ));
            }
            Ok(vec![out])
        }

        BlockKind::SumOfElements
        | BlockKind::MeanOfElements
        | BlockKind::MinOfElements
        | BlockKind::MaxOfElements => Ok(vec![Shape::Scalar]),

        BlockKind::DotProduct => {
            if in_shapes[0].numel() != in_shapes[1].numel() {
                return Err(format!(
                    "dot product operands have {} and {} elements",
                    in_shapes[0].numel(),
                    in_shapes[1].numel()
                ));
            }
            Ok(vec![Shape::Scalar])
        }

        BlockKind::MatrixMultiply => {
            let (ar, ac) = (in_shapes[0].rows(), in_shapes[0].cols());
            let (br, bc) = (in_shapes[1].rows(), in_shapes[1].cols());
            if ac != br {
                return Err(format!(
                    "matrix multiply inner dimensions {ac} and {br} differ"
                ));
            }
            Ok(vec![Shape::Matrix(ar, bc)])
        }

        BlockKind::Transpose => Ok(vec![in_shapes[0].transposed()]),

        BlockKind::Reshape { shape } => {
            if !in_shapes[0].same_numel(shape) {
                return Err(format!("cannot reshape {} to {shape}", in_shapes[0]));
            }
            Ok(vec![*shape])
        }

        BlockKind::Selector { mode } => {
            let n = expect_vector(in_shapes[0], "selector input")?;
            match mode {
                SelectorMode::StartEnd { start, end } => {
                    if start >= end {
                        return Err(format!("empty selector range [{start}, {end})"));
                    }
                    if *end > n {
                        return Err(format!(
                            "selector range [{start}, {end}) exceeds input length {n}"
                        ));
                    }
                    Ok(vec![Shape::Vector(end - start)])
                }
                SelectorMode::IndexVector(idxs) => {
                    if idxs.is_empty() {
                        return Err("empty selector index vector".into());
                    }
                    if let Some(&bad) = idxs.iter().find(|&&i| i >= n) {
                        return Err(format!("selector index {bad} exceeds input length {n}"));
                    }
                    Ok(vec![Shape::Vector(idxs.len())])
                }
                SelectorMode::IndexPort { output_len } => {
                    if *output_len == 0 {
                        return Err("selector with zero output length".into());
                    }
                    Ok(vec![Shape::Vector(*output_len)])
                }
            }
        }

        BlockKind::Pad { left, right, .. } => {
            let n = expect_vector(in_shapes[0], "pad input")?;
            Ok(vec![Shape::Vector(left + n + right)])
        }

        BlockKind::Submatrix {
            row_start,
            row_end,
            col_start,
            col_end,
        } => match in_shapes[0] {
            Shape::Matrix(r, c) => {
                if row_start >= row_end || col_start >= col_end {
                    return Err("empty submatrix region".into());
                }
                if *row_end > r || *col_end > c {
                    return Err(format!(
                        "submatrix region [{row_start},{row_end})x[{col_start},{col_end}) exceeds {r}x{c}"
                    ));
                }
                Ok(vec![Shape::Matrix(
                    row_end - row_start,
                    col_end - col_start,
                )])
            }
            s => Err(format!("submatrix input must be a matrix, got {s}")),
        },

        BlockKind::Assignment { start } => {
            let n = expect_vector(in_shapes[0], "assignment base")?;
            let p = expect_vector(in_shapes[1], "assignment patch")?;
            if start + p > n {
                return Err(format!(
                    "assignment patch [{start}, {}) exceeds base length {n}",
                    start + p
                ));
            }
            Ok(vec![Shape::Vector(n)])
        }

        BlockKind::Mux { .. } | BlockKind::Concatenate { .. } => {
            let mut total = 0;
            for (i, s) in in_shapes.iter().enumerate() {
                total += expect_vector(*s, &format!("mux input {i}"))?;
            }
            Ok(vec![Shape::Vector(total)])
        }

        BlockKind::Demux { sizes } => {
            let n = expect_vector(in_shapes[0], "demux input")?;
            let sum: usize = sizes.iter().sum();
            if sum != n {
                return Err(format!(
                    "demux sizes sum to {sum} but input has {n} elements"
                ));
            }
            if sizes.contains(&0) {
                return Err("demux piece of zero size".into());
            }
            Ok(sizes.iter().map(|&s| Shape::Vector(s)).collect())
        }

        BlockKind::Convolution => {
            let n = expect_vector(in_shapes[0], "convolution data")?;
            let m = expect_vector(in_shapes[1], "convolution kernel")?;
            Ok(vec![Shape::Vector(n + m - 1)])
        }

        BlockKind::FirFilter { coeffs } => {
            if coeffs.is_empty() {
                return Err("FIR filter with no coefficients".into());
            }
            let n = expect_vector(in_shapes[0], "FIR input")?;
            Ok(vec![Shape::Vector(n)])
        }

        BlockKind::MovingAverage { window } => {
            if *window == 0 {
                return Err("moving average with zero window".into());
            }
            let n = expect_vector(in_shapes[0], "moving average input")?;
            Ok(vec![Shape::Vector(n)])
        }

        BlockKind::Downsample { factor, phase } => {
            if *factor == 0 {
                return Err("downsample with zero factor".into());
            }
            let n = expect_vector(in_shapes[0], "downsample input")?;
            if *phase >= n {
                return Err(format!("downsample phase {phase} exceeds input length {n}"));
            }
            Ok(vec![Shape::Vector((n - phase).div_ceil(*factor))])
        }

        BlockKind::CumulativeSum | BlockKind::Difference => {
            let n = expect_vector(in_shapes[0], "input")?;
            Ok(vec![Shape::Vector(n)])
        }

        BlockKind::UnitDelay { initial } => {
            if in_shapes[0] != initial.shape() {
                return Err(format!(
                    "unit delay initial condition shape {} does not match input {}",
                    initial.shape(),
                    in_shapes[0]
                ));
            }
            Ok(vec![initial.shape()])
        }

        BlockKind::Subsystem(_) => {
            Err("subsystems must be flattened before shape inference".into())
        }
    }
}

/// Derives the I/O mapping of `(out_port → in_port)` for a block.
///
/// This is the mapping half of the block property library (paper Figure 3):
/// given the block's type, parameters, and resolved port shapes, it returns
/// the [`PortMap`] that converts an output-element request into the input
/// elements required from `in_port`.
///
/// # Panics
///
/// Panics if the port indices exceed the block's arity; callers obtain port
/// counts from [`BlockKind::num_inputs`]/[`BlockKind::num_outputs`].
pub fn io_map(
    kind: &BlockKind,
    out_port: usize,
    in_port: usize,
    in_shapes: &[Shape],
    out_shapes: &[Shape],
) -> PortMap {
    assert!(in_port < kind.num_inputs(), "input port out of range");
    let in_len = in_shapes[in_port].numel();
    // Elementwise with scalar-broadcast handling, shared by math blocks.
    let elementwise = |in_port: usize| -> PortMap {
        if in_shapes[in_port].is_scalar() && !out_shapes[out_port].is_scalar() {
            PortMap::all(1)
        } else {
            PortMap::Elementwise
        }
    };
    match kind {
        BlockKind::Inport { .. } | BlockKind::Constant { .. } => {
            unreachable!("sources have no inputs")
        }

        BlockKind::Outport { .. } | BlockKind::Terminator => {
            // Sinks have no outputs; io_map is never asked for them in the
            // range recursion, but keep a sane answer for generic callers.
            PortMap::Elementwise
        }

        BlockKind::Gain { .. }
        | BlockKind::Bias { .. }
        | BlockKind::Abs
        | BlockKind::Sqrt
        | BlockKind::Square
        | BlockKind::Exp
        | BlockKind::Log
        | BlockKind::Sin
        | BlockKind::Cos
        | BlockKind::Tanh
        | BlockKind::Negate
        | BlockKind::Reciprocal
        | BlockKind::Saturation { .. }
        | BlockKind::Rounding { .. }
        | BlockKind::Add
        | BlockKind::Subtract
        | BlockKind::Multiply
        | BlockKind::Divide
        | BlockKind::Min
        | BlockKind::Max
        | BlockKind::Mod
        | BlockKind::Relational { .. }
        | BlockKind::Logical { .. }
        | BlockKind::Switch { .. } => elementwise(in_port),

        BlockKind::SumOfElements
        | BlockKind::MeanOfElements
        | BlockKind::MinOfElements
        | BlockKind::MaxOfElements
        | BlockKind::DotProduct => PortMap::all(in_len),

        BlockKind::MatrixMultiply => {
            if in_port == 0 {
                // output row r reads only row r of the left operand
                PortMap::RowsOf {
                    out_cols: out_shapes[0].cols(),
                    in_cols: in_shapes[0].cols(),
                }
            } else {
                // every output column can be requested, so the right
                // operand is needed in full (column-granular refinement is
                // possible but our calculation ranges are row-major runs)
                PortMap::all(in_len)
            }
        }

        BlockKind::Transpose => PortMap::Transpose {
            out_rows: out_shapes[0].rows(),
            out_cols: out_shapes[0].cols(),
        },

        BlockKind::Reshape { .. } => PortMap::Elementwise,

        BlockKind::Selector { mode } => match (mode, in_port) {
            (SelectorMode::StartEnd { start, .. }, 0) => PortMap::shift(*start as isize, in_len),
            (SelectorMode::IndexVector(idxs), 0) => PortMap::Gather(idxs.clone()),
            (SelectorMode::IndexPort { .. }, 0) => PortMap::Dynamic { input_len: in_len },
            (SelectorMode::IndexPort { .. }, _) => PortMap::all(in_len),
            _ => unreachable!("selector port arity"),
        },

        BlockKind::Pad { left, .. } => PortMap::shift(-(*left as isize), in_len),

        BlockKind::Submatrix {
            row_start,
            col_start,
            ..
        } => {
            // Exact rectangular gather: output (i, j) reads input
            // (row_start + i, col_start + j).
            let out = out_shapes[0];
            let in_cols = in_shapes[0].cols();
            let (orows, ocols) = (out.rows(), out.cols());
            let mut table = Vec::with_capacity(orows * ocols);
            for i in 0..orows {
                for j in 0..ocols {
                    table.push((row_start + i) * in_cols + (col_start + j));
                }
            }
            PortMap::Gather(table)
        }

        BlockKind::Assignment { start } => {
            let patch = in_shapes[1].numel();
            if in_port == 0 {
                PortMap::ExceptSegment {
                    start: *start,
                    end: start + patch,
                }
            } else {
                PortMap::Segment {
                    start_in_output: *start,
                    len: patch,
                }
            }
        }

        BlockKind::Mux { .. } | BlockKind::Concatenate { .. } => {
            let start: usize = in_shapes[..in_port].iter().map(Shape::numel).sum();
            PortMap::Segment {
                start_in_output: start,
                len: in_len,
            }
        }

        BlockKind::Demux { sizes } => {
            let offset: usize = sizes[..out_port].iter().sum();
            PortMap::shift(offset as isize, in_len)
        }

        BlockKind::Convolution => {
            // out[k] = Σ_j in0[j] · in1[k − j]; for either operand the needed
            // window extends (other_len − 1) below the requested output index.
            let other = in_shapes[1 - in_port].numel();
            PortMap::window(other - 1, 0, in_len)
        }

        BlockKind::FirFilter { coeffs } => PortMap::window(coeffs.len() - 1, 0, in_len),

        BlockKind::MovingAverage { window } => PortMap::window(window - 1, 0, in_len),

        BlockKind::Downsample { factor, phase } => PortMap::Stride {
            stride: *factor,
            phase: *phase,
            input_len: in_len,
        },

        BlockKind::CumulativeSum => PortMap::window(in_len, 0, in_len),

        BlockKind::Difference => PortMap::window(1, 0, in_len),

        // State must be maintained for the next step regardless of which
        // outputs are consumed, so delays demand their full input.
        BlockKind::UnitDelay { .. } => PortMap::all(in_len),

        BlockKind::Subsystem(_) => PortMap::all(in_len),
    }
}

/// Runs shape inference over a (flattened) model.
///
/// Uses a worklist: a block's outputs are computed once all of its input
/// shapes are known; source blocks seed the process.
///
/// # Errors
///
/// Propagates shape-rule failures as [`ModelError::ShapeMismatch`] or
/// [`ModelError::BadParameter`], reports unconnected inputs, and reports an
/// [`ModelError::AlgebraicLoop`] when inference cannot complete.
pub fn infer_shapes(model: &Model) -> Result<ShapeTable, ModelError> {
    let mut table = ShapeTable::new();
    // Pre-check connectivity so the fixpoint cannot stall on missing wires.
    for (id, block) in model.iter() {
        for p in 0..block.kind.num_inputs() {
            let port = InPort::new(id, p);
            if model.source_of(port).is_none() {
                return Err(ModelError::UnconnectedInput(port));
            }
        }
    }

    // Unit delays emit their initial-condition shape before any block runs,
    // which is what lets inference cross feedback loops broken by delays.
    for (id, block) in model.iter() {
        if let BlockKind::UnitDelay { initial } = &block.kind {
            table.set_output(OutPort::new(id, 0), initial.shape());
        }
    }

    let mut done = vec![false; model.len()];
    let mut remaining = model.len();
    loop {
        let mut progressed = false;
        for (id, block) in model.iter() {
            if done[id.index()] {
                continue;
            }
            let n_in = block.kind.num_inputs();
            let mut in_shapes = Vec::with_capacity(n_in);
            let mut ready = true;
            for p in 0..n_in {
                let src = model.source_of(InPort::new(id, p)).expect("checked above");
                match table.try_output(src.block, src.port) {
                    Some(s) => in_shapes.push(s),
                    None => {
                        ready = false;
                        break;
                    }
                }
            }
            if !ready {
                continue;
            }
            let outs = output_shapes(&block.kind, &in_shapes).map_err(|reason| {
                if reason.contains("parameter") || is_parameter_error(&block.kind, &reason) {
                    ModelError::BadParameter { block: id, reason }
                } else {
                    ModelError::ShapeMismatch { block: id, reason }
                }
            })?;
            for (p, s) in in_shapes.iter().enumerate() {
                table.set_input(InPort::new(id, p), *s);
            }
            for (p, s) in outs.iter().enumerate() {
                table.set_output(OutPort::new(id, p), *s);
            }
            done[id.index()] = true;
            remaining -= 1;
            progressed = true;
        }
        if remaining == 0 {
            return Ok(table);
        }
        if !progressed {
            let cycle: Vec<BlockId> = model.ids().filter(|id| !done[id.index()]).collect();
            return Err(ModelError::AlgebraicLoop { cycle });
        }
    }
}

fn is_parameter_error(kind: &BlockKind, reason: &str) -> bool {
    // Heuristic split between "your wiring is wrong" and "your block
    // parameters are wrong" for friendlier diagnostics.
    matches!(
        kind,
        BlockKind::Selector { .. }
            | BlockKind::Submatrix { .. }
            | BlockKind::Demux { .. }
            | BlockKind::FirFilter { .. }
            | BlockKind::MovingAverage { .. }
    ) && ["empty", "zero", "exceeds", "sum to"]
        .iter()
        .any(|needle| reason.contains(needle))
}

/// Convenience wrapper: the full set of I/O mappings of one block, indexed
/// `[out_port][in_port]`, as the paper's "I/O mapping derivation" produces.
pub fn io_maps_of(block: &Block, in_shapes: &[Shape], out_shapes: &[Shape]) -> Vec<Vec<PortMap>> {
    let n_out = block.kind.num_outputs();
    let n_in = block.kind.num_inputs();
    (0..n_out)
        .map(|o| {
            (0..n_in)
                .map(|i| io_map(&block.kind, o, i, in_shapes, out_shapes))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;
    use frodo_ranges::IndexSet;

    #[test]
    fn broadcast_rules() {
        assert_eq!(
            broadcast(Shape::Scalar, Shape::Vector(5)).unwrap(),
            Shape::Vector(5)
        );
        assert_eq!(
            broadcast(Shape::Vector(5), Shape::Scalar).unwrap(),
            Shape::Vector(5)
        );
        assert_eq!(
            broadcast(Shape::Vector(5), Shape::Vector(5)).unwrap(),
            Shape::Vector(5)
        );
        assert!(broadcast(Shape::Vector(5), Shape::Vector(6)).is_err());
    }

    #[test]
    fn convolution_output_is_full_padding() {
        let outs = output_shapes(
            &BlockKind::Convolution,
            &[Shape::Vector(50), Shape::Vector(11)],
        )
        .unwrap();
        assert_eq!(outs, vec![Shape::Vector(60)]);
    }

    #[test]
    fn selector_shapes_and_errors() {
        let sel = BlockKind::Selector {
            mode: SelectorMode::StartEnd { start: 5, end: 55 },
        };
        assert_eq!(
            output_shapes(&sel, &[Shape::Vector(60)]).unwrap(),
            vec![Shape::Vector(50)]
        );
        assert!(output_shapes(&sel, &[Shape::Vector(40)]).is_err());
        let empty = BlockKind::Selector {
            mode: SelectorMode::StartEnd { start: 5, end: 5 },
        };
        assert!(output_shapes(&empty, &[Shape::Vector(60)]).is_err());
    }

    #[test]
    fn pad_grows_both_sides() {
        let pad = BlockKind::Pad {
            left: 3,
            right: 2,
            value: 0.0,
        };
        assert_eq!(
            output_shapes(&pad, &[Shape::Vector(10)]).unwrap(),
            vec![Shape::Vector(15)]
        );
    }

    #[test]
    fn submatrix_shape_and_bounds() {
        let sm = BlockKind::Submatrix {
            row_start: 1,
            row_end: 3,
            col_start: 0,
            col_end: 2,
        };
        assert_eq!(
            output_shapes(&sm, &[Shape::Matrix(4, 4)]).unwrap(),
            vec![Shape::Matrix(2, 2)]
        );
        assert!(output_shapes(&sm, &[Shape::Matrix(2, 2)]).is_err());
        assert!(output_shapes(&sm, &[Shape::Vector(8)]).is_err());
    }

    #[test]
    fn matrix_multiply_checks_inner_dims() {
        let mm = BlockKind::MatrixMultiply;
        assert_eq!(
            output_shapes(&mm, &[Shape::Matrix(2, 3), Shape::Matrix(3, 5)]).unwrap(),
            vec![Shape::Matrix(2, 5)]
        );
        assert!(output_shapes(&mm, &[Shape::Matrix(2, 3), Shape::Matrix(4, 5)]).is_err());
    }

    #[test]
    fn demux_requires_exact_partition() {
        let d = BlockKind::Demux { sizes: vec![2, 3] };
        assert_eq!(
            output_shapes(&d, &[Shape::Vector(5)]).unwrap(),
            vec![Shape::Vector(2), Shape::Vector(3)]
        );
        assert!(output_shapes(&d, &[Shape::Vector(6)]).is_err());
    }

    #[test]
    fn switch_control_must_match_or_broadcast() {
        let sw = BlockKind::Switch { threshold: 0.5 };
        let v = Shape::Vector(4);
        assert_eq!(output_shapes(&sw, &[v, Shape::Scalar, v]).unwrap(), vec![v]);
        assert_eq!(output_shapes(&sw, &[v, v, v]).unwrap(), vec![v]);
        assert!(output_shapes(&sw, &[v, Shape::Vector(3), v]).is_err());
    }

    #[test]
    fn io_map_selector_matches_paper_figure3() {
        let sel = BlockKind::Selector {
            mode: SelectorMode::StartEnd { start: 5, end: 55 },
        };
        let m = io_map(&sel, 0, 0, &[Shape::Vector(60)], &[Shape::Vector(50)]);
        // O[0] = U[5], O[49] = U[54]
        assert_eq!(m.apply(&IndexSet::point(0)), IndexSet::point(5));
        assert_eq!(m.apply(&IndexSet::point(49)), IndexSet::point(54));
    }

    #[test]
    fn io_map_convolution_window() {
        let m = io_map(
            &BlockKind::Convolution,
            0,
            0,
            &[Shape::Vector(50), Shape::Vector(11)],
            &[Shape::Vector(60)],
        );
        // same-convolution request [5, 55) needs data [0, 50) — everything,
        // but a narrower request shrinks proportionally
        assert_eq!(m.apply(&IndexSet::from_range(5, 55)), IndexSet::full(50));
        assert_eq!(
            m.apply(&IndexSet::from_range(20, 25)),
            IndexSet::from_range(10, 25)
        );
    }

    #[test]
    fn io_map_scalar_broadcast_is_all() {
        let m = io_map(
            &BlockKind::Add,
            0,
            1,
            &[Shape::Vector(8), Shape::Scalar],
            &[Shape::Vector(8)],
        );
        assert_eq!(m, PortMap::all(1));
        let m0 = io_map(
            &BlockKind::Add,
            0,
            0,
            &[Shape::Vector(8), Shape::Scalar],
            &[Shape::Vector(8)],
        );
        assert_eq!(m0, PortMap::Elementwise);
    }

    #[test]
    fn io_map_mux_segments() {
        let mux = BlockKind::Mux { inputs: 3 };
        let ins = [Shape::Vector(2), Shape::Vector(3), Shape::Vector(4)];
        let outs = [Shape::Vector(9)];
        assert_eq!(
            io_map(&mux, 0, 1, &ins, &outs),
            PortMap::Segment {
                start_in_output: 2,
                len: 3
            }
        );
        assert_eq!(
            io_map(&mux, 0, 2, &ins, &outs),
            PortMap::Segment {
                start_in_output: 5,
                len: 4
            }
        );
    }

    #[test]
    fn io_map_demux_shifts() {
        let d = BlockKind::Demux {
            sizes: vec![2, 3, 4],
        };
        let ins = [Shape::Vector(9)];
        let outs = [Shape::Vector(2), Shape::Vector(3), Shape::Vector(4)];
        assert_eq!(io_map(&d, 2, 0, &ins, &outs), PortMap::shift(5, 9));
    }

    #[test]
    fn io_map_submatrix_gather_is_exact() {
        let sm = BlockKind::Submatrix {
            row_start: 1,
            row_end: 3,
            col_start: 1,
            col_end: 3,
        };
        let m = io_map(&sm, 0, 0, &[Shape::Matrix(4, 4)], &[Shape::Matrix(2, 2)]);
        // out (0,0) = in (1,1) = flat 5; out (1,1) = in (2,2) = flat 10
        assert_eq!(m.apply(&IndexSet::point(0)), IndexSet::point(5));
        assert_eq!(m.apply(&IndexSet::point(3)), IndexSet::point(10));
    }

    #[test]
    fn io_map_unit_delay_is_conservative() {
        let m = io_map(
            &BlockKind::UnitDelay {
                initial: Tensor::scalar(0.0),
            },
            0,
            0,
            &[Shape::Vector(6)],
            &[Shape::Vector(6)],
        );
        assert_eq!(m, PortMap::all(6));
        assert!(!m.is_range_transparent());
    }

    #[test]
    fn io_maps_of_covers_all_port_pairs() {
        let b = Block::new("c", BlockKind::Convolution);
        let maps = io_maps_of(
            &b,
            &[Shape::Vector(10), Shape::Vector(3)],
            &[Shape::Vector(12)],
        );
        assert_eq!(maps.len(), 1);
        assert_eq!(maps[0].len(), 2);
    }

    #[test]
    fn infer_shapes_full_pipeline() {
        // in(50) -> conv(+k11) -> selector[5,55) -> out
        let mut m = Model::new("conv");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: Tensor::vector(vec![1.0; 11]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        let t = m.infer_shapes().unwrap();
        assert_eq!(t.output(c, 0), Shape::Vector(60));
        assert_eq!(t.output(s, 0), Shape::Vector(50));
        assert_eq!(t.input(o, 0), Shape::Vector(50));
    }

    #[test]
    fn infer_shapes_reports_unconnected_input() {
        let mut m = Model::new("broken");
        let _ = m.add(Block::new("a", BlockKind::Abs));
        let err = m.infer_shapes().unwrap_err();
        assert!(matches!(err, ModelError::UnconnectedInput(_)));
    }

    #[test]
    fn infer_shapes_reports_algebraic_loop() {
        // a -> b -> a with no state: unresolvable
        let mut m = Model::new("loop");
        let a = m.add(Block::new("a", BlockKind::Abs));
        let b = m.add(Block::new("b", BlockKind::Negate));
        m.connect(a, 0, b, 0).unwrap();
        m.connect(b, 0, a, 0).unwrap();
        let err = m.infer_shapes().unwrap_err();
        assert!(matches!(err, ModelError::AlgebraicLoop { .. }));
    }

    #[test]
    fn infer_shapes_reports_mismatch_with_block_id() {
        let mut m = Model::new("bad");
        let a = m.add(Block::new(
            "a",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(3),
            },
        ));
        let b = m.add(Block::new(
            "b",
            BlockKind::Inport {
                index: 1,
                shape: Shape::Vector(4),
            },
        ));
        let add = m.add(Block::new("add", BlockKind::Add));
        let o = m.add(Block::new("o", BlockKind::Outport { index: 0 }));
        m.connect(a, 0, add, 0).unwrap();
        m.connect(b, 0, add, 1).unwrap();
        m.connect(add, 0, o, 0).unwrap();
        match m.infer_shapes().unwrap_err() {
            ModelError::ShapeMismatch { block, .. } => assert_eq!(block, add),
            e => panic!("unexpected error {e}"),
        }
    }
}
