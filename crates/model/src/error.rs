//! Model-construction and analysis errors.

use crate::{BlockId, InPort, OutPort};
use frodo_ranges::Shape;
use std::fmt;

/// Errors raised while building, validating, or analysing a model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A referenced block id does not exist in the model.
    UnknownBlock(BlockId),
    /// A connection names an output port the source block does not have.
    BadOutPort {
        /// The offending port reference.
        port: OutPort,
        /// How many output ports the block actually has.
        available: usize,
    },
    /// A connection names an input port the destination block does not have.
    BadInPort {
        /// The offending port reference.
        port: InPort,
        /// How many input ports the block actually has.
        available: usize,
    },
    /// An input port has more than one incoming connection.
    DuplicateInput(InPort),
    /// An input port is left unconnected.
    UnconnectedInput(InPort),
    /// Shape inference found incompatible operand shapes.
    ShapeMismatch {
        /// The block at which inference failed.
        block: BlockId,
        /// Explanation of the incompatibility.
        reason: String,
    },
    /// A block parameter is invalid (e.g. an empty selector range).
    BadParameter {
        /// The block with the bad parameter.
        block: BlockId,
        /// Explanation of the problem.
        reason: String,
    },
    /// The dataflow graph contains a cycle not broken by a stateful block.
    AlgebraicLoop {
        /// Blocks on the cycle, in discovery order.
        cycle: Vec<BlockId>,
    },
    /// A subsystem's inner `Inport`/`Outport` indices are inconsistent.
    BadSubsystem {
        /// The subsystem block.
        block: BlockId,
        /// Explanation of the problem.
        reason: String,
    },
    /// Shape mismatch between declared and inferred shapes (used by formats).
    DeclaredShapeMismatch {
        /// The block whose declaration disagrees.
        block: BlockId,
        /// The declared shape.
        declared: Shape,
        /// The inferred shape.
        inferred: Shape,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownBlock(b) => write!(f, "unknown block {b}"),
            ModelError::BadOutPort { port, available } => write!(
                f,
                "output port {port} does not exist (block has {available} outputs)"
            ),
            ModelError::BadInPort { port, available } => write!(
                f,
                "input port {port} does not exist (block has {available} inputs)"
            ),
            ModelError::DuplicateInput(p) => {
                write!(f, "input port {p} has more than one incoming connection")
            }
            ModelError::UnconnectedInput(p) => write!(f, "input port {p} is unconnected"),
            ModelError::ShapeMismatch { block, reason } => {
                write!(f, "shape mismatch at {block}: {reason}")
            }
            ModelError::BadParameter { block, reason } => {
                write!(f, "bad parameter at {block}: {reason}")
            }
            ModelError::AlgebraicLoop { cycle } => {
                let names: Vec<String> = cycle.iter().map(|b| b.to_string()).collect();
                write!(f, "algebraic loop through [{}]", names.join(", "))
            }
            ModelError::BadSubsystem { block, reason } => {
                write!(f, "bad subsystem at {block}: {reason}")
            }
            ModelError::DeclaredShapeMismatch {
                block,
                declared,
                inferred,
            } => write!(
                f,
                "declared shape {declared} of {block} disagrees with inferred {inferred}"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_usefully() {
        let b = BlockId::from_index(3);
        let e = ModelError::ShapeMismatch {
            block: b,
            reason: "2 vs 3 elements".into(),
        };
        assert!(e.to_string().contains("b3"));
        assert!(e.to_string().contains("2 vs 3"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync>(_: E) {}
        takes_err(ModelError::UnknownBlock(BlockId::from_index(0)));
    }
}
