//! The [`Model`] container: blocks + port-accurate connections.

use crate::{Block, BlockId, BlockKind, InPort, ModelError, OutPort};
use frodo_ranges::Shape;
use std::collections::BTreeMap;
use std::fmt;

/// A directed, port-accurate connection between two blocks.
///
/// The paper stresses that "different ports can have distinct functionalities
/// and mismatched ports can result in incorrect code" — connections therefore
/// always carry both endpoint port indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Connection {
    /// Source (producing) endpoint.
    pub from: OutPort,
    /// Destination (consuming) endpoint.
    pub to: InPort,
}

/// A Simulink model: named blocks and the connections between them.
///
/// See the [crate-level example](crate) for typical construction. Models are
/// hierarchical via [`BlockKind::Subsystem`] and can be flattened with
/// [`Model::flattened`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Model {
    name: String,
    blocks: Vec<Block>,
    connections: Vec<Connection>,
}

impl Model {
    /// Creates an empty model.
    pub fn new(name: impl Into<String>) -> Self {
        Model {
            name: name.into(),
            blocks: Vec::new(),
            connections: Vec::new(),
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a block, returning its handle.
    pub fn add(&mut self, block: Block) -> BlockId {
        let id = BlockId(self.blocks.len());
        self.blocks.push(block);
        id
    }

    /// Connects output `src_port` of `src` to input `dst_port` of `dst`.
    ///
    /// # Errors
    ///
    /// Returns an error if either block or port does not exist, or if the
    /// destination port already has an incoming connection.
    pub fn connect(
        &mut self,
        src: BlockId,
        src_port: usize,
        dst: BlockId,
        dst_port: usize,
    ) -> Result<(), ModelError> {
        let from = OutPort::new(src, src_port);
        let to = InPort::new(dst, dst_port);
        let src_block = self
            .blocks
            .get(src.0)
            .ok_or(ModelError::UnknownBlock(src))?;
        if src_port >= src_block.kind.num_outputs() {
            return Err(ModelError::BadOutPort {
                port: from,
                available: src_block.kind.num_outputs(),
            });
        }
        let dst_block = self
            .blocks
            .get(dst.0)
            .ok_or(ModelError::UnknownBlock(dst))?;
        if dst_port >= dst_block.kind.num_inputs() {
            return Err(ModelError::BadInPort {
                port: to,
                available: dst_block.kind.num_inputs(),
            });
        }
        if self.connections.iter().any(|c| c.to == to) {
            return Err(ModelError::DuplicateInput(to));
        }
        self.connections.push(Connection { from, to });
        Ok(())
    }

    /// All blocks, indexable by [`BlockId::index`].
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0]
    }

    /// Mutable access to a block (used by format readers).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the model has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Iterates over `(id, block)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i), b))
    }

    /// All block handles.
    pub fn ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len()).map(BlockId)
    }

    /// All connections.
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// The producer feeding an input port, if connected.
    pub fn source_of(&self, port: InPort) -> Option<OutPort> {
        self.connections
            .iter()
            .find(|c| c.to == port)
            .map(|c| c.from)
    }

    /// All consumers of an output port.
    pub fn consumers_of(&self, port: OutPort) -> Vec<InPort> {
        self.connections
            .iter()
            .filter(|c| c.from == port)
            .map(|c| c.to)
            .collect()
    }

    /// Number of `Inport` blocks (= subsystem input ports when nested).
    pub fn num_inports(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(b.kind, BlockKind::Inport { .. }))
            .count()
    }

    /// Number of `Outport` blocks (= subsystem output ports when nested).
    pub fn num_outports(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(b.kind, BlockKind::Outport { .. }))
            .count()
    }

    /// The `Inport` block with the given index, if present.
    pub fn inport(&self, index: usize) -> Option<BlockId> {
        self.iter()
            .find(|(_, b)| matches!(b.kind, BlockKind::Inport { index: i, .. } if i == index))
            .map(|(id, _)| id)
    }

    /// The `Outport` block with the given index, if present.
    pub fn outport(&self, index: usize) -> Option<BlockId> {
        self.iter()
            .find(|(_, b)| matches!(b.kind, BlockKind::Outport { index: i } if i == index))
            .map(|(id, _)| id)
    }

    /// Finds a block by name (first match).
    pub fn find(&self, name: &str) -> Option<BlockId> {
        self.iter().find(|(_, b)| b.name == name).map(|(id, _)| id)
    }

    /// Total block count including blocks inside nested subsystems
    /// (what the paper's Table 1 `#Block` column reports).
    pub fn deep_len(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| match &b.kind {
                BlockKind::Subsystem(inner) => 1 + inner.deep_len(),
                _ => 1,
            })
            .sum()
    }

    /// Infers the shape of every signal in the model.
    ///
    /// Runs the block property library's shape rules over the graph with a
    /// worklist until a fixpoint. See [`crate::proplib::output_shapes`].
    ///
    /// # Errors
    ///
    /// Returns an error when operand shapes are incompatible, parameters are
    /// invalid, an input is unconnected, or an algebraic loop prevents
    /// inference from completing.
    pub fn infer_shapes(&self) -> Result<ShapeTable, ModelError> {
        crate::proplib::infer_shapes(self)
    }

    /// Validates structural well-formedness (ports, connectivity, shapes).
    ///
    /// # Errors
    ///
    /// Returns the first problem found; see [`ModelError`].
    pub fn validate(&self) -> Result<(), ModelError> {
        crate::validate::validate(self)
    }

    /// Returns a copy with every [`BlockKind::Subsystem`] flattened away,
    /// its inner blocks rewired to the outer connections; recorded as a
    /// `flatten` span (with a `blocks_flattened` counter) on the given
    /// trace. Pass `&Trace::noop()` when no instrumentation is wanted.
    ///
    /// # Errors
    ///
    /// Returns an error if a subsystem's port blocks are inconsistent.
    pub fn flattened(&self, trace: &frodo_obs::Trace) -> Result<Model, ModelError> {
        let span = trace.span("flatten");
        let flat = crate::flatten::flatten(self)?;
        span.count("blocks_flattened", flat.len() as u64);
        Ok(flat)
    }

    /// Deprecated alias of [`Model::flattened`], kept one release for
    /// callers of the old split traced/untraced entry points.
    ///
    /// # Errors
    ///
    /// Returns an error if a subsystem's port blocks are inconsistent.
    #[deprecated(since = "0.7.0", note = "use `flattened(trace)` instead")]
    pub fn flattened_traced(&self, trace: &frodo_obs::Trace) -> Result<Model, ModelError> {
        self.flattened(trace)
    }

    #[allow(dead_code)]
    pub(crate) fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    pub(crate) fn push_connection(&mut self, c: Connection) {
        self.connections.push(c);
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "model {} ({} blocks)", self.name, self.blocks.len())?;
        for (id, b) in self.iter() {
            writeln!(f, "  {id}: {b}")?;
        }
        for c in &self.connections {
            writeln!(f, "  {} -> {}", c.from, c.to)?;
        }
        Ok(())
    }
}

/// Inferred signal shapes for every port of every block in a model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShapeTable {
    outputs: BTreeMap<OutPort, Shape>,
    inputs: BTreeMap<InPort, Shape>,
}

impl ShapeTable {
    pub(crate) fn new() -> Self {
        ShapeTable::default()
    }

    pub(crate) fn set_output(&mut self, port: OutPort, shape: Shape) {
        self.outputs.insert(port, shape);
    }

    pub(crate) fn set_input(&mut self, port: InPort, shape: Shape) {
        self.inputs.insert(port, shape);
    }

    /// Shape of an output port.
    ///
    /// # Panics
    ///
    /// Panics if the port is not in the table (inference did not cover it).
    pub fn output(&self, block: BlockId, port: usize) -> Shape {
        self.outputs[&OutPort::new(block, port)]
    }

    /// Shape of an output port, if known.
    pub fn try_output(&self, block: BlockId, port: usize) -> Option<Shape> {
        self.outputs.get(&OutPort::new(block, port)).copied()
    }

    /// Shape of an input port.
    ///
    /// # Panics
    ///
    /// Panics if the port is not in the table.
    pub fn input(&self, block: BlockId, port: usize) -> Shape {
        self.inputs[&InPort::new(block, port)]
    }

    /// Shape of an input port, if known.
    pub fn try_input(&self, block: BlockId, port: usize) -> Option<Shape> {
        self.inputs.get(&InPort::new(block, port)).copied()
    }

    /// Shapes of all inputs of a block, in port order.
    pub fn inputs_of(&self, block: BlockId, n: usize) -> Vec<Shape> {
        (0..n).map(|p| self.input(block, p)).collect()
    }

    /// Shapes of all outputs of a block, in port order.
    pub fn outputs_of(&self, block: BlockId, n: usize) -> Vec<Shape> {
        (0..n).map(|p| self.output(block, p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn two_block_model() -> (Model, BlockId, BlockId) {
        let mut m = Model::new("t");
        let a = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(4),
            },
        ));
        let b = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        (m, a, b)
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_traced_shim_still_works() {
        let (mut m, a, b) = two_block_model();
        m.connect(a, 0, b, 0).unwrap();
        let noop = frodo_obs::Trace::noop();
        assert_eq!(
            m.flattened_traced(&noop).unwrap(),
            m.flattened(&noop).unwrap()
        );
    }

    #[test]
    fn connect_and_query_endpoints() {
        let (mut m, a, b) = two_block_model();
        m.connect(a, 0, b, 0).unwrap();
        assert_eq!(m.source_of(InPort::new(b, 0)), Some(OutPort::new(a, 0)));
        assert_eq!(m.consumers_of(OutPort::new(a, 0)), vec![InPort::new(b, 0)]);
    }

    #[test]
    fn connect_rejects_bad_ports() {
        let (mut m, a, b) = two_block_model();
        assert!(matches!(
            m.connect(a, 1, b, 0),
            Err(ModelError::BadOutPort { .. })
        ));
        assert!(matches!(
            m.connect(a, 0, b, 1),
            Err(ModelError::BadInPort { .. })
        ));
    }

    #[test]
    fn connect_rejects_duplicate_destination() {
        let mut m = Model::new("t");
        let a = m.add(Block::new(
            "a",
            BlockKind::Constant {
                value: Tensor::scalar(1.0),
            },
        ));
        let b = m.add(Block::new(
            "b",
            BlockKind::Constant {
                value: Tensor::scalar(2.0),
            },
        ));
        let s = m.add(Block::new("s", BlockKind::Terminator));
        m.connect(a, 0, s, 0).unwrap();
        assert_eq!(
            m.connect(b, 0, s, 0),
            Err(ModelError::DuplicateInput(InPort::new(s, 0)))
        );
    }

    #[test]
    fn connect_rejects_unknown_block() {
        let (mut m, a, _) = two_block_model();
        let ghost = BlockId::from_index(99);
        assert!(matches!(
            m.connect(a, 0, ghost, 0),
            Err(ModelError::UnknownBlock(_))
        ));
    }

    #[test]
    fn port_lookup_by_role() {
        let (m, a, b) = two_block_model();
        assert_eq!(m.inport(0), Some(a));
        assert_eq!(m.outport(0), Some(b));
        assert_eq!(m.inport(1), None);
        assert_eq!(m.num_inports(), 1);
        assert_eq!(m.num_outports(), 1);
    }

    #[test]
    fn find_by_name() {
        let (m, a, _) = two_block_model();
        assert_eq!(m.find("in"), Some(a));
        assert_eq!(m.find("nope"), None);
    }

    #[test]
    fn deep_len_counts_nested_blocks() {
        let mut inner = Model::new("inner");
        inner.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Scalar,
            },
        ));
        inner.add(Block::new("o", BlockKind::Outport { index: 0 }));
        let mut outer = Model::new("outer");
        outer.add(Block::new("sub", BlockKind::Subsystem(Box::new(inner))));
        assert_eq!(outer.len(), 1);
        assert_eq!(outer.deep_len(), 3);
    }

    #[test]
    fn display_lists_blocks_and_wires() {
        let (mut m, a, b) = two_block_model();
        m.connect(a, 0, b, 0).unwrap();
        let s = m.to_string();
        assert!(s.contains("model t"));
        assert!(s.contains("b0:out0 -> b1:in0"));
    }
}
