//! Simulink model intermediate representation for FRODO.
//!
//! This crate defines the in-memory form of a Simulink model as FRODO's
//! *model parse* stage produces it: blocks ([`Block`], [`BlockKind`]) with
//! typed parameters, port-accurate connections ([`Connection`]), hierarchical
//! subsystems with flattening ([`Model::flattened`]), and the **block property
//! library** ([`proplib`]) that records, per block type and parameters, the
//! output-shape rules and the I/O mappings used by redundancy elimination.
//!
//! # Example
//!
//! Build the paper's Figure-1 motivating model — a full convolution whose
//! output is truncated by a `Selector` back to a same-convolution:
//!
//! ```
//! use frodo_model::{Block, BlockKind, Model, SelectorMode, Tensor};
//! use frodo_ranges::Shape;
//!
//! # fn main() -> Result<(), frodo_model::ModelError> {
//! let mut m = Model::new("Convolution");
//! let input = m.add(Block::new("In", BlockKind::Inport { index: 0, shape: Shape::Vector(50) }));
//! let kernel = m.add(Block::new("Kernel", BlockKind::Constant {
//!     value: Tensor::vector(vec![0.25; 11]),
//! }));
//! let conv = m.add(Block::new("Conv", BlockKind::Convolution));
//! let sel = m.add(Block::new("Sel", BlockKind::Selector {
//!     mode: SelectorMode::StartEnd { start: 5, end: 55 },
//! }));
//! let out = m.add(Block::new("Out", BlockKind::Outport { index: 0 }));
//! m.connect(input, 0, conv, 0)?;
//! m.connect(kernel, 0, conv, 1)?;
//! m.connect(conv, 0, sel, 0)?;
//! m.connect(sel, 0, out, 0)?;
//! let shapes = m.infer_shapes()?;
//! assert_eq!(shapes.output(conv, 0), Shape::Vector(60)); // full padding: 50+11-1
//! assert_eq!(shapes.output(sel, 0), Shape::Vector(50));  // truncated back
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod error;
mod flatten;
mod port;
pub mod proplib;
mod system;
mod tensor;
mod validate;

pub use block::{Block, BlockKind, LogicOp, RelOp, RoundMode, SelectorMode};
pub use error::ModelError;
pub use port::{BlockId, InPort, OutPort};
pub use system::{Connection, Model, ShapeTable};
pub use tensor::Tensor;
