//! Dense `f64` tensors carried by Simulink signals.

use frodo_ranges::Shape;
use std::fmt;

/// A dense, row-major tensor of `f64` values with a [`Shape`].
///
/// Tensors are the runtime values of every signal in the reference simulator
/// and the constant payloads of `Constant` blocks.
///
/// # Example
///
/// ```
/// use frodo_model::Tensor;
/// use frodo_ranges::Shape;
///
/// let t = Tensor::matrix(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// assert_eq!(t.shape(), Shape::Matrix(2, 3));
/// assert_eq!(t.at(1, 2), 6.0);
/// assert_eq!(t.transposed().at(2, 1), 6.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a tensor, checking that `data.len()` matches the shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.numel()`.
    pub fn new(shape: Shape, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            shape.numel(),
            "tensor data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// A scalar tensor.
    pub fn scalar(v: f64) -> Self {
        Tensor::new(Shape::Scalar, vec![v])
    }

    /// A vector tensor.
    pub fn vector(data: Vec<f64>) -> Self {
        let n = data.len();
        Tensor::new(Shape::Vector(n), data)
    }

    /// A `rows × cols` matrix tensor from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn matrix(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        Tensor::new(Shape::Matrix(rows, cols), data)
    }

    /// An all-zero tensor of the given shape.
    pub fn zeros(shape: Shape) -> Self {
        Tensor::new(shape, vec![0.0; shape.numel()])
    }

    /// An all-`v` tensor of the given shape.
    pub fn fill(shape: Shape, v: f64) -> Self {
        Tensor::new(shape, vec![v; shape.numel()])
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// The flattened row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the flattened data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flattened data.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Element at flattened index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> f64 {
        self.data[i]
    }

    /// Element at `(row, col)` in the 2-D view.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn at(&self, row: usize, col: usize) -> f64 {
        self.data[self.shape.flatten(row, col)]
    }

    /// The scalar value, if this is a scalar or single-element tensor.
    pub fn as_scalar(&self) -> Option<f64> {
        if self.data.len() == 1 {
            Some(self.data[0])
        } else {
            None
        }
    }

    /// Reinterprets the data under a new shape with the same element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(&self, shape: Shape) -> Tensor {
        assert!(
            self.shape.same_numel(&shape),
            "cannot reshape {} to {shape}",
            self.shape
        );
        Tensor::new(shape, self.data.clone())
    }

    /// The matrix transpose (vectors become column matrices).
    pub fn transposed(&self) -> Tensor {
        let (r, c) = (self.shape.rows(), self.shape.cols());
        let mut out = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::new(self.shape.transposed(), out)
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch in comparison");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.shape {
            Shape::Scalar => write!(f, "{}", self.data[0]),
            Shape::Vector(_) => write!(f, "{:?}", self.data),
            Shape::Matrix(r, c) => {
                writeln!(f, "[{r}x{c}]")?;
                for i in 0..r {
                    writeln!(f, "  {:?}", &self.data[i * c..(i + 1) * c])?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_shape() {
        assert_eq!(Tensor::scalar(2.5).shape(), Shape::Scalar);
        assert_eq!(Tensor::vector(vec![1.0, 2.0]).shape(), Shape::Vector(2));
        assert_eq!(
            Tensor::matrix(2, 2, vec![0.0; 4]).shape(),
            Shape::Matrix(2, 2)
        );
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn new_rejects_wrong_length() {
        Tensor::new(Shape::Vector(3), vec![1.0]);
    }

    #[test]
    fn zeros_and_fill() {
        assert_eq!(Tensor::zeros(Shape::Vector(3)).data(), &[0.0, 0.0, 0.0]);
        assert_eq!(Tensor::fill(Shape::Vector(2), 7.0).data(), &[7.0, 7.0]);
    }

    #[test]
    fn at_uses_row_major() {
        let t = Tensor::matrix(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.at(0, 0), 1.0);
        assert_eq!(t.at(0, 2), 3.0);
        assert_eq!(t.at(1, 0), 4.0);
    }

    #[test]
    fn as_scalar_only_for_single_element() {
        assert_eq!(Tensor::scalar(3.0).as_scalar(), Some(3.0));
        assert_eq!(Tensor::vector(vec![5.0]).as_scalar(), Some(5.0));
        assert_eq!(Tensor::vector(vec![1.0, 2.0]).as_scalar(), None);
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::matrix(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let tt = t.transposed();
        assert_eq!(tt.shape(), Shape::Matrix(3, 2));
        assert_eq!(tt.at(0, 1), 4.0);
        assert_eq!(tt.transposed(), t);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::vector(vec![1.0, 2.0, 3.0, 4.0]);
        let m = t.reshaped(Shape::Matrix(2, 2));
        assert_eq!(m.at(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_rejects_numel_mismatch() {
        Tensor::vector(vec![1.0, 2.0]).reshaped(Shape::Matrix(2, 2));
    }

    #[test]
    fn max_abs_diff_measures_distance() {
        let a = Tensor::vector(vec![1.0, 2.0, 3.0]);
        let b = Tensor::vector(vec![1.0, 2.5, 2.0]);
        assert!((a.max_abs_diff(&b) - 1.0).abs() < 1e-12);
    }
}
