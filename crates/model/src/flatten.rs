//! Subsystem flattening.
//!
//! FRODO's model parse "flattens [Subsystem blocks], and maps their inports
//! and outports to the corresponding external blocks for further analysis"
//! (paper §3.1). [`flatten`] produces an equivalent model with no
//! [`BlockKind::Subsystem`] blocks: inner blocks are inlined with
//! `parent/child` names and the boundary ports are rewired away.

use crate::{Block, BlockId, BlockKind, Connection, InPort, Model, ModelError, OutPort};
use std::collections::BTreeMap;

/// Where an outer block landed in the flattened model.
enum Placement {
    /// A normal block, copied 1:1.
    Copied(BlockId),
    /// A subsystem: its inner (already flat) model plus the id map of the
    /// inner non-port blocks into the flattened model.
    Inlined {
        inner: Model,
        map: BTreeMap<BlockId, BlockId>,
    },
}

/// Flattens every subsystem (recursively) into a single-level model.
///
/// # Errors
///
/// Returns [`ModelError::BadSubsystem`] when a subsystem lacks the
/// `Inport`/`Outport` blocks its arity promises, when a boundary port is
/// unconnected, or when a chain of pass-through subsystems forms a cycle.
pub fn flatten(model: &Model) -> Result<Model, ModelError> {
    if !model
        .blocks()
        .iter()
        .any(|b| matches!(b.kind, BlockKind::Subsystem(_)))
    {
        return Ok(model.clone());
    }

    let mut out = Model::new(model.name());
    let mut placements: Vec<Placement> = Vec::with_capacity(model.len());

    for (id, block) in model.iter() {
        match &block.kind {
            BlockKind::Subsystem(inner) => {
                let flat_inner = flatten(inner)?;
                let mut map = BTreeMap::new();
                for (iid, iblock) in flat_inner.iter() {
                    if matches!(
                        iblock.kind,
                        BlockKind::Inport { .. } | BlockKind::Outport { .. }
                    ) {
                        continue;
                    }
                    let new_id = out.add(Block::new(
                        format!("{}/{}", block.name, iblock.name),
                        iblock.kind.clone(),
                    ));
                    map.insert(iid, new_id);
                }
                placements.push(Placement::Inlined {
                    inner: flat_inner,
                    map,
                });
                let _ = id;
            }
            kind => {
                let new_id = out.add(Block::new(block.name.clone(), kind.clone()));
                placements.push(Placement::Copied(new_id));
            }
        }
    }

    // Resolves an outer-model output port to a concrete port of the
    // flattened model, tunnelling through subsystem boundaries and chains of
    // pass-through subsystems.
    fn resolve_src(
        model: &Model,
        placements: &[Placement],
        from: OutPort,
        depth: usize,
    ) -> Result<OutPort, ModelError> {
        if depth > model.len() + 1 {
            return Err(ModelError::BadSubsystem {
                block: from.block,
                reason: "cycle of pass-through subsystems".into(),
            });
        }
        match &placements[from.block.index()] {
            Placement::Copied(new_id) => Ok(OutPort::new(*new_id, from.port)),
            Placement::Inlined { inner, map } => {
                let oport_block = inner.outport(from.port).ok_or(ModelError::BadSubsystem {
                    block: from.block,
                    reason: format!("missing inner Outport {}", from.port),
                })?;
                let inner_src = inner.source_of(InPort::new(oport_block, 0)).ok_or(
                    ModelError::BadSubsystem {
                        block: from.block,
                        reason: format!("inner Outport {} is unconnected", from.port),
                    },
                )?;
                match &inner.block(inner_src.block).kind {
                    BlockKind::Inport { index, .. } => {
                        // Pass-through: the subsystem output mirrors one of
                        // its inputs; follow the outer wire feeding it.
                        let outer_feed = model.source_of(InPort::new(from.block, *index)).ok_or(
                            ModelError::BadSubsystem {
                                block: from.block,
                                reason: format!("subsystem input {index} is unconnected"),
                            },
                        )?;
                        resolve_src(model, placements, outer_feed, depth + 1)
                    }
                    _ => Ok(OutPort::new(map[&inner_src.block], inner_src.port)),
                }
            }
        }
    }

    let mut edges: Vec<Connection> = Vec::new();

    // Inner connections of each inlined subsystem (excluding boundary ports).
    for placement in &placements {
        if let Placement::Inlined { inner, map } = placement {
            for c in inner.connections() {
                let src_is_port =
                    matches!(inner.block(c.from.block).kind, BlockKind::Inport { .. });
                let dst_is_port = matches!(inner.block(c.to.block).kind, BlockKind::Outport { .. });
                if src_is_port || dst_is_port {
                    continue;
                }
                edges.push(Connection {
                    from: OutPort::new(map[&c.from.block], c.from.port),
                    to: InPort::new(map[&c.to.block], c.to.port),
                });
            }
        }
    }

    // Outer connections, expanding subsystem boundaries on both ends.
    for c in model.connections() {
        let src = resolve_src(model, &placements, c.from, 0)?;
        match &placements[c.to.block.index()] {
            Placement::Copied(new_id) => {
                edges.push(Connection {
                    from: src,
                    to: InPort::new(*new_id, c.to.port),
                });
            }
            Placement::Inlined { inner, map } => {
                let iport_block = inner.inport(c.to.port).ok_or(ModelError::BadSubsystem {
                    block: c.to.block,
                    reason: format!("missing inner Inport {}", c.to.port),
                })?;
                for consumer in inner.consumers_of(OutPort::new(iport_block, 0)) {
                    if matches!(inner.block(consumer.block).kind, BlockKind::Outport { .. }) {
                        // Pass-through edge; realized when the subsystem's
                        // output is resolved as a source.
                        continue;
                    }
                    edges.push(Connection {
                        from: src,
                        to: InPort::new(map[&consumer.block], consumer.port),
                    });
                }
            }
        }
    }

    for e in edges {
        out.push_connection(e);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;
    use frodo_ranges::Shape;

    /// inner: in0 -> Gain(2) -> out0
    fn gain_subsystem() -> Model {
        let mut inner = Model::new("inner");
        let i = inner.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(4),
            },
        ));
        let g = inner.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let o = inner.add(Block::new("o", BlockKind::Outport { index: 0 }));
        inner.connect(i, 0, g, 0).unwrap();
        inner.connect(g, 0, o, 0).unwrap();
        inner
    }

    #[test]
    fn flatten_is_identity_without_subsystems() {
        let mut m = Model::new("flat");
        let a = m.add(Block::new(
            "a",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Scalar,
            },
        ));
        let b = m.add(Block::new("b", BlockKind::Outport { index: 0 }));
        m.connect(a, 0, b, 0).unwrap();
        let f = m.flattened(&frodo_obs::Trace::noop()).unwrap();
        assert_eq!(f, m);
    }

    #[test]
    fn flatten_inlines_gain_subsystem() {
        let mut m = Model::new("outer");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(4),
            },
        ));
        let s = m.add(Block::new(
            "sub",
            BlockKind::Subsystem(Box::new(gain_subsystem())),
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();

        let f = m.flattened(&frodo_obs::Trace::noop()).unwrap();
        // in, sub/g, out — boundary ports vanish
        assert_eq!(f.len(), 3);
        let g = f.find("sub/g").expect("inlined gain present");
        assert!(matches!(f.block(g).kind, BlockKind::Gain { .. }));
        // in -> gain -> out wiring survives
        let shapes = f.infer_shapes().unwrap();
        assert_eq!(shapes.output(g, 0), Shape::Vector(4));
    }

    #[test]
    fn flatten_handles_nested_subsystems() {
        let mut mid = Model::new("mid");
        let i = mid.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(4),
            },
        ));
        let s = mid.add(Block::new(
            "deep",
            BlockKind::Subsystem(Box::new(gain_subsystem())),
        ));
        let o = mid.add(Block::new("o", BlockKind::Outport { index: 0 }));
        mid.connect(i, 0, s, 0).unwrap();
        mid.connect(s, 0, o, 0).unwrap();

        let mut m = Model::new("outer");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(4),
            },
        ));
        let s = m.add(Block::new("sub", BlockKind::Subsystem(Box::new(mid))));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();

        let f = m.flattened(&frodo_obs::Trace::noop()).unwrap();
        assert!(f.find("sub/deep/g").is_some());
        assert!(f.infer_shapes().is_ok());
    }

    #[test]
    fn flatten_passthrough_subsystem() {
        // subsystem that just forwards its input
        let mut inner = Model::new("wire");
        let i = inner.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Scalar,
            },
        ));
        let o = inner.add(Block::new("o", BlockKind::Outport { index: 0 }));
        inner.connect(i, 0, o, 0).unwrap();

        let mut m = Model::new("outer");
        let c = m.add(Block::new(
            "c",
            BlockKind::Constant {
                value: Tensor::scalar(3.0),
            },
        ));
        let s = m.add(Block::new("sub", BlockKind::Subsystem(Box::new(inner))));
        let a = m.add(Block::new("abs", BlockKind::Abs));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, a, 0).unwrap();
        m.connect(a, 0, o, 0).unwrap();

        let f = m.flattened(&frodo_obs::Trace::noop()).unwrap();
        assert_eq!(f.len(), 3); // c, abs, out
        let shapes = f.infer_shapes().unwrap();
        let abs = f.find("abs").unwrap();
        assert_eq!(shapes.output(abs, 0), Shape::Scalar);
    }

    #[test]
    fn flatten_fan_out_into_subsystem() {
        // one outer wire feeding a subsystem input consumed by two inner blocks
        let mut inner = Model::new("fan");
        let i = inner.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(3),
            },
        ));
        let g1 = inner.add(Block::new("g1", BlockKind::Gain { gain: 2.0 }));
        let g2 = inner.add(Block::new("g2", BlockKind::Gain { gain: 3.0 }));
        let add = inner.add(Block::new("add", BlockKind::Add));
        let o = inner.add(Block::new("o", BlockKind::Outport { index: 0 }));
        inner.connect(i, 0, g1, 0).unwrap();
        inner.connect(i, 0, g2, 0).unwrap();
        inner.connect(g1, 0, add, 0).unwrap();
        inner.connect(g2, 0, add, 1).unwrap();
        inner.connect(add, 0, o, 0).unwrap();

        let mut m = Model::new("outer");
        let x = m.add(Block::new(
            "x",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(3),
            },
        ));
        let s = m.add(Block::new("sub", BlockKind::Subsystem(Box::new(inner))));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(x, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();

        let f = m.flattened(&frodo_obs::Trace::noop()).unwrap();
        assert!(f.infer_shapes().is_ok());
        // x feeds both inlined gains
        let x_new = f.find("x").unwrap();
        assert_eq!(f.consumers_of(OutPort::new(x_new, 0)).len(), 2);
    }

    #[test]
    fn flatten_reports_missing_inner_port() {
        let mut inner = Model::new("bad");
        // promises 1 input (has Inport) but no Outport, yet outer uses output 0
        let i = inner.add(Block::new(
            "i",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Scalar,
            },
        ));
        let t = inner.add(Block::new("t", BlockKind::Terminator));
        inner.connect(i, 0, t, 0).unwrap();

        let mut m = Model::new("outer");
        let c = m.add(Block::new(
            "c",
            BlockKind::Constant {
                value: Tensor::scalar(1.0),
            },
        ));
        let s = m.add(Block::new("sub", BlockKind::Subsystem(Box::new(inner))));
        m.connect(c, 0, s, 0).unwrap();
        // fake an output consumer by wiring from a port the subsystem lacks:
        // connect() already rejects this (0 outputs), so instead check that
        // flatten succeeds and simply drops nothing.
        let f = m.flattened(&frodo_obs::Trace::noop()).unwrap();
        assert_eq!(f.len(), 2); // c, sub/t
    }
}
