//! Block and port identifiers.

use std::fmt;

/// Opaque handle of a block inside one [`Model`](crate::Model).
///
/// Handles are dense indices assigned by [`Model::add`](crate::Model::add)
/// and remain valid for the lifetime of the model (blocks are never removed
/// from a model; flattening produces a *new* model with fresh ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) usize);

impl BlockId {
    /// The dense index of this block.
    pub fn index(&self) -> usize {
        self.0
    }

    /// Reconstructs an id from a dense index (for tables keyed by index).
    pub fn from_index(idx: usize) -> Self {
        BlockId(idx)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// An output port of a block: the source end of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OutPort {
    /// The owning block.
    pub block: BlockId,
    /// Zero-based output port index.
    pub port: usize,
}

impl OutPort {
    /// Creates an output-port reference.
    pub fn new(block: BlockId, port: usize) -> Self {
        OutPort { block, port }
    }
}

impl fmt::Display for OutPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:out{}", self.block, self.port)
    }
}

/// An input port of a block: the destination end of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InPort {
    /// The owning block.
    pub block: BlockId,
    /// Zero-based input port index.
    pub port: usize,
}

impl InPort {
    /// Creates an input-port reference.
    pub fn new(block: BlockId, port: usize) -> Self {
        InPort { block, port }
    }
}

impl fmt::Display for InPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:in{}", self.block, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_index() {
        let id = BlockId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "b7");
    }

    #[test]
    fn ports_display_block_and_port() {
        let b = BlockId::from_index(2);
        assert_eq!(OutPort::new(b, 0).to_string(), "b2:out0");
        assert_eq!(InPort::new(b, 1).to_string(), "b2:in1");
    }

    #[test]
    fn ports_are_ordered_for_use_as_map_keys() {
        let b = BlockId::from_index(0);
        assert!(OutPort::new(b, 0) < OutPort::new(b, 1));
        assert!(InPort::new(b, 0) < InPort::new(BlockId::from_index(1), 0));
    }
}
