//! Block definitions: the vocabulary of supported Simulink blocks.

use crate::Tensor;
use frodo_ranges::Shape;
use std::fmt;

/// Rounding modes of the `Rounding Function` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoundMode {
    /// Round toward negative infinity.
    Floor,
    /// Round toward positive infinity.
    Ceil,
    /// Round to nearest (ties away from zero, like C `round`).
    Round,
    /// Round toward zero.
    Fix,
}

/// Comparison operators of the `Relational Operator` block (output 0.0/1.0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// Operators of the `Logical Operator` block (inputs treated as booleans,
/// nonzero = true; output 0.0/1.0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicOp {
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
    /// Exclusive or.
    Xor,
    /// Negation (unary).
    Not,
}

/// Selection modes of the `Selector` block (paper Figure 3(a)).
#[derive(Debug, Clone, PartialEq)]
pub enum SelectorMode {
    /// Select the half-open index range `[start, end)` of the input.
    StartEnd {
        /// First selected index.
        start: usize,
        /// One past the last selected index.
        end: usize,
    },
    /// Select the listed input indices, in order.
    IndexVector(Vec<usize>),
    /// Indices arrive on a second input port at runtime; the static I/O
    /// mapping must conservatively assume the whole input is needed.
    IndexPort {
        /// Number of elements selected (fixes the output shape).
        output_len: usize,
    },
}

/// Every block type understood by the generator.
///
/// The set covers the categories the paper names — math operation blocks,
/// matrix operation blocks, data-truncation blocks (`Selector`, `Pad`,
/// `Submatrix`), routing, reductions, and the complex DSP blocks
/// (`Convolution`, FIR filtering) that make models data-intensive.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockKind {
    // ---- sources ----
    /// Model input with a declared shape.
    Inport {
        /// Position among the model's inputs.
        index: usize,
        /// Declared signal shape.
        shape: Shape,
    },
    /// Compile-time constant value.
    Constant {
        /// The constant tensor.
        value: Tensor,
    },

    // ---- sinks ----
    /// Model output.
    Outport {
        /// Position among the model's outputs.
        index: usize,
    },
    /// Discards its input (classic dead-end sink).
    Terminator,

    // ---- unary elementwise math ----
    /// Multiply by a constant.
    Gain {
        /// The gain factor.
        gain: f64,
    },
    /// Add a constant.
    Bias {
        /// The additive bias.
        bias: f64,
    },
    /// Absolute value.
    Abs,
    /// Square root.
    Sqrt,
    /// Elementwise square.
    Square,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Hyperbolic tangent.
    Tanh,
    /// Unary minus.
    Negate,
    /// Multiplicative inverse.
    Reciprocal,
    /// Clamp into `[lower, upper]`.
    Saturation {
        /// Lower clamp bound.
        lower: f64,
        /// Upper clamp bound.
        upper: f64,
    },
    /// Rounding function.
    Rounding {
        /// Selected rounding mode.
        mode: RoundMode,
    },

    // ---- binary elementwise math (scalar broadcast allowed) ----
    /// Elementwise addition.
    Add,
    /// Elementwise subtraction.
    Subtract,
    /// Elementwise multiplication.
    Multiply,
    /// Elementwise division.
    Divide,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
    /// Elementwise floating-point modulo (C `fmod` semantics).
    Mod,
    /// Elementwise comparison producing 0.0/1.0.
    Relational {
        /// The comparison operator.
        op: RelOp,
    },
    /// Elementwise boolean logic on 0.0/1.0 signals.
    Logical {
        /// The logical operator ([`LogicOp::Not`] is unary).
        op: LogicOp,
    },
    /// Three-port switch: `out = control >= threshold ? first : second`.
    Switch {
        /// Control threshold.
        threshold: f64,
    },

    // ---- reductions ----
    /// Sum of all elements (scalar output).
    SumOfElements,
    /// Mean of all elements (scalar output).
    MeanOfElements,
    /// Minimum element (scalar output).
    MinOfElements,
    /// Maximum element (scalar output).
    MaxOfElements,
    /// Dot product of two equal-length signals (scalar output).
    DotProduct,

    // ---- matrix ----
    /// Matrix product `(r×k)·(k×c) → (r×c)`.
    MatrixMultiply,
    /// Matrix transpose (for real data this equals Hermitian transpose).
    Transpose,
    /// Row-major reinterpretation to a new shape with equal element count.
    Reshape {
        /// Target shape.
        shape: Shape,
    },

    // ---- data truncation & routing ----
    /// Data-truncation: pick elements of the input (paper Figure 3).
    Selector {
        /// How indices are chosen.
        mode: SelectorMode,
    },
    /// Data-truncation in reverse: surround the input with padding values.
    Pad {
        /// Padding elements prepended.
        left: usize,
        /// Padding elements appended.
        right: usize,
        /// The padding value.
        value: f64,
    },
    /// Data-truncation: extract a rectangular region of a matrix.
    Submatrix {
        /// First selected row.
        row_start: usize,
        /// One past the last selected row.
        row_end: usize,
        /// First selected column.
        col_start: usize,
        /// One past the last selected column.
        col_end: usize,
    },
    /// Data-truncation's dual: pass the first input through with the
    /// segment `[start, start + patch_len)` replaced by the second input
    /// (Simulink's `Assignment` block).
    Assignment {
        /// First replaced element.
        start: usize,
    },
    /// Concatenate `inputs` signals into one vector.
    Mux {
        /// Number of input ports.
        inputs: usize,
    },
    /// Split a vector into `sizes.len()` consecutive pieces.
    Demux {
        /// Element counts of the output pieces.
        sizes: Vec<usize>,
    },
    /// Vector concatenation (same semantics as [`BlockKind::Mux`]; Simulink
    /// distinguishes them, so the parser must too).
    Concatenate {
        /// Number of input ports.
        inputs: usize,
    },

    // ---- complex / DSP ----
    /// Full (padding) convolution of two vectors: `len = n + m - 1`
    /// (the implementation the paper's Figure 1 shows in green).
    Convolution,
    /// Direct-form FIR filter with constant coefficients; output length
    /// equals input length (zero initial conditions).
    FirFilter {
        /// Filter taps `b[0..]`.
        coeffs: Vec<f64>,
    },
    /// Trailing moving average over `window` samples (zero-padded start).
    MovingAverage {
        /// Window length in samples.
        window: usize,
    },
    /// Keep every `factor`-th sample starting at `phase` (decimation).
    Downsample {
        /// Decimation factor (≥ 1).
        factor: usize,
        /// Index of the first kept sample.
        phase: usize,
    },
    /// Running (cumulative) sum along the signal.
    CumulativeSum,
    /// First difference: `out[0] = in[0]`, `out[k] = in[k] - in[k-1]`.
    Difference,
    /// One-step delay with state (`z⁻¹`). The initial condition fixes the
    /// state shape, which lets shape inference resolve feedback loops.
    UnitDelay {
        /// State emitted on the first step; its shape is the signal shape.
        initial: Tensor,
    },

    // ---- hierarchy ----
    /// A nested model; its `Inport`/`Outport` blocks define this block's ports.
    Subsystem(Box<crate::Model>),
}

impl BlockKind {
    /// Stable lowercase identifier used by file formats and diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            BlockKind::Inport { .. } => "inport",
            BlockKind::Constant { .. } => "constant",
            BlockKind::Outport { .. } => "outport",
            BlockKind::Terminator => "terminator",
            BlockKind::Gain { .. } => "gain",
            BlockKind::Bias { .. } => "bias",
            BlockKind::Abs => "abs",
            BlockKind::Sqrt => "sqrt",
            BlockKind::Square => "square",
            BlockKind::Exp => "exp",
            BlockKind::Log => "log",
            BlockKind::Sin => "sin",
            BlockKind::Cos => "cos",
            BlockKind::Tanh => "tanh",
            BlockKind::Negate => "negate",
            BlockKind::Reciprocal => "reciprocal",
            BlockKind::Saturation { .. } => "saturation",
            BlockKind::Rounding { .. } => "rounding",
            BlockKind::Add => "add",
            BlockKind::Subtract => "subtract",
            BlockKind::Multiply => "multiply",
            BlockKind::Divide => "divide",
            BlockKind::Min => "min",
            BlockKind::Max => "max",
            BlockKind::Mod => "mod",
            BlockKind::Relational { .. } => "relational",
            BlockKind::Logical { .. } => "logical",
            BlockKind::Switch { .. } => "switch",
            BlockKind::SumOfElements => "sum_of_elements",
            BlockKind::MeanOfElements => "mean_of_elements",
            BlockKind::MinOfElements => "min_of_elements",
            BlockKind::MaxOfElements => "max_of_elements",
            BlockKind::DotProduct => "dot_product",
            BlockKind::MatrixMultiply => "matrix_multiply",
            BlockKind::Transpose => "transpose",
            BlockKind::Reshape { .. } => "reshape",
            BlockKind::Selector { .. } => "selector",
            BlockKind::Pad { .. } => "pad",
            BlockKind::Submatrix { .. } => "submatrix",
            BlockKind::Assignment { .. } => "assignment",
            BlockKind::Mux { .. } => "mux",
            BlockKind::Demux { .. } => "demux",
            BlockKind::Concatenate { .. } => "concatenate",
            BlockKind::Convolution => "convolution",
            BlockKind::FirFilter { .. } => "fir_filter",
            BlockKind::MovingAverage { .. } => "moving_average",
            BlockKind::Downsample { .. } => "downsample",
            BlockKind::CumulativeSum => "cumulative_sum",
            BlockKind::Difference => "difference",
            BlockKind::UnitDelay { .. } => "unit_delay",
            BlockKind::Subsystem(_) => "subsystem",
        }
    }

    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        match self {
            BlockKind::Inport { .. } | BlockKind::Constant { .. } => 0,
            BlockKind::Outport { .. }
            | BlockKind::Terminator
            | BlockKind::Gain { .. }
            | BlockKind::Bias { .. }
            | BlockKind::Abs
            | BlockKind::Sqrt
            | BlockKind::Square
            | BlockKind::Exp
            | BlockKind::Log
            | BlockKind::Sin
            | BlockKind::Cos
            | BlockKind::Tanh
            | BlockKind::Negate
            | BlockKind::Reciprocal
            | BlockKind::Saturation { .. }
            | BlockKind::Rounding { .. }
            | BlockKind::SumOfElements
            | BlockKind::MeanOfElements
            | BlockKind::MinOfElements
            | BlockKind::MaxOfElements
            | BlockKind::Transpose
            | BlockKind::Reshape { .. }
            | BlockKind::Pad { .. }
            | BlockKind::Submatrix { .. }
            | BlockKind::FirFilter { .. }
            | BlockKind::MovingAverage { .. }
            | BlockKind::Downsample { .. }
            | BlockKind::CumulativeSum
            | BlockKind::Difference
            | BlockKind::UnitDelay { .. }
            | BlockKind::Demux { .. } => 1,
            BlockKind::Logical { op } => {
                if *op == LogicOp::Not {
                    1
                } else {
                    2
                }
            }
            BlockKind::Selector { mode } => match mode {
                SelectorMode::IndexPort { .. } => 2,
                _ => 1,
            },
            BlockKind::Add
            | BlockKind::Subtract
            | BlockKind::Multiply
            | BlockKind::Divide
            | BlockKind::Min
            | BlockKind::Max
            | BlockKind::Mod
            | BlockKind::Relational { .. }
            | BlockKind::DotProduct
            | BlockKind::MatrixMultiply
            | BlockKind::Assignment { .. }
            | BlockKind::Convolution => 2,
            BlockKind::Switch { .. } => 3,
            BlockKind::Mux { inputs } | BlockKind::Concatenate { inputs } => *inputs,
            BlockKind::Subsystem(model) => model.num_inports(),
        }
    }

    /// Number of output ports.
    pub fn num_outputs(&self) -> usize {
        match self {
            BlockKind::Outport { .. } | BlockKind::Terminator => 0,
            BlockKind::Demux { sizes } => sizes.len(),
            BlockKind::Subsystem(model) => model.num_outports(),
            _ => 1,
        }
    }

    /// Whether this is one of the paper's *data-truncation* blocks —
    /// `Selector`, `Pad`, or `Submatrix` — whose presence makes upstream
    /// blocks candidates for redundancy elimination.
    pub fn is_truncation(&self) -> bool {
        matches!(
            self,
            BlockKind::Selector { .. }
                | BlockKind::Pad { .. }
                | BlockKind::Submatrix { .. }
                | BlockKind::Assignment { .. }
        )
    }

    /// Whether the block carries state between invocations.
    pub fn is_stateful(&self) -> bool {
        matches!(self, BlockKind::UnitDelay { .. })
    }

    /// Whether the block is a source (no data inputs).
    pub fn is_source(&self) -> bool {
        self.num_inputs() == 0
    }

    /// Whether the block is a sink (no outputs).
    pub fn is_sink(&self) -> bool {
        self.num_outputs() == 0
    }
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.type_name())
    }
}

/// A named instance of a [`BlockKind`] inside a [`Model`](crate::Model).
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Human-readable unique-ish name (used by file formats and diagnostics).
    pub name: String,
    /// The block's type and parameters.
    pub kind: BlockKind,
}

impl Block {
    /// Creates a block with a name and kind.
    pub fn new(name: impl Into<String>, kind: BlockKind) -> Self {
        Block {
            name: name.into(),
            kind,
        }
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <{}>", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities_match_block_semantics() {
        assert_eq!(BlockKind::Add.num_inputs(), 2);
        assert_eq!(BlockKind::Abs.num_inputs(), 1);
        assert_eq!(BlockKind::Switch { threshold: 0.0 }.num_inputs(), 3);
        assert_eq!(BlockKind::Mux { inputs: 4 }.num_inputs(), 4);
        assert_eq!(BlockKind::Demux { sizes: vec![2, 3] }.num_outputs(), 2);
        assert_eq!(BlockKind::Terminator.num_outputs(), 0);
        assert_eq!(
            BlockKind::Constant {
                value: Tensor::scalar(1.0)
            }
            .num_inputs(),
            0
        );
    }

    #[test]
    fn logical_not_is_unary() {
        assert_eq!(BlockKind::Logical { op: LogicOp::Not }.num_inputs(), 1);
        assert_eq!(BlockKind::Logical { op: LogicOp::And }.num_inputs(), 2);
    }

    #[test]
    fn selector_index_port_has_second_input() {
        let s = BlockKind::Selector {
            mode: SelectorMode::IndexPort { output_len: 5 },
        };
        assert_eq!(s.num_inputs(), 2);
        let s = BlockKind::Selector {
            mode: SelectorMode::StartEnd { start: 0, end: 5 },
        };
        assert_eq!(s.num_inputs(), 1);
    }

    #[test]
    fn truncation_classification_matches_paper() {
        assert!(BlockKind::Selector {
            mode: SelectorMode::StartEnd { start: 0, end: 1 }
        }
        .is_truncation());
        assert!(BlockKind::Pad {
            left: 1,
            right: 1,
            value: 0.0
        }
        .is_truncation());
        assert!(BlockKind::Submatrix {
            row_start: 0,
            row_end: 1,
            col_start: 0,
            col_end: 1
        }
        .is_truncation());
        assert!(!BlockKind::Convolution.is_truncation());
        assert!(!BlockKind::Add.is_truncation());
    }

    #[test]
    fn source_and_sink_classification() {
        assert!(BlockKind::Inport {
            index: 0,
            shape: Shape::Scalar
        }
        .is_source());
        assert!(BlockKind::Outport { index: 0 }.is_sink());
        assert!(BlockKind::Terminator.is_sink());
        assert!(!BlockKind::Add.is_source());
        assert!(!BlockKind::Add.is_sink());
    }

    #[test]
    fn stateful_classification() {
        assert!(BlockKind::UnitDelay {
            initial: Tensor::scalar(0.0)
        }
        .is_stateful());
        assert!(!BlockKind::Gain { gain: 2.0 }.is_stateful());
    }

    #[test]
    fn type_names_are_stable() {
        assert_eq!(BlockKind::Convolution.type_name(), "convolution");
        assert_eq!(
            BlockKind::Selector {
                mode: SelectorMode::IndexVector(vec![0])
            }
            .type_name(),
            "selector"
        );
    }

    #[test]
    fn display_shows_name_and_type() {
        let b = Block::new("Conv1", BlockKind::Convolution);
        assert_eq!(b.to_string(), "Conv1 <convolution>");
    }
}
