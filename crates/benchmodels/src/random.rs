//! Deterministic random model generation for property-based testing.
//!
//! Builds arbitrary *valid* feed-forward models from a wide block
//! vocabulary: every signal a new block consumes is drawn from the pool of
//! already-produced signals with a compatible shape, so the result always
//! passes validation and shape inference. Used by the cross-generator
//! consistency tests (the paper's "large number of random test cases",
//! applied to model *structure* as well as input data).

use frodo_model::{Block, BlockId, BlockKind, Model, RelOp, SelectorMode, Tensor};
use frodo_ranges::Shape;
use frodo_sim::rng::Rng;

/// One available signal in the pool.
#[derive(Debug, Clone, Copy)]
struct Sig {
    block: BlockId,
    port: usize,
    len: usize,
}

/// Generates a random valid feed-forward model with roughly `size`
/// computational blocks.
///
/// # Example
///
/// ```
/// use frodo_benchmodels::random::random_model;
///
/// let model = random_model(7, 20);
/// assert!(model.validate().is_ok());
/// assert_eq!(model, random_model(7, 20)); // deterministic per seed
/// ```
///
/// Numeric hazards (division, logarithms) are excluded so any input in
/// `[-1, 1]` produces finite outputs, which keeps the VM-vs-simulation
/// comparisons meaningful.
pub fn random_model(seed: u64, size: usize) -> Model {
    let mut rng = Rng::seed_from_u64(seed ^ 0xD1B5_4A32_D192_ED03);
    let mut m = Model::new(format!("random_{seed}"));
    let mut pool: Vec<Sig> = Vec::new();

    // 1-3 vector inputs of assorted lengths
    let n_in = 1 + rng.below(3);
    for i in 0..n_in {
        let len = 12 + 4 * rng.below(6);
        let b = m.add(Block::new(
            format!("in{i}"),
            BlockKind::Inport {
                index: i,
                shape: Shape::Vector(len),
            },
        ));
        pool.push(Sig {
            block: b,
            port: 0,
            len,
        });
    }
    // a couple of constants
    for i in 0..2 {
        let len = 8 + 4 * rng.below(4);
        let data = (0..len)
            .map(|k| (k as f64 * 0.37 + i as f64).sin() * 0.8)
            .collect();
        let b = m.add(Block::new(
            format!("const{i}"),
            BlockKind::Constant {
                value: Tensor::vector(data),
            },
        ));
        pool.push(Sig {
            block: b,
            port: 0,
            len,
        });
    }

    for step in 0..size {
        let choice = rng.below(19);
        let src = pool[rng.below(pool.len())];
        let name = format!("b{step}");
        match choice {
            0 => {
                let kinds = [
                    BlockKind::Abs,
                    BlockKind::Sin,
                    BlockKind::Cos,
                    BlockKind::Tanh,
                    BlockKind::Negate,
                    BlockKind::Square,
                ];
                let b = m.add(Block::new(name, kinds[rng.below(kinds.len())].clone()));
                m.connect(src.block, src.port, b, 0).unwrap();
                pool.push(Sig {
                    block: b,
                    port: 0,
                    len: src.len,
                });
            }
            1 => {
                let b = m.add(Block::new(
                    name,
                    BlockKind::Gain {
                        gain: rng.next_f64() * 2.0 - 1.0,
                    },
                ));
                m.connect(src.block, src.port, b, 0).unwrap();
                pool.push(Sig {
                    block: b,
                    port: 0,
                    len: src.len,
                });
            }
            2 => {
                let b = m.add(Block::new(
                    name,
                    BlockKind::Bias {
                        bias: rng.next_f64() - 0.5,
                    },
                ));
                m.connect(src.block, src.port, b, 0).unwrap();
                pool.push(Sig {
                    block: b,
                    port: 0,
                    len: src.len,
                });
            }
            3 => {
                let b = m.add(Block::new(
                    name,
                    BlockKind::Saturation {
                        lower: -0.75,
                        upper: 0.75,
                    },
                ));
                m.connect(src.block, src.port, b, 0).unwrap();
                pool.push(Sig {
                    block: b,
                    port: 0,
                    len: src.len,
                });
            }
            4 | 5 => {
                // binary elementwise with a same-length partner (or itself)
                let partners: Vec<Sig> =
                    pool.iter().copied().filter(|s| s.len == src.len).collect();
                let other = partners[rng.below(partners.len())];
                let kinds = [
                    BlockKind::Add,
                    BlockKind::Subtract,
                    BlockKind::Multiply,
                    BlockKind::Min,
                    BlockKind::Max,
                ];
                let b = m.add(Block::new(name, kinds[rng.below(kinds.len())].clone()));
                m.connect(src.block, src.port, b, 0).unwrap();
                m.connect(other.block, other.port, b, 1).unwrap();
                pool.push(Sig {
                    block: b,
                    port: 0,
                    len: src.len,
                });
            }
            6 => {
                // selector keeping a random sub-range
                if src.len < 4 {
                    continue;
                }
                let start = rng.below(src.len / 2);
                let end = start + 2 + rng.below(src.len - start - 2);
                let b = m.add(Block::new(
                    name,
                    BlockKind::Selector {
                        mode: SelectorMode::StartEnd { start, end },
                    },
                ));
                m.connect(src.block, src.port, b, 0).unwrap();
                pool.push(Sig {
                    block: b,
                    port: 0,
                    len: end - start,
                });
            }
            7 => {
                let left = rng.below(4);
                let right = rng.below(4);
                let b = m.add(Block::new(
                    name,
                    BlockKind::Pad {
                        left,
                        right,
                        value: rng.next_f64() - 0.5,
                    },
                ));
                m.connect(src.block, src.port, b, 0).unwrap();
                pool.push(Sig {
                    block: b,
                    port: 0,
                    len: left + src.len + right,
                });
            }
            8 => {
                let klen = 2 + rng.below(4);
                let taps = (0..klen).map(|k| 0.2 + k as f64 * 0.1).collect();
                let k = m.add(Block::new(
                    format!("{name}_k"),
                    BlockKind::Constant {
                        value: Tensor::vector(taps),
                    },
                ));
                let b = m.add(Block::new(name, BlockKind::Convolution));
                m.connect(src.block, src.port, b, 0).unwrap();
                m.connect(k, 0, b, 1).unwrap();
                pool.push(Sig {
                    block: b,
                    port: 0,
                    len: src.len + klen - 1,
                });
            }
            9 => {
                let taps = (0..3 + rng.below(3))
                    .map(|k| 0.3 / (k + 1) as f64)
                    .collect();
                let b = m.add(Block::new(name, BlockKind::FirFilter { coeffs: taps }));
                m.connect(src.block, src.port, b, 0).unwrap();
                pool.push(Sig {
                    block: b,
                    port: 0,
                    len: src.len,
                });
            }
            10 => {
                let b = m.add(Block::new(
                    name,
                    BlockKind::MovingAverage {
                        window: 2 + rng.below(4),
                    },
                ));
                m.connect(src.block, src.port, b, 0).unwrap();
                pool.push(Sig {
                    block: b,
                    port: 0,
                    len: src.len,
                });
            }
            11 => {
                let b = m.add(Block::new(name, BlockKind::Difference));
                m.connect(src.block, src.port, b, 0).unwrap();
                pool.push(Sig {
                    block: b,
                    port: 0,
                    len: src.len,
                });
            }
            12 => {
                let b = m.add(Block::new(name, BlockKind::CumulativeSum));
                m.connect(src.block, src.port, b, 0).unwrap();
                pool.push(Sig {
                    block: b,
                    port: 0,
                    len: src.len,
                });
            }
            13 => {
                if src.len < 4 {
                    continue;
                }
                let factor = 2 + rng.below(2);
                let b = m.add(Block::new(
                    name,
                    BlockKind::Downsample {
                        factor,
                        phase: rng.below(2),
                    },
                ));
                m.connect(src.block, src.port, b, 0).unwrap();
                let phase = match m.block(b).kind {
                    BlockKind::Downsample { phase, .. } => phase,
                    _ => unreachable!(),
                };
                pool.push(Sig {
                    block: b,
                    port: 0,
                    len: (src.len - phase).div_ceil(factor),
                });
            }
            14 => {
                // mux of two signals
                let other = pool[rng.below(pool.len())];
                let b = m.add(Block::new(name, BlockKind::Mux { inputs: 2 }));
                m.connect(src.block, src.port, b, 0).unwrap();
                m.connect(other.block, other.port, b, 1).unwrap();
                pool.push(Sig {
                    block: b,
                    port: 0,
                    len: src.len + other.len,
                });
            }
            15 => {
                if src.len < 4 {
                    continue;
                }
                let a = 1 + rng.below(src.len - 2);
                let b_blk = m.add(Block::new(
                    name,
                    BlockKind::Demux {
                        sizes: vec![a, src.len - a],
                    },
                ));
                m.connect(src.block, src.port, b_blk, 0).unwrap();
                pool.push(Sig {
                    block: b_blk,
                    port: 0,
                    len: a,
                });
                pool.push(Sig {
                    block: b_blk,
                    port: 1,
                    len: src.len - a,
                });
            }
            16 => {
                // switch with a relational control
                let partners: Vec<Sig> =
                    pool.iter().copied().filter(|s| s.len == src.len).collect();
                let other = partners[rng.below(partners.len())];
                let zero = m.add(Block::new(
                    format!("{name}_z"),
                    BlockKind::Constant {
                        value: Tensor::scalar(0.0),
                    },
                ));
                let ctrl = m.add(Block::new(
                    format!("{name}_c"),
                    BlockKind::Relational { op: RelOp::Gt },
                ));
                m.connect(src.block, src.port, ctrl, 0).unwrap();
                m.connect(zero, 0, ctrl, 1).unwrap();
                let b = m.add(Block::new(name, BlockKind::Switch { threshold: 0.5 }));
                m.connect(src.block, src.port, b, 0).unwrap();
                m.connect(ctrl, 0, b, 1).unwrap();
                m.connect(other.block, other.port, b, 2).unwrap();
                pool.push(Sig {
                    block: b,
                    port: 0,
                    len: src.len,
                });
            }
            17 => {
                // assignment: patch a same-or-smaller signal into src
                if src.len < 3 {
                    continue;
                }
                let plen = 1 + rng.below(src.len - 1);
                let start = rng.below(src.len - plen + 1);
                let patches: Vec<Sig> = pool.iter().copied().filter(|s| s.len == plen).collect();
                let patch = if patches.is_empty() {
                    let c = m.add(Block::new(
                        format!("{name}_p"),
                        BlockKind::Constant {
                            value: Tensor::vector(vec![0.25; plen]),
                        },
                    ));
                    Sig {
                        block: c,
                        port: 0,
                        len: plen,
                    }
                } else {
                    patches[rng.below(patches.len())]
                };
                let b = m.add(Block::new(name, BlockKind::Assignment { start }));
                m.connect(src.block, src.port, b, 0).unwrap();
                m.connect(patch.block, patch.port, b, 1).unwrap();
                pool.push(Sig {
                    block: b,
                    port: 0,
                    len: src.len,
                });
            }
            _ => {
                // feed-forward unit delay
                let b = m.add(Block::new(
                    name,
                    BlockKind::UnitDelay {
                        initial: Tensor::vector(vec![0.1; src.len]),
                    },
                ));
                m.connect(src.block, src.port, b, 0).unwrap();
                pool.push(Sig {
                    block: b,
                    port: 0,
                    len: src.len,
                });
            }
        }
    }

    // route a handful of pool signals to outputs; the rest stay as
    // dangling producers (full-range per the paper's rule) or are consumed
    // upstream already
    let n_out = 1 + rng.below(3.min(pool.len()));
    let mut used = Vec::new();
    for i in 0..n_out {
        let mut pick = pool[rng.below(pool.len())];
        let mut guard = 0;
        while used.contains(&(pick.block, pick.port)) && guard < 10 {
            pick = pool[rng.below(pool.len())];
            guard += 1;
        }
        if used.contains(&(pick.block, pick.port)) {
            break;
        }
        used.push((pick.block, pick.port));
        let o = m.add(Block::new(
            format!("out{i}"),
            BlockKind::Outport { index: i },
        ));
        m.connect(pick.block, pick.port, o, 0).unwrap();
    }
    m
}

/// [`random_model`] with its `edit`-th `Gain` block's parameter perturbed
/// (counting Gains in block order, wrapping around) — the canonical
/// "one-block edit" used by the incremental-recompilation tests and the
/// CI gate. The edit is numeric only: the block graph, names, and shapes
/// are identical to the unedited model, so exactly one region's content
/// changes.
///
/// A model with no `Gain` blocks is returned unedited (the random
/// vocabulary makes that vanishingly unlikely at realistic sizes).
pub fn random_model_edited(seed: u64, size: usize, edit: usize) -> Model {
    let mut m = random_model(seed, size);
    let gains: Vec<BlockId> = m
        .ids()
        .filter(|&id| matches!(m.block(id).kind, BlockKind::Gain { .. }))
        .collect();
    if gains.is_empty() {
        return m;
    }
    let target = gains[edit % gains.len()];
    if let BlockKind::Gain { gain } = &mut m.block_mut(target).kind {
        *gain = *gain * 1.5 + 0.25;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edited_model_differs_in_exactly_one_block() {
        let base = random_model(42, 60);
        let edited = random_model_edited(42, 60, 1);
        assert_ne!(base, edited);
        edited.validate().unwrap();
        let changed: Vec<_> = base
            .ids()
            .filter(|&id| base.block(id).kind != edited.block(id).kind)
            .collect();
        assert_eq!(changed.len(), 1, "exactly one block edited");
        assert!(matches!(
            edited.block(changed[0]).kind,
            BlockKind::Gain { .. }
        ));
    }

    #[test]
    fn random_models_are_valid_and_deterministic() {
        for seed in 0..20 {
            let a = random_model(seed, 25);
            let b = random_model(seed, 25);
            assert_eq!(a, b, "seed {seed} not deterministic");
            a.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(random_model(1, 25), random_model(2, 25));
    }
}
