//! `Maunfacture` — product quality assessment (29 blocks).
//!
//! (The paper's Table 1 spells the name "Maunfacture"; we keep it.) A
//! surface profile is matched against a defect template with a full-padding
//! `Convolution` + `Selector` (the pattern the paper's §4.1 blames for
//! Simulink's boundary-judgment slowdown on this model), smoothed, and
//! scored within a quality-inspection window.

use frodo_model::{Block, BlockKind, Model, SelectorMode, Tensor};
use frodo_ranges::Shape;

/// Builds the `Maunfacture` model.
pub fn manufacture() -> Model {
    let mut m = Model::new("Maunfacture");
    let n = 300usize;
    let klen = 21usize;

    // 1: surface profile scan
    let profile = m.add(Block::new(
        "profile",
        BlockKind::Inport {
            index: 0,
            shape: Shape::Vector(n),
        },
    ));
    // 2-4: defect template matching (same-convolution)
    let template = m.add(Block::new(
        "defect_template",
        BlockKind::Constant {
            value: Tensor::vector(
                (0..klen)
                    .map(|i| ((i as f64) * 0.3).cos() / klen as f64)
                    .collect(),
            ),
        },
    ));
    let conv = m.add(Block::new("match_conv", BlockKind::Convolution));
    let same = m.add(Block::new(
        "match_same",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd {
                start: klen / 2,
                end: klen / 2 + n,
            },
        },
    ));
    m.connect(profile, 0, conv, 0).unwrap();
    m.connect(template, 0, conv, 1).unwrap();
    m.connect(conv, 0, same, 0).unwrap();

    // 5-7: response energy + smoothing
    let energy = m.add(Block::new("response_energy", BlockKind::Square));
    let smooth = m.add(Block::new(
        "response_smooth",
        BlockKind::MovingAverage { window: 12 },
    ));
    let roi = m.add(Block::new(
        "inspection_window",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd {
                start: 60,
                end: 240,
            },
        },
    ));
    m.connect(same, 0, energy, 0).unwrap();
    m.connect(energy, 0, smooth, 0).unwrap();
    m.connect(smooth, 0, roi, 0).unwrap();

    // 8-12: normalized defect score in the window
    let root = m.add(Block::new("score_root", BlockKind::Sqrt));
    let gain = m.add(Block::new("score_gain", BlockKind::Gain { gain: 100.0 }));
    let bias = m.add(Block::new("score_bias", BlockKind::Bias { bias: -0.5 }));
    let sat = m.add(Block::new(
        "score_limits",
        BlockKind::Saturation {
            lower: 0.0,
            upper: 100.0,
        },
    ));
    let out0 = m.add(Block::new("score_out", BlockKind::Outport { index: 0 }));
    m.connect(roi, 0, root, 0).unwrap();
    m.connect(root, 0, gain, 0).unwrap();
    m.connect(gain, 0, bias, 0).unwrap();
    m.connect(bias, 0, sat, 0).unwrap();
    m.connect(sat, 0, out0, 0).unwrap();

    // 13-16: tolerance violations count
    let tol = m.add(Block::new(
        "tolerance",
        BlockKind::Constant {
            value: Tensor::scalar(65.0),
        },
    ));
    let over = m.add(Block::new(
        "over_tolerance",
        BlockKind::Relational {
            op: frodo_model::RelOp::Gt,
        },
    ));
    let violations = m.add(Block::new("violations", BlockKind::SumOfElements));
    let out1 = m.add(Block::new(
        "violations_out",
        BlockKind::Outport { index: 1 },
    ));
    m.connect(sat, 0, over, 0).unwrap();
    m.connect(tol, 0, over, 1).unwrap();
    m.connect(over, 0, violations, 0).unwrap();
    m.connect(violations, 0, out1, 0).unwrap();

    // 17-21: edge sharpness check (second template, narrower window)
    let edge_template = m.add(Block::new(
        "edge_template",
        BlockKind::Constant {
            value: Tensor::vector(vec![-1.0, 0.0, 1.0]),
        },
    ));
    let edge_conv = m.add(Block::new("edge_conv", BlockKind::Convolution));
    let edge_sel = m.add(Block::new(
        "edge_window",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd {
                start: 100,
                end: 200,
            },
        },
    ));
    let edge_abs = m.add(Block::new("edge_abs", BlockKind::Abs));
    let edge_max = m.add(Block::new("edge_max", BlockKind::MaxOfElements));
    m.connect(profile, 0, edge_conv, 0).unwrap();
    m.connect(edge_template, 0, edge_conv, 1).unwrap();
    m.connect(edge_conv, 0, edge_sel, 0).unwrap();
    m.connect(edge_sel, 0, edge_abs, 0).unwrap();
    m.connect(edge_abs, 0, edge_max, 0).unwrap();
    // 22: sharpness output
    let out2 = m.add(Block::new("sharpness_out", BlockKind::Outport { index: 2 }));
    m.connect(edge_max, 0, out2, 0).unwrap();

    // 23-26: roughness statistic in the inspection window
    let rough = m.add(Block::new("roughness_diff", BlockKind::Difference));
    let rough_abs = m.add(Block::new("roughness_abs", BlockKind::Abs));
    let rough_mean = m.add(Block::new("roughness_mean", BlockKind::MeanOfElements));
    let out3 = m.add(Block::new("roughness_out", BlockKind::Outport { index: 3 }));
    m.connect(roi, 0, rough, 0).unwrap();
    m.connect(rough, 0, rough_abs, 0).unwrap();
    m.connect(rough_abs, 0, rough_mean, 0).unwrap();
    m.connect(rough_mean, 0, out3, 0).unwrap();

    // 27-29: pass/fail verdict
    let limit = m.add(Block::new(
        "fail_limit",
        BlockKind::Constant {
            value: Tensor::scalar(5.0),
        },
    ));
    let verdict = m.add(Block::new(
        "verdict",
        BlockKind::Relational {
            op: frodo_model::RelOp::Le,
        },
    ));
    let out4 = m.add(Block::new("verdict_out", BlockKind::Outport { index: 4 }));
    m.connect(violations, 0, verdict, 0).unwrap();
    m.connect(limit, 0, verdict, 1).unwrap();
    m.connect(verdict, 0, out4, 0).unwrap();

    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_29_blocks() {
        assert_eq!(manufacture().deep_len(), 29);
    }

    #[test]
    fn both_convolutions_shrink() {
        let a = frodo_core::Analysis::run(manufacture()).unwrap();
        for name in ["match_conv", "edge_conv"] {
            let id = a.dfg().model().find(name).unwrap();
            assert!(a.is_optimizable(id), "{name} should be optimizable");
        }
        assert!(a.report().elimination_ratio() > 0.15);
    }
}
