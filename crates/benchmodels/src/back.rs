//! `Back` — backpropagation in a CNN (24 blocks).
//!
//! Gradient backpropagation through two small 1-D convolution layers. The
//! convolutions are *short* (16-sample activations, 3–5-tap kernels) — the
//! regime the paper uses to show HCG's explicit SIMD batching backfiring:
//! per-loop batching overhead dominates tiny loops.

use frodo_model::{Block, BlockKind, Model, SelectorMode, Tensor};
use frodo_ranges::Shape;

/// Builds the `Back` model.
pub fn back() -> Model {
    let mut m = Model::new("Back");
    let n = 16usize;

    // 1-2: upstream gradient and forward activations
    let grad = m.add(Block::new(
        "grad_in",
        BlockKind::Inport {
            index: 0,
            shape: Shape::Vector(n),
        },
    ));
    let act = m.add(Block::new(
        "act_in",
        BlockKind::Inport {
            index: 1,
            shape: Shape::Vector(n),
        },
    ));

    // 3-5: layer-2 gradient: full conv with reversed 5-tap kernel, then
    // 'same' truncation
    let w2 = m.add(Block::new(
        "w2_rev",
        BlockKind::Constant {
            value: Tensor::vector(vec![0.1, -0.2, 0.4, -0.2, 0.1]),
        },
    ));
    let conv2 = m.add(Block::new("conv_grad2", BlockKind::Convolution));
    let same2 = m.add(Block::new(
        "same2",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd {
                start: 2,
                end: 2 + n,
            },
        },
    ));
    m.connect(grad, 0, conv2, 0).unwrap();
    m.connect(w2, 0, conv2, 1).unwrap();
    m.connect(conv2, 0, same2, 0).unwrap();

    // 6-10: tanh' = 1 - tanh² activation derivative, applied elementwise
    let tanh = m.add(Block::new("act_tanh", BlockKind::Tanh));
    let tanh_sq = m.add(Block::new("tanh_sq", BlockKind::Square));
    let one = m.add(Block::new(
        "one",
        BlockKind::Constant {
            value: Tensor::scalar(1.0),
        },
    ));
    let deriv = m.add(Block::new("tanh_deriv", BlockKind::Subtract));
    let gated2 = m.add(Block::new("gated2", BlockKind::Multiply));
    m.connect(act, 0, tanh, 0).unwrap();
    m.connect(tanh, 0, tanh_sq, 0).unwrap();
    m.connect(one, 0, deriv, 0).unwrap();
    m.connect(tanh_sq, 0, deriv, 1).unwrap();
    m.connect(same2, 0, gated2, 0).unwrap();
    m.connect(deriv, 0, gated2, 1).unwrap();

    // 11-13: layer-1 gradient: 3-tap reversed kernel + 'same' truncation
    let w1 = m.add(Block::new(
        "w1_rev",
        BlockKind::Constant {
            value: Tensor::vector(vec![-0.3, 0.6, -0.3]),
        },
    ));
    let conv1 = m.add(Block::new("conv_grad1", BlockKind::Convolution));
    let same1 = m.add(Block::new(
        "same1",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd {
                start: 1,
                end: 1 + n,
            },
        },
    ));
    m.connect(gated2, 0, conv1, 0).unwrap();
    m.connect(w1, 0, conv1, 1).unwrap();
    m.connect(conv1, 0, same1, 0).unwrap();

    // 14-17: ReLU gate from the activations: grad * (act > 0)
    let zero = m.add(Block::new(
        "zero",
        BlockKind::Constant {
            value: Tensor::scalar(0.0),
        },
    ));
    let mask = m.add(Block::new(
        "relu_mask",
        BlockKind::Relational {
            op: frodo_model::RelOp::Gt,
        },
    ));
    let gated1 = m.add(Block::new("gated1", BlockKind::Multiply));
    let out_dx = m.add(Block::new("dx_out", BlockKind::Outport { index: 0 }));
    m.connect(act, 0, mask, 0).unwrap();
    m.connect(zero, 0, mask, 1).unwrap();
    m.connect(same1, 0, gated1, 0).unwrap();
    m.connect(mask, 0, gated1, 1).unwrap();
    m.connect(gated1, 0, out_dx, 0).unwrap();

    // 18-20: weight gradient: correlate activations with the gated gradient,
    // keep only the kernel-support window
    let conv_w = m.add(Block::new("conv_dw", BlockKind::Convolution));
    let dw_window = m.add(Block::new(
        "dw_window",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd {
                start: n - 3,
                end: n + 2,
            },
        },
    ));
    let out_dw = m.add(Block::new("dw_out", BlockKind::Outport { index: 1 }));
    m.connect(act, 0, conv_w, 0).unwrap();
    m.connect(gated2, 0, conv_w, 1).unwrap();
    m.connect(conv_w, 0, dw_window, 0).unwrap();
    m.connect(dw_window, 0, out_dw, 0).unwrap();

    // 21-24: SGD update for the extracted weight gradient
    let lr = m.add(Block::new("lr", BlockKind::Gain { gain: 0.01 }));
    let neg = m.add(Block::new("descend", BlockKind::Negate));
    let momentum = m.add(Block::new(
        "momentum_bias",
        BlockKind::Bias { bias: 0.0001 },
    ));
    let out_upd = m.add(Block::new("update_out", BlockKind::Outport { index: 2 }));
    m.connect(dw_window, 0, lr, 0).unwrap();
    m.connect(lr, 0, neg, 0).unwrap();
    m.connect(neg, 0, momentum, 0).unwrap();
    m.connect(momentum, 0, out_upd, 0).unwrap();

    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_24_blocks() {
        assert_eq!(back().deep_len(), 24);
    }

    #[test]
    fn weight_grad_conv_keeps_only_kernel_support() {
        let a = frodo_core::Analysis::run(back()).unwrap();
        let conv_w = a.dfg().model().find("conv_dw").unwrap();
        // the full correlation is 31 wide but only 5 lags are consumed
        assert_eq!(a.range(conv_w, 0).count(), 5);
        assert!(a.is_optimizable(conv_w));
    }
}
