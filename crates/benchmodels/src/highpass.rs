//! `HighPass` — high-pass filter model (49 blocks).
//!
//! Two channels (L/R) each run DC removal and a three-stage high-pass FIR
//! cascade; every stage trims its warm-up transient with a `Selector`. The
//! channels are differenced, post-filtered, and a region-of-interest
//! `Selector` picks the analysis window all outputs and monitors consume —
//! so the entire cascade upstream computes only the window it contributes
//! to, which is exactly the redundancy FRODO eliminates.

use frodo_model::{Block, BlockKind, Model, SelectorMode};
use frodo_ranges::Shape;

fn highpass_taps(stage: usize) -> Vec<f64> {
    // alternating-sign kernels; stage-dependent and normalized
    let n = 9;
    (0..n)
        .map(|i| {
            let s = if i % 2 == 0 { 1.0 } else { -1.0 };
            s * (1.0 + stage as f64 * 0.1) / n as f64
        })
        .collect()
}

/// Builds the `HighPass` model.
pub fn high_pass() -> Model {
    let mut m = Model::new("HighPass");
    let n = 400usize;

    // channel: 1 inport + 2 DC blocks + 3 stages × 4 = 15 blocks
    let channel = |m: &mut Model, name: &str, index: usize| {
        let input = m.add(Block::new(
            format!("{name}_in"),
            BlockKind::Inport {
                index,
                shape: Shape::Vector(n),
            },
        ));
        // DC removal: x - movavg(x)
        let dc = m.add(Block::new(
            format!("{name}_dc"),
            BlockKind::MovingAverage { window: 32 },
        ));
        let ac = m.add(Block::new(format!("{name}_ac"), BlockKind::Subtract));
        m.connect(input, 0, dc, 0).unwrap();
        m.connect(input, 0, ac, 0).unwrap();
        m.connect(dc, 0, ac, 1).unwrap();
        let mut prev = ac;
        let mut len = n;
        for stage in 0..3 {
            let fir = m.add(Block::new(
                format!("{name}_fir{stage}"),
                BlockKind::FirFilter {
                    coeffs: highpass_taps(stage),
                },
            ));
            // trim the 8-sample warm-up transient
            let trim = m.add(Block::new(
                format!("{name}_trim{stage}"),
                BlockKind::Selector {
                    mode: SelectorMode::StartEnd { start: 8, end: len },
                },
            ));
            let gain = m.add(Block::new(
                format!("{name}_gain{stage}"),
                BlockKind::Gain { gain: 1.12 },
            ));
            let bias = m.add(Block::new(
                format!("{name}_bias{stage}"),
                BlockKind::Bias { bias: 0.0005 },
            ));
            m.connect(prev, 0, fir, 0).unwrap();
            m.connect(fir, 0, trim, 0).unwrap();
            m.connect(trim, 0, gain, 0).unwrap();
            m.connect(gain, 0, bias, 0).unwrap();
            prev = bias;
            len -= 8;
        }
        (prev, len)
    };

    // 1..=15: left channel, 16..=30: right channel
    let (left, len) = channel(&mut m, "left", 0);
    let (right, len_r) = channel(&mut m, "right", 1);
    debug_assert_eq!(len, len_r);

    // 31: differential signal
    let diff = m.add(Block::new("differential", BlockKind::Subtract));
    m.connect(left, 0, diff, 0).unwrap();
    m.connect(right, 0, diff, 1).unwrap();
    // 32-34: final high-pass + trim + scale
    let fir = m.add(Block::new(
        "final_fir",
        BlockKind::FirFilter {
            coeffs: highpass_taps(3),
        },
    ));
    let trim = m.add(Block::new(
        "final_trim",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd { start: 8, end: len },
        },
    ));
    let scale = m.add(Block::new("final_scale", BlockKind::Gain { gain: 0.5 }));
    m.connect(diff, 0, fir, 0).unwrap();
    m.connect(fir, 0, trim, 0).unwrap();
    m.connect(trim, 0, scale, 0).unwrap();
    // 35: the analysis window everything downstream consumes
    let roi = m.add(Block::new(
        "analysis_window",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd {
                start: 150,
                end: 250,
            },
        },
    ));
    m.connect(scale, 0, roi, 0).unwrap();
    // 36: filtered output
    let out0 = m.add(Block::new("filtered", BlockKind::Outport { index: 0 }));
    m.connect(roi, 0, out0, 0).unwrap();

    // 37-39: window energy
    let sq = m.add(Block::new("energy_sq", BlockKind::Square));
    let energy = m.add(Block::new("energy", BlockKind::SumOfElements));
    let out1 = m.add(Block::new("energy_out", BlockKind::Outport { index: 1 }));
    m.connect(roi, 0, sq, 0).unwrap();
    m.connect(sq, 0, energy, 0).unwrap();
    m.connect(energy, 0, out1, 0).unwrap();

    // 40-42: window peak
    let mag = m.add(Block::new("peak_abs", BlockKind::Abs));
    let peak = m.add(Block::new("peak", BlockKind::MaxOfElements));
    let out2 = m.add(Block::new("peak_out", BlockKind::Outport { index: 2 }));
    m.connect(roi, 0, mag, 0).unwrap();
    m.connect(mag, 0, peak, 0).unwrap();
    m.connect(peak, 0, out2, 0).unwrap();

    // 43-47: slew-rate trend monitor
    let trend = m.add(Block::new("trend_diff", BlockKind::Difference));
    let trend_abs = m.add(Block::new("trend_abs", BlockKind::Abs));
    let trend_ma = m.add(Block::new(
        "trend_ma",
        BlockKind::MovingAverage { window: 8 },
    ));
    let trend_max = m.add(Block::new("trend_max", BlockKind::MaxOfElements));
    let out3 = m.add(Block::new("trend_out", BlockKind::Outport { index: 3 }));
    m.connect(roi, 0, trend, 0).unwrap();
    m.connect(trend, 0, trend_abs, 0).unwrap();
    m.connect(trend_abs, 0, trend_ma, 0).unwrap();
    m.connect(trend_ma, 0, trend_max, 0).unwrap();
    m.connect(trend_max, 0, out3, 0).unwrap();

    // 48-49: decommissioned calibration tap (dead chain)
    let cal = m.add(Block::new("calibration", BlockKind::Gain { gain: 1.01 }));
    let sink = m.add(Block::new("calibration_sink", BlockKind::Terminator));
    m.connect(diff, 0, cal, 0).unwrap();
    m.connect(cal, 0, sink, 0).unwrap();

    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_49_blocks() {
        assert_eq!(high_pass().deep_len(), 49);
    }

    #[test]
    fn window_selection_eliminates_most_of_the_cascade() {
        let a = frodo_core::Analysis::run(high_pass()).unwrap();
        let opt_firs = a
            .report()
            .stats()
            .iter()
            .filter(|s| s.type_name == "fir_filter" && s.optimizable)
            .count();
        assert!(opt_firs >= 6, "{opt_firs} optimizable FIRs");
        assert!(
            a.report().elimination_ratio() > 0.4,
            "ratio {}",
            a.report().elimination_ratio()
        );
    }
}
