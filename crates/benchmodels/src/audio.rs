//! `AudioProcess` — vehicle audio analysis (51 blocks).
//!
//! A 256-sample audio frame is normalized and split into four band paths;
//! each path runs a same-convolution band filter (full-padding
//! `Convolution` plus `Selector`, the paper's Figure-1 pattern), an energy
//! stage, and a region-of-interest `Selector`. The bands are muxed,
//! smoothed by an FIR, and trimmed again — giving redundancy elimination
//! leverage at three levels of the graph.

use frodo_model::{Block, BlockKind, Model, SelectorMode, Tensor};
use frodo_ranges::Shape;

/// Builds the `AudioProcess` model.
pub fn audio_process() -> Model {
    let mut m = Model::new("AudioProcess");
    let frame = 256usize;
    let kernel_len = 17usize;

    // 1: input frame
    let input = m.add(Block::new(
        "frame",
        BlockKind::Inport {
            index: 0,
            shape: Shape::Vector(frame),
        },
    ));
    // 2-3: normalize
    let norm = m.add(Block::new(
        "normalize",
        BlockKind::Gain {
            gain: 1.0 / 32768.0,
        },
    ));
    let center = m.add(Block::new("center", BlockKind::Bias { bias: -0.001 }));
    m.connect(input, 0, norm, 0).unwrap();
    m.connect(norm, 0, center, 0).unwrap();

    // 4 band paths × 9 blocks = 36 (blocks 4..=39)
    let mut band_outs = Vec::new();
    for band in 0..4 {
        let taps: Vec<f64> = (0..kernel_len)
            .map(|i| ((i as f64 + 1.0) * (band as f64 + 1.0) * 0.37).sin() / kernel_len as f64)
            .collect();
        let k = m.add(Block::new(
            format!("band{band}_kernel"),
            BlockKind::Constant {
                value: Tensor::vector(taps),
            },
        ));
        let conv = m.add(Block::new(
            format!("band{band}_conv"),
            BlockKind::Convolution,
        ));
        // same-convolution truncation of the full-padding output
        let same = m.add(Block::new(
            format!("band{band}_same"),
            BlockKind::Selector {
                mode: SelectorMode::StartEnd {
                    start: kernel_len / 2,
                    end: kernel_len / 2 + frame,
                },
            },
        ));
        let energy = m.add(Block::new(format!("band{band}_energy"), BlockKind::Square));
        let smooth = m.add(Block::new(
            format!("band{band}_smooth"),
            BlockKind::MovingAverage { window: 16 },
        ));
        // region of interest: only the frame's middle half is analyzed
        let roi = m.add(Block::new(
            format!("band{band}_roi"),
            BlockKind::Selector {
                mode: SelectorMode::StartEnd {
                    start: 64,
                    end: 192,
                },
            },
        ));
        let gain = m.add(Block::new(
            format!("band{band}_gain"),
            BlockKind::Gain { gain: 4.0 },
        ));
        let bias = m.add(Block::new(
            format!("band{band}_bias"),
            BlockKind::Bias { bias: 1e-9 },
        ));
        let root = m.add(Block::new(format!("band{band}_rms"), BlockKind::Sqrt));
        m.connect(center, 0, conv, 0).unwrap();
        m.connect(k, 0, conv, 1).unwrap();
        m.connect(conv, 0, same, 0).unwrap();
        m.connect(same, 0, energy, 0).unwrap();
        m.connect(energy, 0, smooth, 0).unwrap();
        m.connect(smooth, 0, roi, 0).unwrap();
        m.connect(roi, 0, gain, 0).unwrap();
        m.connect(gain, 0, bias, 0).unwrap();
        m.connect(bias, 0, root, 0).unwrap();
        band_outs.push(root);
    }

    // 40: combine bands (4 × 128 = 512)
    let mux = m.add(Block::new("bands", BlockKind::Mux { inputs: 4 }));
    for (p, b) in band_outs.iter().enumerate() {
        m.connect(*b, 0, mux, p).unwrap();
    }
    // 41: spectral smoothing FIR
    let fir = m.add(Block::new(
        "spectral_fir",
        BlockKind::FirFilter {
            coeffs: vec![0.1, 0.15, 0.25, 0.25, 0.15, 0.1],
        },
    ));
    m.connect(mux, 0, fir, 0).unwrap();
    // 42: report window (half of the smoothed spectrum)
    let sel = m.add(Block::new(
        "report_window",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd {
                start: 128,
                end: 384,
            },
        },
    ));
    m.connect(fir, 0, sel, 0).unwrap();
    // 43: primary output
    let out0 = m.add(Block::new("spectrum", BlockKind::Outport { index: 0 }));
    m.connect(sel, 0, out0, 0).unwrap();

    // 44-45: peak level
    let peak = m.add(Block::new("peak", BlockKind::MaxOfElements));
    let out1 = m.add(Block::new("peak_level", BlockKind::Outport { index: 1 }));
    m.connect(mux, 0, peak, 0).unwrap();
    m.connect(peak, 0, out1, 0).unwrap();

    // 46-49: flatness diagnostic on the report window
    let diff = m.add(Block::new("flux", BlockKind::Difference));
    let mag = m.add(Block::new("flux_mag", BlockKind::Abs));
    let mean = m.add(Block::new("flux_mean", BlockKind::MeanOfElements));
    let out2 = m.add(Block::new("flatness", BlockKind::Outport { index: 2 }));
    m.connect(sel, 0, diff, 0).unwrap();
    m.connect(diff, 0, mag, 0).unwrap();
    m.connect(mag, 0, mean, 0).unwrap();
    m.connect(mean, 0, out2, 0).unwrap();

    // 50-51: disconnected legacy monitor (industrial models carry these);
    // feeding only a Terminator, its whole chain is dead calculation
    let monitor = m.add(Block::new("legacy_monitor", BlockKind::Gain { gain: 0.5 }));
    let term = m.add(Block::new("legacy_sink", BlockKind::Terminator));
    m.connect(fir, 0, monitor, 0).unwrap();
    m.connect(monitor, 0, term, 0).unwrap();

    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_51_blocks() {
        assert_eq!(audio_process().deep_len(), 51);
    }

    #[test]
    fn analyzes_with_strong_elimination() {
        let a = frodo_core::Analysis::run(audio_process()).unwrap();
        // the band convolutions must be optimizable
        let report = a.report();
        let conv_opt = report
            .stats()
            .iter()
            .filter(|s| s.type_name == "convolution" && s.optimizable)
            .count();
        assert_eq!(conv_opt, 4, "all four band convolutions shrink");
        assert!(
            report.elimination_ratio() > 0.2,
            "ratio {}",
            report.elimination_ratio()
        );
    }
}
