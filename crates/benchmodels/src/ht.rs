//! `HT` — Hermitian transpose matrix calculation (26 blocks).
//!
//! Complex matrices are modeled as separate real/imaginary paths (a standard
//! real-arithmetic realization). The model computes `Aᴴ·A` for a 12×12
//! complex input and hands only the top partition of the product downstream
//! via `Submatrix` blocks — so the matrix multiplies need only half their
//! output rows.

use frodo_model::{Block, BlockKind, Model};
use frodo_ranges::Shape;

/// Builds the `HT` model.
pub fn hermitian_transpose() -> Model {
    let mut m = Model::new("HT");
    let n = 12usize;
    let shape = Shape::Matrix(n, n);

    // 1-2: complex input
    let re = m.add(Block::new("a_re", BlockKind::Inport { index: 0, shape }));
    let im = m.add(Block::new("a_im", BlockKind::Inport { index: 1, shape }));

    // 3-5: Hermitian transpose = transpose + conjugate
    let re_t = m.add(Block::new("re_transpose", BlockKind::Transpose));
    let im_t = m.add(Block::new("im_transpose", BlockKind::Transpose));
    let im_conj = m.add(Block::new("im_conjugate", BlockKind::Negate));
    m.connect(re, 0, re_t, 0).unwrap();
    m.connect(im, 0, im_t, 0).unwrap();
    m.connect(im_t, 0, im_conj, 0).unwrap();

    // 6-9: the four real products of (ReT - i·ImT)(Re + i·Im)
    let rr = m.add(Block::new("prod_rr", BlockKind::MatrixMultiply));
    let ii = m.add(Block::new("prod_ii", BlockKind::MatrixMultiply));
    let ri = m.add(Block::new("prod_ri", BlockKind::MatrixMultiply));
    let ir = m.add(Block::new("prod_ir", BlockKind::MatrixMultiply));
    m.connect(re_t, 0, rr, 0).unwrap();
    m.connect(re, 0, rr, 1).unwrap();
    m.connect(im_conj, 0, ii, 0).unwrap();
    m.connect(im, 0, ii, 1).unwrap();
    m.connect(re_t, 0, ri, 0).unwrap();
    m.connect(im, 0, ri, 1).unwrap();
    m.connect(im_conj, 0, ir, 0).unwrap();
    m.connect(re, 0, ir, 1).unwrap();

    // 10-11: assemble real/imag of the Gram matrix
    // real = ReT·Re − Conj(Im)T·Im·(−1) handled by sign of im_conj: with
    // im_conj = −Im T, prod_ii = (−ImT)·Im, so real = rr − ii
    let gram_re = m.add(Block::new("gram_re", BlockKind::Subtract));
    let gram_im = m.add(Block::new("gram_im", BlockKind::Add));
    m.connect(rr, 0, gram_re, 0).unwrap();
    m.connect(ii, 0, gram_re, 1).unwrap();
    m.connect(ri, 0, gram_im, 0).unwrap();
    m.connect(ir, 0, gram_im, 1).unwrap();

    // 12-13: only the top 4×12 partition is consumed downstream
    let top_re = m.add(Block::new(
        "top_re",
        BlockKind::Submatrix {
            row_start: 0,
            row_end: 4,
            col_start: 0,
            col_end: n,
        },
    ));
    let top_im = m.add(Block::new(
        "top_im",
        BlockKind::Submatrix {
            row_start: 0,
            row_end: 4,
            col_start: 0,
            col_end: n,
        },
    ));
    m.connect(gram_re, 0, top_re, 0).unwrap();
    m.connect(gram_im, 0, top_im, 0).unwrap();

    // 14-15: scale the partitions
    let scale_re = m.add(Block::new(
        "scale_re",
        BlockKind::Gain {
            gain: 1.0 / n as f64,
        },
    ));
    let scale_im = m.add(Block::new(
        "scale_im",
        BlockKind::Gain {
            gain: 1.0 / n as f64,
        },
    ));
    m.connect(top_re, 0, scale_re, 0).unwrap();
    m.connect(top_im, 0, scale_im, 0).unwrap();

    // 16-17: partition outputs
    let out_re = m.add(Block::new("out_re", BlockKind::Outport { index: 0 }));
    let out_im = m.add(Block::new("out_im", BlockKind::Outport { index: 1 }));
    m.connect(scale_re, 0, out_re, 0).unwrap();
    m.connect(scale_im, 0, out_im, 0).unwrap();

    // 18-22: Frobenius norm of the partition (|re|² + |im|², summed, rooted)
    let sq_re = m.add(Block::new("norm_sq_re", BlockKind::Square));
    let sq_im = m.add(Block::new("norm_sq_im", BlockKind::Square));
    let norm_add = m.add(Block::new("norm_add", BlockKind::Add));
    let norm_sum = m.add(Block::new("norm_sum", BlockKind::SumOfElements));
    let norm_root = m.add(Block::new("norm_root", BlockKind::Sqrt));
    m.connect(scale_re, 0, sq_re, 0).unwrap();
    m.connect(scale_im, 0, sq_im, 0).unwrap();
    m.connect(sq_re, 0, norm_add, 0).unwrap();
    m.connect(sq_im, 0, norm_add, 1).unwrap();
    m.connect(norm_add, 0, norm_sum, 0).unwrap();
    m.connect(norm_sum, 0, norm_root, 0).unwrap();
    // 23: norm output
    let out_norm = m.add(Block::new("out_norm", BlockKind::Outport { index: 2 }));
    m.connect(norm_root, 0, out_norm, 0).unwrap();

    // 24-26: leading-row checksum (first row of the real partition)
    let lead = m.add(Block::new(
        "lead_row",
        BlockKind::Submatrix {
            row_start: 0,
            row_end: 1,
            col_start: 0,
            col_end: n,
        },
    ));
    let lead_sum = m.add(Block::new("lead_sum", BlockKind::SumOfElements));
    let out_lead = m.add(Block::new("out_lead", BlockKind::Outport { index: 3 }));
    m.connect(scale_re, 0, lead, 0).unwrap();
    m.connect(lead, 0, lead_sum, 0).unwrap();
    m.connect(lead_sum, 0, out_lead, 0).unwrap();

    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_26_blocks() {
        assert_eq!(hermitian_transpose().deep_len(), 26);
    }

    #[test]
    fn matmuls_compute_only_top_rows() {
        let a = frodo_core::Analysis::run(hermitian_transpose()).unwrap();
        let opt_mm = a
            .report()
            .stats()
            .iter()
            .filter(|s| s.type_name == "matrix_multiply" && s.optimizable)
            .count();
        assert_eq!(opt_mm, 4, "all four products shrink to 4 of 12 rows");
        assert!(a.report().elimination_ratio() > 0.25);
    }
}
