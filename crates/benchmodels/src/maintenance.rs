//! `Maintenance` — industry equipment preservation model (165 blocks).
//!
//! Ten vibration-sensor channels, each wrapped in a `Subsystem` (exercising
//! the flattening path of model parse): FIR conditioning, warm-up trim,
//! envelope, slope, and a threshold gate. The channels are muxed and
//! analyzed through a report window plus a decimated peak-alarm path, so
//! different fractions of each channel's work are live — exactly the mixed
//! calculation ranges Algorithm 1 is built to resolve.

use frodo_model::{Block, BlockKind, Model, RelOp, SelectorMode, Tensor};
use frodo_ranges::Shape;

const CHAN_LEN: usize = 160;
const TRIMMED: usize = CHAN_LEN - 8;

/// One sensor channel as a reusable subsystem (13 inner blocks).
fn channel_subsystem(idx: usize) -> Model {
    let mut s = Model::new(format!("channel{idx}"));
    let input = s.add(Block::new(
        "raw",
        BlockKind::Inport {
            index: 0,
            shape: Shape::Vector(CHAN_LEN),
        },
    ));
    let taps: Vec<f64> = (0..8)
        .map(|i| ((i + idx) as f64 * 0.17).cos() / 8.0)
        .collect();
    let fir = s.add(Block::new(
        "condition",
        BlockKind::FirFilter { coeffs: taps },
    ));
    let trim = s.add(Block::new(
        "trim",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd {
                start: 8,
                end: CHAN_LEN,
            },
        },
    ));
    let envelope = s.add(Block::new("envelope", BlockKind::Abs));
    let smooth = s.add(Block::new("smooth", BlockKind::MovingAverage { window: 6 }));
    let slope = s.add(Block::new("slope", BlockKind::Difference));
    let gain = s.add(Block::new("gain", BlockKind::Gain { gain: 3.5 }));
    let bias = s.add(Block::new("bias", BlockKind::Bias { bias: -0.02 }));
    let threshold = s.add(Block::new(
        "threshold",
        BlockKind::Constant {
            value: Tensor::scalar(0.01),
        },
    ));
    let active = s.add(Block::new(
        "active",
        BlockKind::Relational { op: RelOp::Gt },
    ));
    let floor = s.add(Block::new(
        "floor",
        BlockKind::Constant {
            value: Tensor::scalar(0.0),
        },
    ));
    let gate = s.add(Block::new("gate", BlockKind::Switch { threshold: 0.5 }));
    let output = s.add(Block::new("health", BlockKind::Outport { index: 0 }));
    s.connect(input, 0, fir, 0).unwrap();
    s.connect(fir, 0, trim, 0).unwrap();
    s.connect(trim, 0, envelope, 0).unwrap();
    s.connect(envelope, 0, smooth, 0).unwrap();
    s.connect(smooth, 0, slope, 0).unwrap();
    s.connect(slope, 0, gain, 0).unwrap();
    s.connect(gain, 0, bias, 0).unwrap();
    s.connect(bias, 0, gate, 0).unwrap();
    s.connect(bias, 0, active, 0).unwrap();
    s.connect(threshold, 0, active, 1).unwrap();
    s.connect(active, 0, gate, 1).unwrap();
    s.connect(floor, 0, gate, 2).unwrap();
    s.connect(gate, 0, output, 0).unwrap();
    s
}

/// Builds the `Maintenance` model.
pub fn maintenance() -> Model {
    let mut m = Model::new("Maintenance");
    let channels = 10usize;

    // 10 × (top-level inport + subsystem with 13 inner blocks) = 150 deep
    let mut health = Vec::new();
    for c in 0..channels {
        let input = m.add(Block::new(
            format!("sensor{c}"),
            BlockKind::Inport {
                index: c,
                shape: Shape::Vector(CHAN_LEN),
            },
        ));
        let sub = m.add(Block::new(
            format!("channel{c}"),
            BlockKind::Subsystem(Box::new(channel_subsystem(c))),
        ));
        m.connect(input, 0, sub, 0).unwrap();
        health.push(sub);
    }

    // 151-155: fused health vector, report window
    let mux = m.add(Block::new("fleet", BlockKind::Mux { inputs: channels }));
    for (p, h) in health.iter().enumerate() {
        m.connect(*h, 0, mux, p).unwrap();
    }
    let fir = m.add(Block::new(
        "fleet_smooth",
        BlockKind::FirFilter {
            coeffs: vec![0.2, 0.3, 0.3, 0.2],
        },
    ));
    let window = m.add(Block::new(
        "report_window",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd {
                start: 200,
                end: 800,
            },
        },
    ));
    let scale = m.add(Block::new("report_scale", BlockKind::Gain { gain: 0.25 }));
    let out0 = m.add(Block::new("report_out", BlockKind::Outport { index: 0 }));
    m.connect(mux, 0, fir, 0).unwrap();
    m.connect(fir, 0, window, 0).unwrap();
    m.connect(window, 0, scale, 0).unwrap();
    m.connect(scale, 0, out0, 0).unwrap();

    // 156-158: fleet health score
    let sq = m.add(Block::new("health_sq", BlockKind::Square));
    let mean = m.add(Block::new("health_mean", BlockKind::MeanOfElements));
    let out1 = m.add(Block::new("health_out", BlockKind::Outport { index: 1 }));
    m.connect(scale, 0, sq, 0).unwrap();
    m.connect(sq, 0, mean, 0).unwrap();
    m.connect(mean, 0, out1, 0).unwrap();

    // 159-163: decimated peak alarm over the freshest channels (every 4th
    // sample of the last fifth of the fused vector)
    let total = channels * TRIMMED;
    let tail = total - total / 5;
    let stride: Vec<usize> = (0..(total - tail) / 4).map(|i| tail + i * 4).collect();
    let decimate = m.add(Block::new(
        "alarm_decimate",
        BlockKind::Selector {
            mode: SelectorMode::IndexVector(stride),
        },
    ));
    let peak = m.add(Block::new("alarm_peak", BlockKind::MaxOfElements));
    let limit = m.add(Block::new(
        "alarm_limit",
        BlockKind::Constant {
            value: Tensor::scalar(2.0),
        },
    ));
    let alarm = m.add(Block::new("alarm", BlockKind::Relational { op: RelOp::Gt }));
    let out2 = m.add(Block::new("alarm_out", BlockKind::Outport { index: 2 }));
    m.connect(mux, 0, decimate, 0).unwrap();
    m.connect(decimate, 0, peak, 0).unwrap();
    m.connect(peak, 0, alarm, 0).unwrap();
    m.connect(limit, 0, alarm, 1).unwrap();
    m.connect(alarm, 0, out2, 0).unwrap();

    // 164-165: report trend
    let trend = m.add(Block::new("report_trend", BlockKind::Difference));
    let out3 = m.add(Block::new("trend_out", BlockKind::Outport { index: 3 }));
    m.connect(scale, 0, trend, 0).unwrap();
    m.connect(trend, 0, out3, 0).unwrap();

    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_165_blocks() {
        assert_eq!(maintenance().deep_len(), 165);
    }

    #[test]
    fn flattening_preserves_analysis() {
        let a = frodo_core::Analysis::run(maintenance()).unwrap();
        // no subsystem survives flattening
        assert!(a
            .dfg()
            .model()
            .blocks()
            .iter()
            .all(|b| !matches!(b.kind, BlockKind::Subsystem(_))));
        // channels are only partially live (window + decimated alarm)
        assert!(
            a.report().elimination_ratio() > 0.15,
            "ratio {}",
            a.report().elimination_ratio()
        );
    }
}
