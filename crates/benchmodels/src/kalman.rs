//! `Kalman` — automotive temperature control module (46 blocks).
//!
//! A steady-state Kalman observer with a proportional controller. Raw
//! sensor and command streams are filtered, but only the freshest samples
//! feed the observer — the `Selector`s after the stream filters give FRODO
//! nearly the whole preprocessing cost to eliminate. The state update uses
//! constant-gain matrix arithmetic with a `UnitDelay` (whose state, per the
//! redundancy-elimination semantics, is always fully maintained).

use frodo_model::{Block, BlockKind, Model, SelectorMode, Tensor};
use frodo_ranges::Shape;

fn const_matrix(name: &str, rows: usize, cols: usize, scale: f64) -> (String, Tensor) {
    let data: Vec<f64> = (0..rows * cols)
        .map(|i| {
            let (r, c) = (i / cols, i % cols);
            if r == c {
                0.9 * scale
            } else {
                scale * 0.01 * (((r * 7 + c * 3) % 11) as f64 - 5.0)
            }
        })
        .collect();
    (name.to_string(), Tensor::matrix(rows, cols, data))
}

/// Builds the `Kalman` model.
pub fn kalman() -> Model {
    let mut m = Model::new("Kalman");
    let nx = 16usize; // states
    let nz = 8usize; // measurements
    let nu = 4usize; // controls
    let stream = 256usize;

    // 1-6: measurement preprocessing — long stream, only the newest nz used
    let in_meas = m.add(Block::new(
        "sensor_stream",
        BlockKind::Inport {
            index: 0,
            shape: Shape::Vector(stream),
        },
    ));
    let fir = m.add(Block::new(
        "sensor_filter",
        BlockKind::FirFilter {
            coeffs: vec![0.25, 0.25, 0.2, 0.15, 0.1, 0.05],
        },
    ));
    let calib = m.add(Block::new("sensor_calib", BlockKind::Bias { bias: -2.5 }));
    let scale = m.add(Block::new("sensor_scale", BlockKind::Gain { gain: 0.1 }));
    let fresh = m.add(Block::new(
        "freshest",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd {
                start: stream - nz,
                end: stream,
            },
        },
    ));
    let z = m.add(Block::new(
        "z",
        BlockKind::Reshape {
            shape: Shape::Matrix(nz, 1),
        },
    ));
    m.connect(in_meas, 0, fir, 0).unwrap();
    m.connect(fir, 0, calib, 0).unwrap();
    m.connect(calib, 0, scale, 0).unwrap();
    m.connect(scale, 0, fresh, 0).unwrap();
    m.connect(fresh, 0, z, 0).unwrap();

    // 7-11: command preprocessing
    let in_ctrl = m.add(Block::new(
        "command_stream",
        BlockKind::Inport {
            index: 1,
            shape: Shape::Vector(64),
        },
    ));
    let ma = m.add(Block::new(
        "command_smooth",
        BlockKind::MovingAverage { window: 4 },
    ));
    let cgain = m.add(Block::new("command_gain", BlockKind::Gain { gain: 0.5 }));
    let clatest = m.add(Block::new(
        "command_latest",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd { start: 60, end: 64 },
        },
    ));
    let u = m.add(Block::new(
        "u",
        BlockKind::Reshape {
            shape: Shape::Matrix(nu, 1),
        },
    ));
    m.connect(in_ctrl, 0, ma, 0).unwrap();
    m.connect(ma, 0, cgain, 0).unwrap();
    m.connect(cgain, 0, clatest, 0).unwrap();
    m.connect(clatest, 0, u, 0).unwrap();

    // 12-15: observer constants
    let (an, at) = const_matrix("A", nx, nx, 1.0);
    let a = m.add(Block::new(an, BlockKind::Constant { value: at }));
    let (bn, bt) = const_matrix("B", nx, nu, 0.5);
    let b = m.add(Block::new(bn, BlockKind::Constant { value: bt }));
    let (hn, ht) = const_matrix("H", nz, nx, 1.0);
    let h = m.add(Block::new(hn, BlockKind::Constant { value: ht }));
    let (kn, kt) = const_matrix("K", nx, nz, 0.2);
    let k = m.add(Block::new(kn, BlockKind::Constant { value: kt }));

    // 16: previous state
    let x_prev = m.add(Block::new(
        "x_prev",
        BlockKind::UnitDelay {
            initial: Tensor::zeros(Shape::Matrix(nx, 1)),
        },
    ));

    // 17-23: state update  x = (A·x⁻ + B·u) + K·(z − H·(A·x⁻ + B·u))
    let ax = m.add(Block::new("Ax", BlockKind::MatrixMultiply));
    let bu = m.add(Block::new("Bu", BlockKind::MatrixMultiply));
    let x_pred = m.add(Block::new("x_pred", BlockKind::Add));
    let hx = m.add(Block::new("Hx", BlockKind::MatrixMultiply));
    let innov = m.add(Block::new("innovation", BlockKind::Subtract));
    let kinn = m.add(Block::new("K_innovation", BlockKind::MatrixMultiply));
    let x_new = m.add(Block::new("x_new", BlockKind::Add));
    m.connect(a, 0, ax, 0).unwrap();
    m.connect(x_prev, 0, ax, 1).unwrap();
    m.connect(b, 0, bu, 0).unwrap();
    m.connect(u, 0, bu, 1).unwrap();
    m.connect(ax, 0, x_pred, 0).unwrap();
    m.connect(bu, 0, x_pred, 1).unwrap();
    m.connect(h, 0, hx, 0).unwrap();
    m.connect(x_pred, 0, hx, 1).unwrap();
    m.connect(z, 0, innov, 0).unwrap();
    m.connect(hx, 0, innov, 1).unwrap();
    m.connect(k, 0, kinn, 0).unwrap();
    m.connect(innov, 0, kinn, 1).unwrap();
    m.connect(x_pred, 0, x_new, 0).unwrap();
    m.connect(kinn, 0, x_new, 1).unwrap();
    m.connect(x_new, 0, x_prev, 0).unwrap();

    // 24-25: cabin temperature estimate (first two states)
    let cabin = m.add(Block::new(
        "cabin_temps",
        BlockKind::Submatrix {
            row_start: 0,
            row_end: 2,
            col_start: 0,
            col_end: 1,
        },
    ));
    let out0 = m.add(Block::new("temps_out", BlockKind::Outport { index: 0 }));
    m.connect(x_new, 0, cabin, 0).unwrap();
    m.connect(cabin, 0, out0, 0).unwrap();

    // 26-31: proportional control law with saturation
    let setpoint = m.add(Block::new(
        "setpoint",
        BlockKind::Constant {
            value: Tensor::matrix(2, 1, vec![21.0, 20.0]),
        },
    ));
    let err = m.add(Block::new("temp_error", BlockKind::Subtract));
    let p_gain = m.add(Block::new("p_gain", BlockKind::Gain { gain: -0.8 }));
    let trim = m.add(Block::new("actuator_trim", BlockKind::Bias { bias: 0.05 }));
    let sat = m.add(Block::new(
        "actuator_limits",
        BlockKind::Saturation {
            lower: -10.0,
            upper: 10.0,
        },
    ));
    let out1 = m.add(Block::new("command_out", BlockKind::Outport { index: 1 }));
    m.connect(cabin, 0, err, 0).unwrap();
    m.connect(setpoint, 0, err, 1).unwrap();
    m.connect(err, 0, p_gain, 0).unwrap();
    m.connect(p_gain, 0, trim, 0).unwrap();
    m.connect(trim, 0, sat, 0).unwrap();
    m.connect(sat, 0, out1, 0).unwrap();

    // 32-34: quadratic regulation cost
    let err_sq = m.add(Block::new("err_sq", BlockKind::Square));
    let cost = m.add(Block::new("cost", BlockKind::SumOfElements));
    let out2 = m.add(Block::new("cost_out", BlockKind::Outport { index: 2 }));
    m.connect(err, 0, err_sq, 0).unwrap();
    m.connect(err_sq, 0, cost, 0).unwrap();
    m.connect(cost, 0, out2, 0).unwrap();

    // 35-38: innovation magnitude (observer health)
    let in_sq = m.add(Block::new("innov_sq", BlockKind::Square));
    let in_sum = m.add(Block::new("innov_sum", BlockKind::SumOfElements));
    let in_root = m.add(Block::new("innov_norm", BlockKind::Sqrt));
    let out3 = m.add(Block::new("innov_out", BlockKind::Outport { index: 3 }));
    m.connect(innov, 0, in_sq, 0).unwrap();
    m.connect(in_sq, 0, in_sum, 0).unwrap();
    m.connect(in_sum, 0, in_root, 0).unwrap();
    m.connect(in_root, 0, out3, 0).unwrap();

    // 39-41: predicted-state monitor (leading state only)
    let pred_head = m.add(Block::new(
        "pred_head",
        BlockKind::Submatrix {
            row_start: 0,
            row_end: 1,
            col_start: 0,
            col_end: 1,
        },
    ));
    let pred_gain = m.add(Block::new("pred_gain", BlockKind::Gain { gain: 1.8 }));
    let out4 = m.add(Block::new("pred_out", BlockKind::Outport { index: 4 }));
    m.connect(x_pred, 0, pred_head, 0).unwrap();
    m.connect(pred_head, 0, pred_gain, 0).unwrap();
    m.connect(pred_gain, 0, out4, 0).unwrap();

    // 42-44: error trend (previous-step comparison)
    let err_prev = m.add(Block::new(
        "err_prev",
        BlockKind::UnitDelay {
            initial: Tensor::zeros(Shape::Matrix(2, 1)),
        },
    ));
    let trend = m.add(Block::new("err_trend", BlockKind::Subtract));
    let out5 = m.add(Block::new("trend_out", BlockKind::Outport { index: 5 }));
    m.connect(err, 0, err_prev, 0).unwrap();
    m.connect(err, 0, trend, 0).unwrap();
    m.connect(err_prev, 0, trend, 1).unwrap();
    m.connect(trend, 0, out5, 0).unwrap();

    // 45-46: disabled datalogger tap (dead chain)
    let logger = m.add(Block::new("datalogger", BlockKind::Gain { gain: 1.0 }));
    let sink = m.add(Block::new("datalogger_sink", BlockKind::Terminator));
    m.connect(x_new, 0, logger, 0).unwrap();
    m.connect(logger, 0, sink, 0).unwrap();

    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_46_blocks() {
        assert_eq!(kalman().deep_len(), 46);
    }

    #[test]
    fn stream_preprocessing_is_mostly_eliminated() {
        let a = frodo_core::Analysis::run(kalman()).unwrap();
        let dfg = a.dfg();
        let fir = dfg.model().find("sensor_filter").unwrap();
        let kept = a.range(fir, 0).count();
        assert!(kept <= 16, "FIR computes {kept} of 256 samples");
        assert!(a.report().elimination_ratio() > 0.5);
    }

    #[test]
    fn delay_state_is_fully_maintained() {
        let a = frodo_core::Analysis::run(kalman()).unwrap();
        let x_new = a.dfg().model().find("x_new").unwrap();
        assert_eq!(a.range(x_new, 0).count(), 16);
    }
}
