//! `Decryption` — decryption protocol (39 blocks).
//!
//! A 128-byte ciphertext block is padded to the 160-element round width,
//! pushed through four arithmetic decryption rounds (keystream subtraction,
//! modular reduction, rotation, diffusion), and the plaintext is recovered
//! by truncating the padding — so every round carries 20% redundant work
//! that FRODO eliminates.

use frodo_model::{Block, BlockKind, Model, RoundMode, SelectorMode, Tensor};
use frodo_ranges::Shape;

/// Builds the `Decryption` model.
pub fn decryption() -> Model {
    let mut m = Model::new("Decryption");
    let block_len = 128usize;
    let width = 160usize;

    // 1: ciphertext block
    let input = m.add(Block::new(
        "ciphertext",
        BlockKind::Inport {
            index: 0,
            shape: Shape::Vector(block_len),
        },
    ));
    // 2: pad to round width
    let pad = m.add(Block::new(
        "pad",
        BlockKind::Pad {
            left: 16,
            right: 16,
            value: 0.0,
        },
    ));
    m.connect(input, 0, pad, 0).unwrap();

    // 4 rounds × 8 blocks = 32 (blocks 3..=34)
    let mut prev = pad;
    for round in 0..4 {
        let key: Vec<f64> = (0..width)
            .map(|i| ((i * 31 + round * 97 + 13) % 251) as f64)
            .collect();
        let keystream = m.add(Block::new(
            format!("round{round}_key"),
            BlockKind::Constant {
                value: Tensor::vector(key),
            },
        ));
        let desub = m.add(Block::new(
            format!("round{round}_desub"),
            BlockKind::Subtract,
        ));
        let modulus = m.add(Block::new(
            format!("round{round}_modulus"),
            BlockKind::Constant {
                value: Tensor::scalar(256.0),
            },
        ));
        let reduce = m.add(Block::new(format!("round{round}_mod"), BlockKind::Mod));
        // inverse rotation by 7 positions
        let rot_table: Vec<usize> = (0..width).map(|i| (i + 7) % width).collect();
        let unrotate = m.add(Block::new(
            format!("round{round}_unrotate"),
            BlockKind::Selector {
                mode: SelectorMode::IndexVector(rot_table),
            },
        ));
        let spread = m.add(Block::new(
            format!("round{round}_spread"),
            BlockKind::Constant {
                value: Tensor::scalar(0.5),
            },
        ));
        let diffuse = m.add(Block::new(
            format!("round{round}_diffuse"),
            BlockKind::Multiply,
        ));
        let fold = m.add(Block::new(format!("round{round}_fold"), BlockKind::Abs));
        m.connect(prev, 0, desub, 0).unwrap();
        m.connect(keystream, 0, desub, 1).unwrap();
        m.connect(desub, 0, reduce, 0).unwrap();
        m.connect(modulus, 0, reduce, 1).unwrap();
        m.connect(reduce, 0, unrotate, 0).unwrap();
        m.connect(unrotate, 0, diffuse, 0).unwrap();
        m.connect(spread, 0, diffuse, 1).unwrap();
        m.connect(diffuse, 0, fold, 0).unwrap();
        prev = fold;
    }

    // 35: strip the padding back to the plaintext block
    let strip = m.add(Block::new(
        "strip_padding",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd {
                start: 16,
                end: 16 + block_len,
            },
        },
    ));
    m.connect(prev, 0, strip, 0).unwrap();
    // 36: descale
    let descale = m.add(Block::new("descale", BlockKind::Gain { gain: 2.0 }));
    m.connect(strip, 0, descale, 0).unwrap();
    // 37: quantize to byte values
    let quant = m.add(Block::new(
        "quantize",
        BlockKind::Rounding {
            mode: RoundMode::Floor,
        },
    ));
    m.connect(descale, 0, quant, 0).unwrap();
    // 38: clamp to byte range
    let clamp = m.add(Block::new(
        "clamp",
        BlockKind::Saturation {
            lower: 0.0,
            upper: 255.0,
        },
    ));
    m.connect(quant, 0, clamp, 0).unwrap();
    // 39: plaintext
    let out = m.add(Block::new("plaintext", BlockKind::Outport { index: 0 }));
    m.connect(clamp, 0, out, 0).unwrap();

    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_39_blocks() {
        assert_eq!(decryption().deep_len(), 39);
    }

    #[test]
    fn rounds_carry_eliminable_padding_work() {
        let a = frodo_core::Analysis::run(decryption()).unwrap();
        assert!(a.report().elimination_ratio() > 0.1);
        // at least one block in every round is optimizable
        let opt = a.report().optimizable_blocks().len();
        assert!(opt >= 4, "{opt} optimizable blocks");
    }
}
