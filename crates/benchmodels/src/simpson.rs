//! `Simpson` — numerical integration model (30 blocks).
//!
//! Composite Simpson integration of a sampled function over three
//! sub-intervals selected out of a long sample vector, with a trapezoid
//! cross-check. The integrand preparation runs over the full vector but
//! only the selected sub-intervals are consumed — classic redundancy.

use frodo_model::{Block, BlockKind, Model, SelectorMode, Tensor};
use frodo_ranges::Shape;

/// Simpson weights 1,4,2,4,…,4,1 scaled by h/3 for `n` (odd) points.
fn simpson_weights(n: usize, h: f64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let w = if i == 0 || i == n - 1 {
                1.0
            } else if i % 2 == 1 {
                4.0
            } else {
                2.0
            };
            w * h / 3.0
        })
        .collect()
}

/// Builds the `Simpson` model.
pub fn simpson() -> Model {
    let mut m = Model::new("Simpson");
    let n = 801usize;
    let seg = 101usize;
    let h = 0.01;

    // 1: function samples
    let samples = m.add(Block::new(
        "samples",
        BlockKind::Inport {
            index: 0,
            shape: Shape::Vector(n),
        },
    ));
    // 2-3: integrand preparation f(x) = sin(x)·scale over the whole vector
    let wave = m.add(Block::new("integrand_sin", BlockKind::Sin));
    let scale = m.add(Block::new("integrand_scale", BlockKind::Gain { gain: 2.0 }));
    m.connect(samples, 0, wave, 0).unwrap();
    m.connect(wave, 0, scale, 0).unwrap();

    // 3 sub-intervals × 4 blocks = 12 (blocks 4..=15)
    let mut partials = Vec::new();
    for (seg_idx, start) in [100usize, 350, 600].into_iter().enumerate() {
        let sel = m.add(Block::new(
            format!("segment{seg_idx}"),
            BlockKind::Selector {
                mode: SelectorMode::StartEnd {
                    start,
                    end: start + seg,
                },
            },
        ));
        let w = m.add(Block::new(
            format!("weights{seg_idx}"),
            BlockKind::Constant {
                value: Tensor::vector(simpson_weights(seg, h)),
            },
        ));
        let weighted = m.add(Block::new(
            format!("weighted{seg_idx}"),
            BlockKind::Multiply,
        ));
        let sum = m.add(Block::new(
            format!("integral{seg_idx}"),
            BlockKind::SumOfElements,
        ));
        m.connect(scale, 0, sel, 0).unwrap();
        m.connect(sel, 0, weighted, 0).unwrap();
        m.connect(w, 0, weighted, 1).unwrap();
        m.connect(weighted, 0, sum, 0).unwrap();
        partials.push(sum);
    }

    // 16-20: total integral with result conditioning
    let mux = m.add(Block::new("partials", BlockKind::Mux { inputs: 3 }));
    for (p, id) in partials.iter().enumerate() {
        m.connect(*id, 0, mux, p).unwrap();
    }
    let total = m.add(Block::new("total", BlockKind::SumOfElements));
    let result_gain = m.add(Block::new("result_scale", BlockKind::Gain { gain: 1.0 }));
    let result_bias = m.add(Block::new("result_offset", BlockKind::Bias { bias: 0.0 }));
    let out0 = m.add(Block::new("integral_out", BlockKind::Outport { index: 0 }));
    m.connect(mux, 0, total, 0).unwrap();
    m.connect(total, 0, result_gain, 0).unwrap();
    m.connect(result_gain, 0, result_bias, 0).unwrap();
    m.connect(result_bias, 0, out0, 0).unwrap();

    // 21-27: trapezoid cross-check on the first sub-interval
    let trap_sel = m.add(Block::new(
        "trap_segment",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd {
                start: 100,
                end: 100 + seg,
            },
        },
    ));
    let trap_w: Vec<f64> = (0..seg)
        .map(|i| if i == 0 || i == seg - 1 { h / 2.0 } else { h })
        .collect();
    let trap_weights = m.add(Block::new(
        "trap_weights",
        BlockKind::Constant {
            value: Tensor::vector(trap_w),
        },
    ));
    let trap_mul = m.add(Block::new("trap_weighted", BlockKind::Multiply));
    let trap_sum = m.add(Block::new("trap_integral", BlockKind::SumOfElements));
    let err = m.add(Block::new("method_error", BlockKind::Subtract));
    let err_abs = m.add(Block::new("method_error_abs", BlockKind::Abs));
    m.connect(scale, 0, trap_sel, 0).unwrap();
    m.connect(trap_sel, 0, trap_mul, 0).unwrap();
    m.connect(trap_weights, 0, trap_mul, 1).unwrap();
    m.connect(trap_mul, 0, trap_sum, 0).unwrap();
    m.connect(partials[0], 0, err, 0).unwrap();
    m.connect(trap_sum, 0, err, 1).unwrap();
    m.connect(err, 0, err_abs, 0).unwrap();
    // 28: error output
    let out1 = m.add(Block::new("error_out", BlockKind::Outport { index: 1 }));
    m.connect(err_abs, 0, out1, 0).unwrap();

    // 29-30: convergence flag and its output
    let tol = m.add(Block::new(
        "tolerance",
        BlockKind::Constant {
            value: Tensor::scalar(1e-4),
        },
    ));
    let converged = m.add(Block::new(
        "converged",
        BlockKind::Relational {
            op: frodo_model::RelOp::Lt,
        },
    ));
    m.connect(err_abs, 0, converged, 0).unwrap();
    m.connect(tol, 0, converged, 1).unwrap();
    let out2 = m.add(Block::new("converged_out", BlockKind::Outport { index: 2 }));
    m.connect(converged, 0, out2, 0).unwrap();

    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_30_blocks() {
        assert_eq!(simpson().deep_len(), 30);
    }

    #[test]
    fn integrand_is_computed_only_on_segments() {
        let a = frodo_core::Analysis::run(simpson()).unwrap();
        let sin = a.dfg().model().find("integrand_sin").unwrap();
        // three 101-sample segments (the trapezoid check reuses segment 0)
        assert_eq!(a.range(sin, 0).count(), 3 * 101);
        assert!(a.is_optimizable(sin));
    }
}
