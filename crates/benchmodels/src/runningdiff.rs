//! `RunningDiff` — differential amplifier (106 blocks).
//!
//! A long analog-style processing chain on the differential input: sixteen
//! filter/derivative stages of FIR + trim-`Selector` + moving average +
//! first difference. The windowed-reduction loops (FIR, moving average) are
//! the pattern where HCG's explicit SIMD shines against plain baselines —
//! matching the paper's Table 2, where HCG is ~3.7× faster than DFSynth on
//! this model — while the trim selectors give FRODO its own leverage on top.

use frodo_model::{Block, BlockKind, Model, SelectorMode};
use frodo_ranges::Shape;

/// Builds the `RunningDiff` model.
pub fn running_diff() -> Model {
    let mut m = Model::new("RunningDiff");
    let n = 512usize;

    // 1-2: the two amplifier inputs
    let plus = m.add(Block::new(
        "v_plus",
        BlockKind::Inport {
            index: 0,
            shape: Shape::Vector(n),
        },
    ));
    let minus = m.add(Block::new(
        "v_minus",
        BlockKind::Inport {
            index: 1,
            shape: Shape::Vector(n),
        },
    ));
    // 3-4: differential input with common-mode gain
    let diff = m.add(Block::new("differential", BlockKind::Subtract));
    let front_gain = m.add(Block::new("front_gain", BlockKind::Gain { gain: 20.0 }));
    m.connect(plus, 0, diff, 0).unwrap();
    m.connect(minus, 0, diff, 1).unwrap();
    m.connect(diff, 0, front_gain, 0).unwrap();

    // 16 stages × 6 blocks = 96 (blocks 5..=100)
    let mut prev = front_gain;
    let mut len = n;
    for stage in 0..16 {
        let taps: Vec<f64> = (0..8)
            .map(|i| ((i + stage) as f64 * 0.21).sin() / 8.0 + 0.05)
            .collect();
        let fir = m.add(Block::new(
            format!("stage{stage}_fir"),
            BlockKind::FirFilter { coeffs: taps },
        ));
        let trim = m.add(Block::new(
            format!("stage{stage}_trim"),
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 7, end: len },
            },
        ));
        let smooth = m.add(Block::new(
            format!("stage{stage}_smooth"),
            BlockKind::MovingAverage { window: 4 },
        ));
        let slope = m.add(Block::new(
            format!("stage{stage}_slope"),
            BlockKind::Difference,
        ));
        let gain = m.add(Block::new(
            format!("stage{stage}_gain"),
            BlockKind::Gain {
                gain: 1.0 + stage as f64 * 0.02,
            },
        ));
        let level = m.add(Block::new(
            format!("stage{stage}_level"),
            BlockKind::Bias { bias: -0.001 },
        ));
        m.connect(prev, 0, fir, 0).unwrap();
        m.connect(fir, 0, trim, 0).unwrap();
        m.connect(trim, 0, smooth, 0).unwrap();
        m.connect(smooth, 0, slope, 0).unwrap();
        m.connect(slope, 0, gain, 0).unwrap();
        m.connect(gain, 0, level, 0).unwrap();
        prev = level;
        len -= 7;
    }

    // 101: the reported derivative window
    let window = m.add(Block::new(
        "report_window",
        BlockKind::Selector {
            mode: SelectorMode::StartEnd {
                start: 100,
                end: 300,
            },
        },
    ));
    m.connect(prev, 0, window, 0).unwrap();
    // 102: primary output
    let out0 = m.add(Block::new(
        "derivative_out",
        BlockKind::Outport { index: 0 },
    ));
    m.connect(window, 0, out0, 0).unwrap();

    // 103-104: peak slew rate
    let peak = m.add(Block::new("peak_slew", BlockKind::MaxOfElements));
    let out1 = m.add(Block::new("peak_out", BlockKind::Outport { index: 1 }));
    m.connect(window, 0, peak, 0).unwrap();
    m.connect(peak, 0, out1, 0).unwrap();

    // 105-106: mean level
    let mean = m.add(Block::new("mean_level", BlockKind::MeanOfElements));
    let out2 = m.add(Block::new("mean_out", BlockKind::Outport { index: 2 }));
    m.connect(window, 0, mean, 0).unwrap();
    m.connect(mean, 0, out2, 0).unwrap();

    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_106_blocks() {
        assert_eq!(running_diff().deep_len(), 106);
    }

    #[test]
    fn window_propagates_through_all_stages() {
        let a = frodo_core::Analysis::run(running_diff()).unwrap();
        // the very first FIR should already be range-restricted
        let fir0 = a.dfg().model().find("stage0_fir").unwrap();
        assert!(a.is_optimizable(fir0));
        assert!(
            a.report().elimination_ratio() > 0.3,
            "ratio {}",
            a.report().elimination_ratio()
        );
    }
}
