//! The paper's Table-1 benchmark suite, reconstructed.
//!
//! Ten data-intensive Simulink models "collected from industry" (paper §4).
//! The originals are proprietary; these reconstructions preserve what the
//! evaluation depends on — the stated functionality, the block count of
//! Table 1, and the data-intensive structure (large vector/matrix signals
//! flowing through convolutions, filters, and matrix operations, truncated
//! by `Selector`/`Pad`/`Submatrix` blocks so redundancy elimination has the
//! leverage the paper reports).
//!
//! # Example
//!
//! ```
//! use frodo_benchmodels::{all, table1};
//!
//! let suite = all();
//! assert_eq!(suite.len(), 10);
//! for (bench, row) in suite.iter().zip(table1()) {
//!     assert_eq!(bench.model.deep_len(), row.blocks);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audio;
mod back;
mod decryption;
mod highpass;
mod ht;
mod kalman;
mod maintenance;
mod manufacture;
pub mod random;
mod runningdiff;
mod simpson;

pub use audio::audio_process;
pub use back::back;
pub use decryption::decryption;
pub use highpass::high_pass;
pub use ht::hermitian_transpose;
pub use kalman::kalman;
pub use maintenance::maintenance;
pub use manufacture::manufacture;
pub use runningdiff::running_diff;
pub use simpson::simpson;

use frodo_model::Model;

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// Model name as printed in the paper.
    pub name: &'static str,
    /// The paper's functionality description.
    pub functionality: &'static str,
    /// The paper's `#Block` column.
    pub blocks: usize,
}

/// The paper's Table 1, verbatim.
pub fn table1() -> [Table1Row; 10] {
    [
        Table1Row {
            name: "AudioProcess",
            functionality: "Vehicle audio analysis",
            blocks: 51,
        },
        Table1Row {
            name: "Decryption",
            functionality: "Decryption protocol",
            blocks: 39,
        },
        Table1Row {
            name: "HighPass",
            functionality: "HighPass filter model",
            blocks: 49,
        },
        Table1Row {
            name: "HT",
            functionality: "Hermitian transpose matrix calculation",
            blocks: 26,
        },
        Table1Row {
            name: "Kalman",
            functionality: "Automotive temperature control module",
            blocks: 46,
        },
        Table1Row {
            name: "Back",
            functionality: "Backpropagation in the CNN model",
            blocks: 24,
        },
        Table1Row {
            name: "Maintenance",
            functionality: "Industry equipment preservation model",
            blocks: 165,
        },
        Table1Row {
            name: "Maunfacture", // sic — the paper's own spelling
            functionality: "Product quality assessment model",
            blocks: 29,
        },
        Table1Row {
            name: "RunningDiff",
            functionality: "Differential amplifier",
            blocks: 106,
        },
        Table1Row {
            name: "Simpson",
            functionality: "Numerical integration model",
            blocks: 30,
        },
    ]
}

/// A benchmark entry: the Table-1 row plus the reconstructed model.
#[derive(Debug, Clone)]
pub struct BenchModel {
    /// Model name (Table 1).
    pub name: &'static str,
    /// Functionality description (Table 1).
    pub functionality: &'static str,
    /// The reconstructed model.
    pub model: Model,
}

/// The full suite, in Table-1 order.
pub fn all() -> Vec<BenchModel> {
    let rows = table1();
    let models = [
        audio_process(),
        decryption(),
        high_pass(),
        hermitian_transpose(),
        kalman(),
        back(),
        maintenance(),
        manufacture(),
        running_diff(),
        simpson(),
    ];
    rows.iter()
        .zip(models)
        .map(|(row, model)| BenchModel {
            name: row.name,
            functionality: row.functionality,
            model,
        })
        .collect()
}

/// Looks up one benchmark by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<BenchModel> {
    all()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

/// Resolves a model *spec*: either a Table-1 benchmark name (via
/// [`by_name`]) or a synthetic-model spec of the form
/// `random:<seed>:<size>` — optionally `random:<seed>:<size>:edit:<k>`
/// for the same model with its `k`-th `Gain` parameter perturbed
/// ([`random::random_model_edited`]). Specs are how the CLI's batch and
/// serve paths name reproducible synthetic workloads, including the
/// cold-vs-incremental pairs the CI gate compiles.
///
/// Returns `None` for an unknown name or a malformed `random:` spec.
pub fn by_spec(spec: &str) -> Option<Model> {
    if let Some(rest) = spec.strip_prefix("random:") {
        let parts: Vec<&str> = rest.split(':').collect();
        let (seed, size) = match parts.as_slice() {
            [seed, size] | [seed, size, "edit", _] => {
                (seed.parse::<u64>().ok()?, size.parse::<usize>().ok()?)
            }
            _ => return None,
        };
        return Some(match parts.as_slice() {
            [_, _, "edit", k] => random::random_model_edited(seed, size, k.parse().ok()?),
            _ => random::random_model(seed, size),
        });
    }
    by_name(spec).map(|b| b.model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_counts_match_table1() {
        for (bench, row) in all().iter().zip(table1()) {
            assert_eq!(
                bench.model.deep_len(),
                row.blocks,
                "{} should have {} blocks, found {}",
                row.name,
                row.blocks,
                bench.model.deep_len()
            );
        }
    }

    #[test]
    fn every_model_analyzes() {
        for bench in all() {
            let analysis = frodo_core::Analysis::run(bench.model.clone())
                .unwrap_or_else(|e| panic!("{} fails analysis: {e}", bench.name));
            assert!(
                analysis.report().total_eliminated() > 0,
                "{} offers no redundancy for FRODO to eliminate",
                bench.name
            );
        }
    }

    #[test]
    fn every_model_contains_truncation_blocks() {
        for bench in all() {
            let flat = bench.model.flattened(&frodo_obs::Trace::noop()).unwrap();
            let truncations = flat
                .blocks()
                .iter()
                .filter(|b| b.kind.is_truncation())
                .count();
            assert!(
                truncations > 0,
                "{} has no data-truncation blocks",
                bench.name
            );
        }
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name("kalman").is_some());
        assert!(by_name("KALMAN").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn by_spec_resolves_names_and_random_specs() {
        assert!(by_spec("Kalman").is_some());
        let base = by_spec("random:42:60").unwrap();
        assert_eq!(base, random::random_model(42, 60));
        let edited = by_spec("random:42:60:edit:0").unwrap();
        assert_ne!(base, edited);
        assert_eq!(edited, random::random_model_edited(42, 60, 0));
        for bad in ["random:x:30", "random:7", "random:7:30:edit:x", "nope"] {
            assert!(by_spec(bad).is_none(), "{bad} should not resolve");
        }
    }
}
