//! The `analyze` pipeline stage: dataflow client analyses over the
//! lowered statement IR.
//!
//! Four analyses run over one [`Program`], all built on the
//! [`dataflow`](crate::dataflow) engine and the shared element-access
//! footprints of [`frodo_codegen::access`]:
//!
//! 1. **Value ranges** (forward, to fixpoint across the invocation back
//!    edge) — a per-buffer interval domain through every statement's
//!    arithmetic, flagging possible division by zero (`F201`), `sqrt`/
//!    `log` of a possibly negative operand (`F202`), and arithmetic that
//!    may overflow to ±∞ (`F203`).
//! 2. **Residual redundancy** (backward demand) — which written elements
//!    are never demanded by any output, modulo the lowering's coalescing
//!    slop (`F204`). On FRODO-style output this should be empty: it is the
//!    dataflow restatement of the paper's redundancy-elimination claim.
//!    Baseline styles report exactly their over-computation.
//! 3. **Schedule races** — a happens-before check of parallel execution
//!    schedules at statement granularity. The finest (most adversarial)
//!    level schedule is derived from element-precise conflicts and then
//!    *verified* against the conflict relation ([`check_schedule`]); any
//!    same-unit cross-task overlap is a data race (`F301`), any coverage
//!    or dependence-order defect is a malformed schedule (`F302`). The
//!    threaded-emission chunk partition is validated the same way.
//! 4. **Buffer lifetimes** — first-write/last-read spans, dead stores,
//!    and a greedy slot packing of `Temp` buffers estimating reclaimable
//!    storage. Report-only (no diagnostics).
//!
//! Everything here is deterministic: diagnostics depend only on the
//! program and the options, never on engine choice or thread counts, and
//! are emitted in statement order.

use std::collections::BTreeSet;

use crate::dataflow::{run_one_pass, run_to_fixpoint, Direction, Transfer};
use crate::diag::{Diagnostic, Severity};
use crate::soundness::{output_demands, OutputDemand};
use frodo_codegen::access::{stmt_access, Malformed, StmtAccess};
use frodo_codegen::emission_chunks;
use frodo_codegen::lir::{
    BinOp, BufId, BufferRole, Program, ReduceOp, Src, Stmt, UnOp, WindowScale,
};
use frodo_core::Analysis;
use frodo_ranges::IndexSet;

/// Tuning knobs for [`analyze_program`] / [`analyze_compile`].
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Assumed magnitude bound on every model input element: inputs are
    /// seeded with the interval `[-input_bound, input_bound]`.
    pub input_bound: f64,
    /// Widening bound: interval ends are clamped to ±`widen_bound`, and
    /// non-converging state is widened to this after `max_passes`.
    pub widen_bound: f64,
    /// Fixpoint pass budget for the value-range analysis before widening.
    pub max_passes: usize,
    /// Demand coalescing slop for the residual detector, in elements.
    /// Should match the lowering's `coalesce_gap` (default 16): the
    /// generator deliberately bridges demand gaps up to this size, and
    /// those bridge elements are not residual redundancy.
    pub demand_slop: usize,
    /// Worker count whose threaded-emission chunk partition is validated.
    pub emit_threads: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            input_bound: 1.0e6,
            widen_bound: 1.0e12,
            max_passes: 8,
            demand_slop: 16,
            emit_threads: 4,
        }
    }
}

/// Everything the `analyze` stage found, plus the counters the trace
/// stage records.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    /// All findings, in deterministic statement order.
    pub diagnostics: Vec<Diagnostic>,
    /// Statements analyzed.
    pub stmts: usize,
    /// Buffers analyzed.
    pub buffers: usize,
    /// Fixpoint passes the value-range analysis took.
    pub interval_passes: usize,
    /// Whether the value ranges converged (possibly after widening).
    pub interval_converged: bool,
    /// Final per-buffer value intervals `(name, lo, hi)`, in buffer
    /// order, for buffers the analysis reached.
    pub value_ranges: Vec<(String, f64, f64)>,
    /// Total elements written but never demanded (`F204` evidence).
    pub residual_elements: usize,
    /// Statements with at least one residual element.
    pub residual_stmts: usize,
    /// Units in the conflict-derived parallel schedule.
    pub schedule_units: usize,
    /// Maximum concurrent tasks in any unit (the schedule's width).
    pub schedule_width: usize,
    /// Element-conflicting statement pairs checked for happens-before.
    pub schedule_pairs: usize,
    /// Block-level analysis levels of the source model (0 when analyzed
    /// without a model, e.g. via [`analyze_program`]). The statement
    /// schedule refines these levels to statement granularity.
    pub region_levels: usize,
    /// Chunks in the validated threaded-emission partition.
    pub chunk_count: usize,
    /// Conflicting statement pairs that straddle a chunk boundary — a
    /// statistic (emission workers produce text, not effects), not a race.
    pub chunk_cross_conflicts: usize,
    /// Buffer lifetime / storage-reuse report.
    pub lifetime: LifetimeReport,
}

impl AnalyzeReport {
    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// No `F301`/`F302` findings: every checked schedule is a proven
    /// race-free partial order over the statements.
    pub fn race_free(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.code == "F301" || d.code == "F302")
    }

    /// Error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }
}

/// First-write/last-read span of one buffer, in statement indices.
#[derive(Debug, Clone)]
pub struct BufferLifetime {
    /// Buffer name.
    pub name: String,
    /// Buffer extent in elements.
    pub len: usize,
    /// Role label (`input` / `output` / `temp` / `const` / `state`).
    pub role: &'static str,
    /// First statement writing the buffer, if any.
    pub first_write: Option<usize>,
    /// Last statement reading the buffer, if any.
    pub last_read: Option<usize>,
}

/// Dead stores and storage-reuse opportunities.
#[derive(Debug, Clone, Default)]
pub struct LifetimeReport {
    /// Per-buffer lifetime spans, in buffer order.
    pub buffers: Vec<BufferLifetime>,
    /// Elements written whose value is never read afterwards (and is not
    /// an output or carried state).
    pub dead_store_elements: usize,
    /// Statements with at least one dead-store element.
    pub dead_store_stmts: usize,
    /// `Temp` buffers with a complete lifetime span.
    pub temp_buffers: usize,
    /// Storage slots a greedy lifetime packing of those temps needs.
    pub temp_slots: usize,
    /// Elements reclaimable by that packing (temp total minus slot total).
    pub reclaimable_elements: usize,
    /// `(earlier, later)` buffer-name pairs whose lifetimes are disjoint
    /// so the later could reuse the earlier's storage.
    pub reuse_pairs: Vec<(String, String)>,
}

// ---------------------------------------------------------------------------
// value-range analysis (forward, F201/F202/F203)
// ---------------------------------------------------------------------------

/// A closed interval of attainable values. Stored ends are finite except
/// for the explicit widening top [`ValRange::TOP`] = `[-inf, +inf]`:
/// genuinely overflowing results are degraded to a finite top at their
/// introduction point (with an `F203` flag), while ranges that blew up
/// only because the fixpoint had to *widen* are kept as `TOP` and
/// propagate silently — imprecision from widening is not a finding.
/// Either way the store stays `PartialEq`-comparable and free of NaN.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ValRange {
    lo: f64,
    hi: f64,
}

impl ValRange {
    /// The widening top: every value, no information.
    const TOP: ValRange = ValRange {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    fn point(v: f64) -> ValRange {
        ValRange { lo: v, hi: v }
    }

    /// True when either end is non-finite — the range descends from the
    /// widening top, so hazard flags against it would be pure noise.
    fn unbounded(self) -> bool {
        !self.lo.is_finite() || !self.hi.is_finite()
    }

    fn new(a: f64, b: f64) -> ValRange {
        ValRange {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    fn join(self, other: ValRange) -> ValRange {
        ValRange {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    fn contains_zero(self) -> bool {
        self.lo <= 0.0 && self.hi >= 0.0
    }
}

/// `0 * anything = 0`, so intervals with an infinite end never poison a
/// product into NaN.
fn zmul(x: f64, y: f64) -> f64 {
    if x == 0.0 || y == 0.0 {
        0.0
    } else {
        x * y
    }
}

fn vadd(a: ValRange, b: ValRange) -> ValRange {
    ValRange {
        lo: a.lo + b.lo,
        hi: a.hi + b.hi,
    }
}

fn vsub(a: ValRange, b: ValRange) -> ValRange {
    ValRange {
        lo: a.lo - b.hi,
        hi: a.hi - b.lo,
    }
}

fn vmul(a: ValRange, b: ValRange) -> ValRange {
    let p = [
        zmul(a.lo, b.lo),
        zmul(a.lo, b.hi),
        zmul(a.hi, b.lo),
        zmul(a.hi, b.hi),
    ];
    ValRange {
        lo: p.iter().cloned().fold(f64::INFINITY, f64::min),
        hi: p.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// Reciprocal of an interval that provably excludes zero.
fn vrecip(b: ValRange) -> ValRange {
    ValRange::new(1.0 / b.lo, 1.0 / b.hi)
}

/// Sum of between 1 and `n` terms, each in `r`.
fn vsum_up_to(n: usize, r: ValRange) -> ValRange {
    let n = n.max(1) as f64;
    ValRange {
        lo: r.lo.min(n * r.lo),
        hi: r.hi.max(n * r.hi),
    }
}

/// Sum of exactly `n` terms, each in `r`.
fn vsum_exact(n: usize, r: ValRange) -> ValRange {
    let n = n as f64;
    ValRange {
        lo: zmul(n, r.lo),
        hi: zmul(n, r.hi),
    }
}

struct IntervalAnalysis<'a> {
    opts: &'a AnalyzeOptions,
    /// When true, widen every store change straight to the widening
    /// bound — the post-budget convergence hammer.
    widen: bool,
    /// When true, emit diagnostics (the final reporting pass over the
    /// stabilized store).
    report: bool,
    /// Set by [`Self::src_range`]/[`Self::buf_range`] when an operand is
    /// widening-tainted (unbounded); consumed by [`Self::finish`] to
    /// propagate [`ValRange::TOP`] silently instead of flagging `F203`.
    taint: std::cell::Cell<bool>,
    flagged: BTreeSet<(usize, &'static str)>,
    diags: Vec<Diagnostic>,
}

impl IntervalAnalysis<'_> {
    fn unknown(&self) -> ValRange {
        ValRange {
            lo: -self.opts.input_bound,
            hi: self.opts.input_bound,
        }
    }

    fn top(&self) -> ValRange {
        ValRange {
            lo: -self.opts.widen_bound,
            hi: self.opts.widen_bound,
        }
    }

    fn flag(&mut self, program: &Program, i: usize, code: &'static str, buf: BufId, msg: String) {
        if !self.report || !self.flagged.insert((i, code)) {
            return;
        }
        let b = program.buffer(buf);
        self.diags.push(
            Diagnostic::new(code, msg)
                .with_block(b.name.clone())
                .with_location(format!("stmt {i} -> `{}`", b.name)),
        );
    }

    fn src_range(&self, state: &[Option<ValRange>], s: &Src) -> ValRange {
        match s {
            Src::Run(sl) | Src::Broadcast(sl) => self.buf_range(state, sl.buf),
            Src::Const(c) => ValRange::point(*c),
        }
    }

    fn buf_range(&self, state: &[Option<ValRange>], b: BufId) -> ValRange {
        let r = state[b.0].unwrap_or_else(|| self.unknown());
        if r.unbounded() {
            self.taint.set(true);
        }
        r
    }

    /// Transfer one unary op, flagging F201/F202 hazards against `dst`.
    fn unary(
        &mut self,
        program: &Program,
        i: usize,
        dst: BufId,
        op: &UnOp,
        r: ValRange,
    ) -> ValRange {
        match op {
            UnOp::Gain(g) => vmul(r, ValRange::point(*g)),
            UnOp::Bias(b) => vadd(r, ValRange::point(*b)),
            UnOp::Abs => {
                if r.lo >= 0.0 {
                    r
                } else if r.hi <= 0.0 {
                    ValRange::new(-r.hi, -r.lo)
                } else {
                    ValRange {
                        lo: 0.0,
                        hi: (-r.lo).max(r.hi),
                    }
                }
            }
            UnOp::Sqrt => {
                if r.lo < 0.0 && !r.unbounded() {
                    self.flag(
                        program,
                        i,
                        "F202",
                        dst,
                        format!(
                            "sqrt of a possibly negative operand: operand in [{}, {}]",
                            r.lo, r.hi
                        ),
                    );
                }
                ValRange {
                    lo: r.lo.max(0.0).sqrt(),
                    hi: r.hi.max(0.0).sqrt(),
                }
            }
            UnOp::Square => {
                let sq = vmul(r, r);
                if r.contains_zero() {
                    ValRange { lo: 0.0, hi: sq.hi }
                } else {
                    ValRange {
                        lo: sq.lo.max(0.0),
                        hi: sq.hi,
                    }
                }
            }
            UnOp::Exp => ValRange {
                lo: r.lo.exp(),
                hi: r.hi.exp(),
            },
            UnOp::Log => {
                if r.lo <= 0.0 && !r.unbounded() {
                    self.flag(
                        program,
                        i,
                        "F202",
                        dst,
                        format!(
                            "log of a possibly non-positive operand: operand in [{}, {}]",
                            r.lo, r.hi
                        ),
                    );
                }
                let tiny = f64::MIN_POSITIVE;
                ValRange::new(r.lo.max(tiny).ln(), r.hi.max(tiny).ln())
            }
            UnOp::Sin | UnOp::Cos => ValRange { lo: -1.0, hi: 1.0 },
            UnOp::Tanh => ValRange { lo: -1.0, hi: 1.0 },
            UnOp::Neg => ValRange::new(-r.hi, -r.lo),
            UnOp::Recip => {
                if r.contains_zero() {
                    if r.unbounded() {
                        return ValRange::TOP;
                    }
                    self.flag(
                        program,
                        i,
                        "F201",
                        dst,
                        format!(
                            "possible division by zero: reciprocal operand in [{}, {}]",
                            r.lo, r.hi
                        ),
                    );
                    self.top()
                } else {
                    vrecip(r)
                }
            }
            UnOp::Sat(lo, hi) => ValRange {
                lo: r.lo.clamp(*lo, *hi),
                hi: r.hi.clamp(*lo, *hi),
            },
            UnOp::Floor => ValRange {
                lo: r.lo.floor(),
                hi: r.hi.floor(),
            },
            UnOp::Ceil => ValRange {
                lo: r.lo.ceil(),
                hi: r.hi.ceil(),
            },
            UnOp::Round => ValRange {
                lo: r.lo.round(),
                hi: r.hi.round(),
            },
            UnOp::Trunc => ValRange {
                lo: r.lo.trunc(),
                hi: r.hi.trunc(),
            },
            UnOp::Not => ValRange { lo: 0.0, hi: 1.0 },
            UnOp::Id => r,
        }
    }

    fn binary(
        &mut self,
        program: &Program,
        i: usize,
        dst: BufId,
        op: &BinOp,
        a: ValRange,
        b: ValRange,
    ) -> ValRange {
        match op {
            BinOp::Add => vadd(a, b),
            BinOp::Sub => vsub(a, b),
            BinOp::Mul => vmul(a, b),
            BinOp::Div => {
                if b.contains_zero() {
                    if b.unbounded() {
                        return ValRange::TOP;
                    }
                    self.flag(
                        program,
                        i,
                        "F201",
                        dst,
                        format!("possible division by zero: divisor in [{}, {}]", b.lo, b.hi),
                    );
                    self.top()
                } else {
                    vmul(a, vrecip(b))
                }
            }
            BinOp::Min => ValRange {
                lo: a.lo.min(b.lo),
                hi: a.hi.min(b.hi),
            },
            BinOp::Max => ValRange {
                lo: a.lo.max(b.lo),
                hi: a.hi.max(b.hi),
            },
            BinOp::Mod => {
                if b.contains_zero() {
                    if b.unbounded() {
                        return ValRange::TOP;
                    }
                    self.flag(
                        program,
                        i,
                        "F201",
                        dst,
                        format!("possible division by zero: modulus in [{}, {}]", b.lo, b.hi),
                    );
                    self.top()
                } else {
                    // |fmod(a, b)| < max|b|, sign follows the dividend
                    let m = b.lo.abs().max(b.hi.abs());
                    ValRange {
                        lo: if a.lo >= 0.0 { 0.0 } else { -m },
                        hi: if a.hi <= 0.0 { 0.0 } else { m },
                    }
                }
            }
            BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::EqOp
            | BinOp::Ne
            | BinOp::And
            | BinOp::Or
            | BinOp::Xor => ValRange { lo: 0.0, hi: 1.0 },
        }
    }

    /// Store a computed range, flagging overflow-to-∞ at its introduction
    /// point: the result is non-finite although every operand range was
    /// bounded. Results that are unbounded only because an *operand*
    /// descended from the widening top propagate as [`ValRange::TOP`]
    /// silently — that imprecision is the analysis's, not the program's.
    fn finish(
        &mut self,
        program: &Program,
        i: usize,
        dst: BufId,
        r: ValRange,
        state: &mut [Option<ValRange>],
    ) {
        let tainted = self.taint.replace(false) || r == ValRange::TOP;
        let mut r = r;
        if r.unbounded() {
            if tainted {
                r = ValRange::TOP;
            } else {
                self.flag(
                    program,
                    i,
                    "F203",
                    dst,
                    "arithmetic may overflow to +/-inf (result bound is not finite)".to_string(),
                );
                r = self.top();
            }
        }
        let joined = match state[dst.0] {
            // weak update: other elements of the buffer keep old values
            Some(old) => old.join(r),
            None => r,
        };
        state[dst.0] = Some(if self.widen && state[dst.0] != Some(joined) {
            // jump straight to top: unbounded, but stable on the next pass
            ValRange::TOP
        } else {
            joined
        });
    }
}

impl Transfer for IntervalAnalysis<'_> {
    type State = Vec<Option<ValRange>>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&mut self, program: &Program) -> Self::State {
        program
            .buffers
            .iter()
            .map(|b| match &b.role {
                BufferRole::Input(_) => Some(self.unknown()),
                BufferRole::Const(data) | BufferRole::State(data) => {
                    let r = data.iter().fold(None::<ValRange>, |acc, &v| {
                        let p = ValRange::point(if v.is_finite() { v } else { 0.0 });
                        Some(match acc {
                            Some(a) => a.join(p),
                            None => p,
                        })
                    });
                    Some(r.unwrap_or(ValRange::point(0.0)))
                }
                BufferRole::Output(_) | BufferRole::Temp => None,
            })
            .collect()
    }

    fn transfer(&mut self, program: &Program, i: usize, stmt: &Stmt, state: &mut Self::State) {
        match stmt {
            Stmt::Unary { op, dst, src, .. } => {
                let r = self.src_range(state, src);
                let out = self.unary(program, i, dst.buf, op, r);
                self.finish(program, i, dst.buf, out, state);
            }
            Stmt::FusedUnary { ops, dst, src, .. } => {
                // ops are applied innermost-first
                let mut r = self.src_range(state, src);
                for op in ops {
                    r = self.unary(program, i, dst.buf, op, r);
                }
                self.finish(program, i, dst.buf, r, state);
            }
            Stmt::Binary { op, dst, a, b, .. } => {
                let ra = self.src_range(state, a);
                let rb = self.src_range(state, b);
                let out = self.binary(program, i, dst.buf, op, ra, rb);
                self.finish(program, i, dst.buf, out, state);
            }
            Stmt::Select { dst, a, b, .. } => {
                let out = self.src_range(state, a).join(self.src_range(state, b));
                self.finish(program, i, dst.buf, out, state);
            }
            Stmt::Copy { dst, src, .. } => {
                let out = self.buf_range(state, src.buf);
                self.finish(program, i, dst.buf, out, state);
            }
            Stmt::Fill { dst, value, .. } => {
                self.finish(program, i, dst.buf, ValRange::point(*value), state);
            }
            Stmt::Gather { dst, src, .. } => {
                let out = self.buf_range(state, *src);
                self.finish(program, i, dst.buf, out, state);
            }
            Stmt::DynGather { dst, src, .. } => {
                let out = self.buf_range(state, *src);
                self.finish(program, i, dst.buf, out, state);
            }
            Stmt::Reduce { op, dst, src, len } => {
                let r = self.buf_range(state, src.buf);
                let out = match op {
                    ReduceOp::Sum => vsum_exact(*len, r),
                    ReduceOp::Mean | ReduceOp::Min | ReduceOp::Max => r,
                };
                self.finish(program, i, dst.buf, out, state);
            }
            Stmt::Dot { dst, a, b, len } => {
                let p = vmul(self.buf_range(state, a.buf), self.buf_range(state, b.buf));
                self.finish(program, i, dst.buf, vsum_exact(*len, p), state);
            }
            Stmt::Conv {
                dst,
                u,
                u_len,
                v,
                v_len,
                ..
            } => {
                let p = vmul(self.buf_range(state, *u), self.buf_range(state, *v));
                let terms = (*u_len).min(*v_len);
                self.finish(program, i, *dst, vsum_up_to(terms, p), state);
            }
            Stmt::Fir {
                dst,
                src,
                coeffs,
                taps,
                ..
            } => {
                let p = vmul(self.buf_range(state, *src), self.buf_range(state, *coeffs));
                self.finish(program, i, *dst, vsum_up_to(*taps, p), state);
            }
            Stmt::MovingAvg { dst, src, .. } => {
                // mean of up to `window` source values, with a partial
                // leading window: always within [min(lo, 0), max(hi, 0)]
                let r = self.buf_range(state, *src);
                let out = ValRange {
                    lo: r.lo.min(0.0),
                    hi: r.hi.max(0.0),
                };
                self.finish(program, i, *dst, out, state);
            }
            Stmt::CumSum { dst, src, k_end } => {
                let r = self.buf_range(state, *src);
                self.finish(program, i, *dst, vsum_up_to(*k_end, r), state);
            }
            Stmt::Diff { dst, src, .. } => {
                let r = self.buf_range(state, *src);
                self.finish(program, i, *dst, vsub(r, r), state);
            }
            Stmt::MatMul { dst, a, b, k, .. } => {
                let p = vmul(self.buf_range(state, *a), self.buf_range(state, *b));
                self.finish(program, i, *dst, vsum_exact(*k, p), state);
            }
            Stmt::Transpose { dst, src, .. } => {
                let out = self.buf_range(state, *src);
                self.finish(program, i, *dst, out, state);
            }
            Stmt::StateLoad { dst, state: st, .. } => {
                let out = self.buf_range(state, *st);
                self.finish(program, i, *dst, out, state);
            }
            Stmt::StateStore { state: st, src, .. } => {
                let out = self.buf_range(state, *src);
                self.finish(program, i, *st, out, state);
            }
            Stmt::WindowedReuse {
                dst,
                src,
                state: st,
                window,
                scale,
                ..
            } => {
                let r = self.buf_range(state, *src);
                let sum = vsum_up_to(*window, r);
                let out = match scale {
                    WindowScale::Div(d) => {
                        if *d == 0.0 {
                            self.flag(
                                program,
                                i,
                                "F201",
                                *dst,
                                "possible division by zero: windowed-reuse scale divisor is 0"
                                    .to_string(),
                            );
                            self.top()
                        } else {
                            vmul(sum, ValRange::point(1.0 / *d))
                        }
                    }
                    WindowScale::Mul(c) => vmul(sum, ValRange::point(*c)),
                };
                self.finish(program, i, *dst, out, state);
                // the ring buffer retains raw source values
                self.finish(program, i, *st, r, state);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// residual-redundancy analysis (backward demand, F204)
// ---------------------------------------------------------------------------

struct DemandAnalysis<'a> {
    opts: &'a AnalyzeOptions,
    accs: &'a [Result<StmtAccess, Malformed>],
    /// Base demand re-imposed at every invocation boundary: output ranges
    /// from Algorithm 1 plus full state extents (read next step).
    base: Vec<IndexSet>,
    report: bool,
    residual_elements: usize,
    residual_stmts: usize,
    diags: Vec<Diagnostic>,
}

impl DemandAnalysis<'_> {
    fn top(program: &Program) -> Vec<IndexSet> {
        program
            .buffers
            .iter()
            .map(|b| IndexSet::full(b.len))
            .collect()
    }
}

impl Transfer for DemandAnalysis<'_> {
    type State = Vec<IndexSet>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&mut self, _program: &Program) -> Self::State {
        self.base.clone()
    }

    fn invocation_boundary(&mut self, _program: &Program, state: &mut Self::State) {
        for (d, b) in state.iter_mut().zip(&self.base) {
            *d = d.union(b);
        }
    }

    fn transfer(&mut self, program: &Program, i: usize, _stmt: &Stmt, state: &mut Self::State) {
        let stmt = &program.stmts[i];
        let acc = match &self.accs[i] {
            Ok(acc) => acc,
            Err(_) => {
                // a malformed statement's effect is unknowable; go to top
                // so nothing upstream is falsely reported residual
                *state = Self::top(program);
                return;
            }
        };
        // demand on each written element, captured before the kill
        let mut live = false;
        let mut demanded_dst = IndexSet::new();
        for w in &acc.writes {
            let d = state[w.buf.0].intersect(&w.set);
            if !d.is_empty() {
                live = true;
            }
            if w.what == "dst" {
                demanded_dst = demanded_dst.union(&d);
            }
            if self.report {
                // the lowering deliberately bridges demand gaps up to
                // `coalesce_gap` elements; forgive the same slop here
                let forgiven = state[w.buf.0].coalesce(self.opts.demand_slop);
                let residual = w.set.difference(&forgiven);
                if !residual.is_empty() {
                    let b = program.buffer(w.buf);
                    self.residual_elements += residual.count();
                    self.residual_stmts += 1;
                    self.diags.push(
                        Diagnostic::new(
                            "F204",
                            format!(
                                "residual redundancy: {} element(s) of `{}` written at stmt {} are never demanded by any output",
                                residual.count(),
                                b.name,
                                i
                            ),
                        )
                        .with_block(b.name.clone())
                        .with_location(format!("stmt {i} -> `{}`{:?}", b.name, residual.intervals()))
                        .with_help(
                            "the FRODO generator restricts every statement to its calculation range; residual elements are wasted work",
                        ),
                    );
                }
            }
        }
        // kill: these elements are now produced
        for w in &acc.writes {
            state[w.buf.0] = state[w.buf.0].difference(&w.set);
        }
        if !live {
            return; // fully dead statement: demands nothing
        }
        // gen: demand the reads. Elementwise statements map the demanded
        // destination elements exactly; everything else conservatively
        // demands its full read footprint (over-demand can only hide
        // residual, never fabricate it).
        match stmt {
            Stmt::Unary { dst, src, .. } | Stmt::FusedUnary { dst, src, .. } => {
                demand_src(state, src, &demanded_dst, dst.off);
            }
            Stmt::Binary { dst, a, b, .. } => {
                demand_src(state, a, &demanded_dst, dst.off);
                demand_src(state, b, &demanded_dst, dst.off);
            }
            Stmt::Select {
                dst, ctrl, a, b, ..
            } => {
                demand_src(state, ctrl, &demanded_dst, dst.off);
                demand_src(state, a, &demanded_dst, dst.off);
                demand_src(state, b, &demanded_dst, dst.off);
            }
            Stmt::Copy { dst, src, .. } => {
                let shift = src.off as isize - dst.off as isize;
                let want = demanded_dst.shift(shift);
                state[src.buf.0] = state[src.buf.0].union(&want);
            }
            Stmt::Fill { .. } => {}
            Stmt::Gather { dst, src, indices } => {
                let want =
                    IndexSet::from_indices(demanded_dst.iter().map(|p| indices[p - dst.off]));
                state[src.0] = state[src.0].union(&want);
            }
            _ => {
                for r in &acc.reads {
                    state[r.buf.0] = state[r.buf.0].union(&r.set);
                }
            }
        }
    }
}

/// Demand the source elements that produce `demanded` destination
/// elements of an elementwise statement whose destination starts at
/// `dst_off`.
fn demand_src(state: &mut [IndexSet], s: &Src, demanded: &IndexSet, dst_off: usize) {
    match s {
        Src::Run(sl) => {
            let shift = sl.off as isize - dst_off as isize;
            state[sl.buf.0] = state[sl.buf.0].union(&demanded.shift(shift));
        }
        Src::Broadcast(sl) => {
            if !demanded.is_empty() {
                state[sl.buf.0] = state[sl.buf.0].union(&IndexSet::point(sl.off));
            }
        }
        Src::Const(_) => {}
    }
}

// ---------------------------------------------------------------------------
// parallel-schedule race checker (F301/F302)
// ---------------------------------------------------------------------------

/// One sequential strand of a parallel schedule: statements that run in
/// program order on a single worker.
#[derive(Debug, Clone)]
pub struct Task {
    /// Statement indices, ascending.
    pub stmts: Vec<usize>,
}

/// One synchronization region: all tasks in a unit may run concurrently;
/// units are separated by barriers and execute in order.
#[derive(Debug, Clone)]
pub struct Unit {
    /// Concurrent tasks of this unit.
    pub tasks: Vec<Task>,
}

/// A claimed parallel execution schedule over a program's statements.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Barrier-separated units, in execution order.
    pub units: Vec<Unit>,
}

impl Schedule {
    /// Maximum number of concurrent tasks in any unit.
    pub fn width(&self) -> usize {
        self.units.iter().map(|u| u.tasks.len()).max().unwrap_or(0)
    }
}

/// Pairs of statements whose element footprints conflict (write/write or
/// read/write overlap on at least one element), with a cheap buffer-id
/// prefilter. Malformed statements conflict with everything.
pub fn conflict_pairs(accs: &[Result<StmtAccess, Malformed>]) -> Vec<(usize, usize)> {
    let bufs: Vec<Option<Vec<usize>>> = accs
        .iter()
        .map(|a| {
            a.as_ref().ok().map(|acc| {
                let mut ids: Vec<usize> = acc
                    .reads
                    .iter()
                    .chain(&acc.writes)
                    .map(|x| x.buf.0)
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            })
        })
        .collect();
    let mut pairs = Vec::new();
    for j in 1..accs.len() {
        for i in 0..j {
            let touch_common = match (&bufs[i], &bufs[j]) {
                (Some(a), Some(b)) => a.iter().any(|x| b.binary_search(x).is_ok()),
                _ => true, // malformed: assume the worst
            };
            if !touch_common {
                continue;
            }
            let conflicting = match (&accs[i], &accs[j]) {
                (Ok(a), Ok(b)) => a.conflicts_with(b),
                _ => true,
            };
            if conflicting {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

/// Derives the finest barrier schedule consistent with the element-level
/// conflict relation: each statement is its own task, placed in the
/// earliest unit after every conflicting predecessor. This refines the
/// model's block-level `analysis_levels` to statement granularity — and
/// because tasks are singletons it is the most adversarial concurrency
/// claim: if this schedule verifies race-free, any coarser grouping of
/// the same units does too.
pub fn level_schedule(pairs: &[(usize, usize)], n: usize) -> Schedule {
    let mut level = vec![0usize; n];
    for &(i, j) in pairs {
        level[j] = level[j].max(level[i] + 1);
    }
    let depth = level.iter().max().map_or(0, |&d| d + 1);
    let mut units: Vec<Unit> = (0..depth).map(|_| Unit { tasks: vec![] }).collect();
    for (s, &l) in level.iter().enumerate() {
        units[l].tasks.push(Task { stmts: vec![s] });
    }
    Schedule { units }
}

/// Verifies a claimed schedule against the element-level conflict
/// relation: exact coverage, program order within tasks, conflicting
/// pairs never concurrent (same unit, different tasks → `F301`) and
/// never reordered across units (`F302`). Returns the findings plus the
/// number of conflicting pairs checked.
pub fn check_schedule(
    program: &Program,
    schedule: &Schedule,
    accs: &[Result<StmtAccess, Malformed>],
    pairs: &[(usize, usize)],
) -> (Vec<Diagnostic>, usize) {
    let n = program.stmts.len();
    let mut diags = Vec::new();
    let mut unit_of = vec![usize::MAX; n];
    let mut task_of = vec![usize::MAX; n];
    let mut seen = vec![0usize; n];
    for (ui, unit) in schedule.units.iter().enumerate() {
        for (ti, task) in unit.tasks.iter().enumerate() {
            if task.stmts.windows(2).any(|w| w[0] >= w[1]) {
                diags.push(Diagnostic::new(
                    "F302",
                    format!(
                        "malformed parallel schedule: task {ti} of unit {ui} does not keep program order"
                    ),
                ));
            }
            for &s in &task.stmts {
                if s >= n {
                    diags.push(Diagnostic::new(
                        "F302",
                        format!("malformed parallel schedule: task {ti} of unit {ui} schedules nonexistent stmt {s}"),
                    ));
                    continue;
                }
                seen[s] += 1;
                unit_of[s] = ui;
                task_of[s] = ti;
            }
        }
    }
    for (s, &c) in seen.iter().enumerate() {
        if c != 1 {
            diags.push(Diagnostic::new(
                "F302",
                format!(
                    "malformed parallel schedule: stmt {s} is scheduled {c} times (want exactly 1)"
                ),
            ));
        }
    }
    let mut checked = 0usize;
    for &(i, j) in pairs {
        if seen[i] != 1 || seen[j] != 1 {
            continue; // already reported as a coverage defect
        }
        checked += 1;
        if unit_of[i] == unit_of[j] {
            if task_of[i] != task_of[j] {
                let (buf, overlap) = first_overlap(program, accs, i, j);
                diags.push(
                    Diagnostic::new(
                        "F301",
                        format!(
                            "data race: stmts {i} and {j} run concurrently in unit {} but both access `{buf}`{overlap}",
                            unit_of[i]
                        ),
                    )
                    .with_block(buf)
                    .with_location(format!("unit {} tasks {} and {}", unit_of[i], task_of[i], task_of[j])),
                );
            }
        } else if (unit_of[i] < unit_of[j]) != (i < j) {
            diags.push(Diagnostic::new(
                "F302",
                format!(
                    "malformed parallel schedule: dependent stmts {i} and {j} are barrier-ordered against their program order (units {} and {})",
                    unit_of[i], unit_of[j]
                ),
            ));
        }
    }
    (diags, checked)
}

/// Names the first buffer two conflicting statements overlap on, with
/// the overlapping elements, for `F301` provenance.
fn first_overlap(
    program: &Program,
    accs: &[Result<StmtAccess, Malformed>],
    i: usize,
    j: usize,
) -> (String, String) {
    if let (Ok(a), Ok(b)) = (&accs[i], &accs[j]) {
        let sides = [
            (&a.writes, &b.writes),
            (&a.writes, &b.reads),
            (&a.reads, &b.writes),
        ];
        for (xs, ys) in sides {
            for x in xs {
                for y in ys {
                    if x.buf == y.buf {
                        let ov = x.set.intersect(&y.set);
                        if !ov.is_empty() {
                            return (
                                program.buffer(x.buf).name.clone(),
                                format!(" {:?}", ov.intervals()),
                            );
                        }
                    }
                }
            }
        }
    }
    ("<unknown>".to_string(), String::new())
}

/// Validates the threaded-emission chunk partition (exact in-order
/// coverage of the statement list) and counts conflicting pairs that
/// straddle a chunk boundary. Chunked emission only partitions *text
/// generation*, so straddling pairs are a statistic, not a race — but a
/// broken partition would drop or duplicate statements (`F302`).
pub fn check_emission_chunks(
    n: usize,
    threads: usize,
    pairs: &[(usize, usize)],
) -> (Vec<Diagnostic>, usize, usize) {
    let chunks = emission_chunks(n, threads);
    let mut diags = Vec::new();
    let mut next = 0usize;
    for &(lo, hi) in &chunks {
        if lo != next || hi < lo {
            diags.push(Diagnostic::new(
                "F302",
                format!(
                    "malformed emission partition: chunk [{lo}, {hi}) does not continue at stmt {next}"
                ),
            ));
        }
        next = hi;
    }
    if next != n {
        diags.push(Diagnostic::new(
            "F302",
            format!("malformed emission partition: chunks cover [0, {next}) of {n} stmts"),
        ));
    }
    let chunk_of = |s: usize| chunks.iter().position(|&(lo, hi)| s >= lo && s < hi);
    let cross = pairs
        .iter()
        .filter(|&&(i, j)| chunk_of(i) != chunk_of(j))
        .count();
    (diags, chunks.len(), cross)
}

// ---------------------------------------------------------------------------
// buffer-lifetime analysis (report only)
// ---------------------------------------------------------------------------

fn role_label(role: &BufferRole) -> &'static str {
    match role {
        BufferRole::Input(_) => "input",
        BufferRole::Output(_) => "output",
        BufferRole::Temp => "temp",
        BufferRole::Const(_) => "const",
        BufferRole::State(_) => "state",
    }
}

/// Computes lifetime spans, dead stores and a greedy storage packing of
/// `Temp` buffers.
fn lifetime_report(
    program: &Program,
    demands: &[OutputDemand],
    accs: &[Result<StmtAccess, Malformed>],
    slop: usize,
) -> LifetimeReport {
    let nb = program.buffers.len();
    let mut first_write = vec![None::<usize>; nb];
    let mut last_read = vec![None::<usize>; nb];
    for (i, acc) in accs.iter().enumerate() {
        let Ok(acc) = acc else { continue };
        for w in &acc.writes {
            first_write[w.buf.0].get_or_insert(i);
        }
        for r in &acc.reads {
            last_read[r.buf.0] = Some(i);
        }
    }
    // backward liveness for dead stores: outputs and state are live at
    // the end of the invocation
    let mut live: Vec<IndexSet> = program
        .buffers
        .iter()
        .enumerate()
        .map(|(bi, b)| match &b.role {
            BufferRole::Output(idx) => demands
                .iter()
                .find(|d| d.index == *idx)
                .map(|d| d.range.clone())
                .unwrap_or_else(|| IndexSet::full(b.len)),
            BufferRole::State(_) => IndexSet::full(b.len),
            _ => {
                let _ = bi;
                IndexSet::new()
            }
        })
        .collect();
    let mut dead_store_elements = 0usize;
    let mut dead_store_stmts = 0usize;
    for (i, acc) in accs.iter().enumerate().rev() {
        let Ok(acc) = acc else { continue };
        let mut stmt_dead = 0usize;
        for w in &acc.writes {
            // forgive writes inside slop-bridged gaps of live elements:
            // coalesced lowering writes them on purpose (a contiguous run
            // is cheaper than a strided one), mirroring the residual
            // detector's demand_slop
            stmt_dead += w.set.difference(&live[w.buf.0].coalesce(slop)).count();
            live[w.buf.0] = live[w.buf.0].difference(&w.set);
        }
        for r in &acc.reads {
            live[r.buf.0] = live[r.buf.0].union(&r.set);
        }
        if stmt_dead > 0 {
            dead_store_elements += stmt_dead;
            dead_store_stmts += 1;
        }
        let _ = i;
    }
    // greedy slot packing of temps by [first_write, last_read] span
    let mut temps: Vec<usize> = (0..nb)
        .filter(|&b| {
            matches!(program.buffers[b].role, BufferRole::Temp)
                && first_write[b].is_some()
                && last_read[b].is_some()
        })
        .collect();
    temps.sort_by_key(|&b| (first_write[b], last_read[b], b));
    let mut slots: Vec<(usize, usize, usize)> = Vec::new(); // (last end, max len, last buf)
    let mut reuse_pairs = Vec::new();
    for &b in &temps {
        let (fw, lr) = (first_write[b].unwrap(), last_read[b].unwrap());
        if let Some(slot) = slots.iter_mut().find(|s| s.0 < fw) {
            reuse_pairs.push((
                program.buffers[slot.2].name.clone(),
                program.buffers[b].name.clone(),
            ));
            slot.0 = lr;
            slot.1 = slot.1.max(program.buffers[b].len);
            slot.2 = b;
        } else {
            slots.push((lr, program.buffers[b].len, b));
        }
    }
    let temp_total: usize = temps.iter().map(|&b| program.buffers[b].len).sum();
    let slot_total: usize = slots.iter().map(|s| s.1).sum();
    LifetimeReport {
        buffers: program
            .buffers
            .iter()
            .enumerate()
            .map(|(bi, b)| BufferLifetime {
                name: b.name.clone(),
                len: b.len,
                role: role_label(&b.role),
                first_write: first_write[bi],
                last_read: last_read[bi],
            })
            .collect(),
        dead_store_elements,
        dead_store_stmts,
        temp_buffers: temps.len(),
        temp_slots: slots.len(),
        reclaimable_elements: temp_total.saturating_sub(slot_total),
        reuse_pairs,
    }
}

// ---------------------------------------------------------------------------
// orchestration
// ---------------------------------------------------------------------------

/// Runs all four analyses over a compiled model: output demands come
/// from Algorithm 1's calculation ranges, and the race check's region
/// statistic from the model's block-level analysis levels.
pub fn analyze_compile(
    analysis: &Analysis,
    program: &Program,
    opts: &AnalyzeOptions,
) -> AnalyzeReport {
    let demands = output_demands(analysis, program);
    let region_levels = analysis
        .dfg()
        .analysis_levels()
        .map(|l| l.len())
        .unwrap_or(0);
    analyze_inner(program, &demands, region_levels, opts)
}

/// Runs all four analyses over a bare program with explicit output
/// demands (an empty slice demands every output's full extent).
pub fn analyze_program(
    program: &Program,
    demands: &[OutputDemand],
    opts: &AnalyzeOptions,
) -> AnalyzeReport {
    let full: Vec<OutputDemand>;
    let demands = if demands.is_empty() {
        full = program
            .outputs()
            .iter()
            .map(|&(index, buf)| OutputDemand {
                index,
                range: IndexSet::full(program.buffer(buf).len),
                block: None,
            })
            .collect();
        &full
    } else {
        demands
    };
    analyze_inner(program, demands, 0, opts)
}

fn analyze_inner(
    program: &Program,
    demands: &[OutputDemand],
    region_levels: usize,
    opts: &AnalyzeOptions,
) -> AnalyzeReport {
    let accs: Vec<Result<StmtAccess, Malformed>> = program
        .stmts
        .iter()
        .map(|s| stmt_access(program, s))
        .collect();

    // 1. value ranges: fixpoint, widen if needed, then one reporting pass
    let mut ia = IntervalAnalysis {
        opts,
        widen: false,
        report: false,
        taint: std::cell::Cell::new(false),
        flagged: BTreeSet::new(),
        diags: Vec::new(),
    };
    let mut fix = run_to_fixpoint(program, &mut ia, opts.max_passes);
    let mut interval_passes = fix.passes;
    if !fix.converged {
        ia.widen = true;
        let rerun = run_to_fixpoint(program, &mut ia, 3);
        interval_passes += rerun.passes;
        fix = rerun;
        ia.widen = false;
    }
    ia.report = true;
    let mut final_state = fix.entry.clone();
    run_one_pass(program, &mut ia, &mut final_state);
    let mut diagnostics = std::mem::take(&mut ia.diags);
    let value_ranges: Vec<(String, f64, f64)> = program
        .buffers
        .iter()
        .zip(&final_state)
        .filter_map(|(b, r)| r.map(|r| (b.name.clone(), r.lo, r.hi)))
        .collect();

    // 2. residual redundancy: backward demand fixpoint, then report
    let base: Vec<IndexSet> = program
        .buffers
        .iter()
        .map(|b| match &b.role {
            BufferRole::Output(idx) => demands
                .iter()
                .find(|d| d.index == *idx)
                .map(|d| d.range.clone())
                .unwrap_or_else(|| IndexSet::full(b.len)),
            BufferRole::State(_) => IndexSet::full(b.len),
            _ => IndexSet::new(),
        })
        .collect();
    let mut da = DemandAnalysis {
        opts,
        accs: &accs,
        base,
        report: false,
        residual_elements: 0,
        residual_stmts: 0,
        diags: Vec::new(),
    };
    let dfix = run_to_fixpoint(program, &mut da, opts.max_passes.max(4));
    da.report = true;
    let mut demand_state = dfix.entry.clone();
    run_one_pass(program, &mut da, &mut demand_state);
    // the reporting sweep runs backward: restore statement order
    da.diags.reverse();
    let residual_elements = da.residual_elements;
    let residual_stmts = da.residual_stmts;
    diagnostics.extend(da.diags);

    // 3. schedule races: derive the finest schedule, verify it, and
    // validate the threaded-emission partition
    let pairs = conflict_pairs(&accs);
    let schedule = level_schedule(&pairs, program.stmts.len());
    let (race_diags, schedule_pairs) = check_schedule(program, &schedule, &accs, &pairs);
    diagnostics.extend(race_diags);
    let (chunk_diags, chunk_count, chunk_cross_conflicts) =
        check_emission_chunks(program.stmts.len(), opts.emit_threads, &pairs);
    diagnostics.extend(chunk_diags);

    // 4. lifetimes
    let lifetime = lifetime_report(program, demands, &accs, opts.demand_slop);

    AnalyzeReport {
        diagnostics,
        stmts: program.stmts.len(),
        buffers: program.buffers.len(),
        interval_passes,
        interval_converged: fix.converged,
        value_ranges,
        residual_elements,
        residual_stmts,
        schedule_units: schedule.units.len(),
        schedule_width: schedule.width(),
        schedule_pairs,
        region_levels,
        chunk_count,
        chunk_cross_conflicts,
        lifetime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_codegen::lir::{Buffer, Slice};
    use frodo_codegen::{generate, GeneratorStyle};
    use frodo_model::{Block, BlockKind, Model, SelectorMode, Tensor};
    use frodo_ranges::Shape;

    fn buf(name: &str, len: usize, role: BufferRole) -> Buffer {
        Buffer {
            name: name.into(),
            len,
            role,
        }
    }

    fn program(buffers: Vec<Buffer>, stmts: Vec<Stmt>) -> Program {
        Program {
            name: "t".into(),
            style: GeneratorStyle::Frodo,
            buffers,
            stmts,
        }
    }

    fn codes(report: &AnalyzeReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn division_by_possible_zero_is_flagged_f201() {
        // out0 = in0 / t0 where t0 = in0 - in0 could be exactly 0
        let p = program(
            vec![
                buf("in0", 4, BufferRole::Input(0)),
                buf("t0", 4, BufferRole::Temp),
                buf("out0", 4, BufferRole::Output(0)),
            ],
            vec![
                Stmt::Fill {
                    dst: Slice::new(BufId(1), 0),
                    value: 0.0,
                    len: 4,
                },
                Stmt::Binary {
                    op: BinOp::Div,
                    dst: Slice::new(BufId(2), 0),
                    a: Src::Run(Slice::new(BufId(0), 0)),
                    b: Src::Run(Slice::new(BufId(1), 0)),
                    len: 4,
                },
            ],
        );
        let r = analyze_program(&p, &[], &AnalyzeOptions::default());
        assert!(codes(&r).contains(&"F201"), "got {:?}", codes(&r));
        assert!(r.race_free());
    }

    #[test]
    fn log_of_negative_constant_is_flagged_f202() {
        let p = program(
            vec![
                buf("c", 4, BufferRole::Const(vec![-1.0; 4])),
                buf("out0", 4, BufferRole::Output(0)),
            ],
            vec![Stmt::Unary {
                op: UnOp::Log,
                dst: Slice::new(BufId(1), 0),
                src: Src::Run(Slice::new(BufId(0), 0)),
                len: 4,
            }],
        );
        let r = analyze_program(&p, &[], &AnalyzeOptions::default());
        assert_eq!(codes(&r), vec!["F202"]);
    }

    #[test]
    fn overflow_to_inf_is_flagged_f203_once() {
        let p = program(
            vec![
                buf("c", 2, BufferRole::Const(vec![1.0e308; 2])),
                buf("out0", 2, BufferRole::Output(0)),
            ],
            vec![Stmt::Binary {
                op: BinOp::Mul,
                dst: Slice::new(BufId(1), 0),
                a: Src::Run(Slice::new(BufId(0), 0)),
                b: Src::Run(Slice::new(BufId(0), 0)),
                len: 2,
            }],
        );
        let r = analyze_program(&p, &[], &AnalyzeOptions::default());
        assert_eq!(codes(&r), vec!["F203"]);
    }

    #[test]
    fn square_then_sqrt_chain_is_clean() {
        // sqrt(moving-average(x^2)) — the benchmark RMS idiom — must not
        // trip F202: Square proves nonnegativity
        let p = program(
            vec![
                buf("in0", 8, BufferRole::Input(0)),
                buf("sq", 8, BufferRole::Temp),
                buf("avg", 8, BufferRole::Temp),
                buf("out0", 8, BufferRole::Output(0)),
            ],
            vec![
                Stmt::Unary {
                    op: UnOp::Square,
                    dst: Slice::new(BufId(1), 0),
                    src: Src::Run(Slice::new(BufId(0), 0)),
                    len: 8,
                },
                Stmt::MovingAvg {
                    dst: BufId(2),
                    src: BufId(1),
                    window: 4,
                    k0: 0,
                    k1: 8,
                },
                Stmt::Unary {
                    op: UnOp::Sqrt,
                    dst: Slice::new(BufId(3), 0),
                    src: Src::Run(Slice::new(BufId(2), 0)),
                    len: 8,
                },
            ],
        );
        let r = analyze_program(&p, &[], &AnalyzeOptions::default());
        assert!(r.is_clean(), "unexpected findings: {:?}", r.diagnostics);
        assert!(r.interval_converged);
    }

    #[test]
    fn figure1_style_overcomputation_is_residual_f204() {
        // a full 60-element convolution result of which only [5, 55) is
        // consumed: the paper's Figure 1 redundancy, 10 residual elements
        let p = program(
            vec![
                buf("u", 50, BufferRole::Input(0)),
                buf("v", 11, BufferRole::Const(vec![0.1; 11])),
                buf("conv", 60, BufferRole::Temp),
                buf("out0", 50, BufferRole::Output(0)),
            ],
            vec![
                Stmt::Conv {
                    dst: BufId(2),
                    u: BufId(0),
                    u_len: 50,
                    v: BufId(1),
                    v_len: 11,
                    k0: 0,
                    k1: 60,
                    style: frodo_codegen::lir::ConvStyle::Branchy,
                },
                Stmt::Copy {
                    dst: Slice::new(BufId(3), 0),
                    src: Slice::new(BufId(2), 5),
                    len: 50,
                },
            ],
        );
        let r = analyze_program(&p, &[], &AnalyzeOptions::default());
        assert_eq!(r.residual_elements, 10);
        assert_eq!(r.residual_stmts, 1);
        assert_eq!(codes(&r), vec!["F204"]);
        let d = &r.diagnostics[0];
        assert_eq!(d.block.as_deref(), Some("conv"));
    }

    #[test]
    fn frodo_style_conv_pipeline_has_no_residual_but_simulink_does() {
        let mut m = Model::new("fig1");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: Tensor::vector(vec![0.1; 11]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        let analysis = Analysis::run(m).unwrap();
        let opts = AnalyzeOptions::default();

        let frodo = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let r = analyze_compile(&analysis, &frodo, &opts);
        assert_eq!(
            r.residual_elements, 0,
            "frodo output over-computes: {:?}",
            r.diagnostics
        );
        assert!(r.is_clean(), "unexpected findings: {:?}", r.diagnostics);
        assert!(r.race_free());
        assert!(r.region_levels > 0);

        let baseline = generate(
            &analysis,
            GeneratorStyle::SimulinkCoder,
            &frodo_obs::Trace::noop(),
        );
        let rb = analyze_compile(&analysis, &baseline, &opts);
        assert!(
            rb.residual_elements > 0,
            "baseline should over-compute the convolution tails"
        );
        assert!(rb.race_free(), "over-computation is not a race");
    }

    #[test]
    fn same_unit_overlapping_writes_are_a_race_f301() {
        let p = program(
            vec![
                buf("in0", 8, BufferRole::Input(0)),
                buf("out0", 8, BufferRole::Output(0)),
            ],
            vec![
                Stmt::Fill {
                    dst: Slice::new(BufId(1), 0),
                    value: 1.0,
                    len: 6,
                },
                Stmt::Fill {
                    dst: Slice::new(BufId(1), 4),
                    value: 2.0,
                    len: 4,
                },
            ],
        );
        let accs: Vec<_> = p.stmts.iter().map(|s| stmt_access(&p, s)).collect();
        let pairs = conflict_pairs(&accs);
        assert_eq!(pairs, vec![(0, 1)]);
        // claim both statements run concurrently: the checker must refute
        let claimed = Schedule {
            units: vec![Unit {
                tasks: vec![Task { stmts: vec![0] }, Task { stmts: vec![1] }],
            }],
        };
        let (diags, checked) = check_schedule(&p, &claimed, &accs, &pairs);
        assert_eq!(checked, 1);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "F301");
        assert!(diags[0].message.contains("out0"), "{}", diags[0].message);
        // the derived schedule serializes them and verifies race-free
        let derived = level_schedule(&pairs, p.stmts.len());
        assert_eq!(derived.units.len(), 2);
        let (diags, _) = check_schedule(&p, &derived, &accs, &pairs);
        assert!(diags.is_empty());
        // and the full analysis concurs
        let r = analyze_program(&p, &[], &AnalyzeOptions::default());
        assert!(r.race_free());
    }

    #[test]
    fn incomplete_or_reordered_schedules_are_f302() {
        let p = program(
            vec![
                buf("in0", 4, BufferRole::Input(0)),
                buf("out0", 4, BufferRole::Output(0)),
            ],
            vec![
                Stmt::Copy {
                    dst: Slice::new(BufId(1), 0),
                    src: Slice::new(BufId(0), 0),
                    len: 4,
                },
                Stmt::Unary {
                    op: UnOp::Gain(2.0),
                    dst: Slice::new(BufId(1), 0),
                    src: Src::Run(Slice::new(BufId(1), 0)),
                    len: 4,
                },
            ],
        );
        let accs: Vec<_> = p.stmts.iter().map(|s| stmt_access(&p, s)).collect();
        let pairs = conflict_pairs(&accs);
        // missing stmt 1
        let missing = Schedule {
            units: vec![Unit {
                tasks: vec![Task { stmts: vec![0] }],
            }],
        };
        let (diags, _) = check_schedule(&p, &missing, &accs, &pairs);
        assert!(diags.iter().any(|d| d.code == "F302"));
        // dependence order inverted across units
        let inverted = Schedule {
            units: vec![
                Unit {
                    tasks: vec![Task { stmts: vec![1] }],
                },
                Unit {
                    tasks: vec![Task { stmts: vec![0] }],
                },
            ],
        };
        let (diags, _) = check_schedule(&p, &inverted, &accs, &pairs);
        assert!(diags.iter().any(|d| d.code == "F302"));
    }

    #[test]
    fn dead_store_and_temp_reuse_are_reported() {
        let p = program(
            vec![
                buf("in0", 8, BufferRole::Input(0)),
                buf("t0", 8, BufferRole::Temp),
                buf("t1", 8, BufferRole::Temp),
                buf("dead", 8, BufferRole::Temp),
                buf("out0", 8, BufferRole::Output(0)),
            ],
            vec![
                Stmt::Copy {
                    dst: Slice::new(BufId(1), 0),
                    src: Slice::new(BufId(0), 0),
                    len: 8,
                },
                // never read again: all 8 elements are dead stores
                Stmt::Fill {
                    dst: Slice::new(BufId(3), 0),
                    value: 0.0,
                    len: 8,
                },
                Stmt::Unary {
                    op: UnOp::Abs,
                    dst: Slice::new(BufId(2), 0),
                    src: Src::Run(Slice::new(BufId(1), 0)),
                    len: 8,
                },
                Stmt::Copy {
                    dst: Slice::new(BufId(4), 0),
                    src: Slice::new(BufId(2), 0),
                    len: 8,
                },
            ],
        );
        let r = analyze_program(&p, &[], &AnalyzeOptions::default());
        assert!(r.lifetime.dead_store_elements >= 8);
        assert_eq!(r.lifetime.temp_buffers, 2); // dead has no last_read
                                                // t1 is first written at stmt 2, t0 last read at stmt 2: the
                                                // spans overlap, so both need slots; no reclaim here
        assert_eq!(r.lifetime.temp_slots, 2);
        let lt = &r.lifetime.buffers[1];
        assert_eq!((lt.first_write, lt.last_read), (Some(0), Some(2)));
    }

    #[test]
    fn reports_are_deterministic() {
        let p = program(
            vec![
                buf("c", 4, BufferRole::Const(vec![-1.0; 4])),
                buf("t", 4, BufferRole::Temp),
                buf("out0", 4, BufferRole::Output(0)),
            ],
            vec![
                Stmt::Unary {
                    op: UnOp::Log,
                    dst: Slice::new(BufId(1), 0),
                    src: Src::Run(Slice::new(BufId(0), 0)),
                    len: 4,
                },
                Stmt::Unary {
                    op: UnOp::Sqrt,
                    dst: Slice::new(BufId(2), 0),
                    src: Src::Run(Slice::new(BufId(1), 0)),
                    len: 4,
                },
            ],
        );
        let a = analyze_program(&p, &[], &AnalyzeOptions::default());
        let b = analyze_program(&p, &[], &AnalyzeOptions::default());
        let fmt = |r: &AnalyzeReport| {
            r.diagnostics
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(fmt(&a), fmt(&b));
        assert!(!a.diagnostics.is_empty());
    }

    #[test]
    fn state_feedback_converges_or_widens_without_panicking() {
        // state = state * 1.5 + input: diverges, must widen and settle
        let p = program(
            vec![
                buf("in0", 4, BufferRole::Input(0)),
                buf("acc", 4, BufferRole::State(vec![1.0; 4])),
                buf("work", 4, BufferRole::Temp),
                buf("out0", 4, BufferRole::Output(0)),
            ],
            vec![
                Stmt::StateLoad {
                    dst: BufId(2),
                    state: BufId(1),
                    len: 4,
                },
                Stmt::Unary {
                    op: UnOp::Gain(1.5),
                    dst: Slice::new(BufId(2), 0),
                    src: Src::Run(Slice::new(BufId(2), 0)),
                    len: 4,
                },
                Stmt::StateStore {
                    state: BufId(1),
                    src: BufId(2),
                    len: 4,
                },
                Stmt::Copy {
                    dst: Slice::new(BufId(3), 0),
                    src: Slice::new(BufId(2), 0),
                    len: 4,
                },
            ],
        );
        let r = analyze_program(&p, &[], &AnalyzeOptions::default());
        assert!(r.interval_converged, "widening must force convergence");
        let acc = r.value_ranges.iter().find(|v| v.0 == "acc").unwrap();
        assert!(acc.2 >= 1.0e6, "feedback should have widened: {acc:?}");
    }
}
