//! Layer 2: range-soundness checking of the lowered statement IR.
//!
//! The checker abstract-interprets a [`Program`] in schedule order with one
//! [`IndexSet`] of *written elements* per buffer. Input, constant, and
//! state buffers start fully written; temporaries and outputs start empty.
//! Each statement contributes a read set and a write set mirroring the
//! exact element accesses of the reference VM in `frodo-sim`:
//!
//! * every read index must lie inside its buffer's declared extent
//!   (**F102**, no out-of-bounds access),
//! * every read element must already be in the written set (**F101**, no
//!   uninitialized reads),
//! * after the last statement, the written set of each model output must
//!   *equal* the demanded range Algorithm 1 anchored at the corresponding
//!   `Outport` — missing elements are under-computation (**F103**), extra
//!   elements are over-computation (**F104**).
//!
//! Because redundancy elimination is exactly "shrink write sets without
//! changing demanded outputs", a pass of this checker is a per-compilation
//! certificate that the elimination was sound for *this* model — the
//! translation-validation posture, rather than trusting the optimizer.

use crate::diag::Diagnostic;
use frodo_codegen::access::{stmt_access, Access};
use frodo_codegen::lir::{BufId, BufferRole, Program, Stmt};
use frodo_core::Analysis;
use frodo_ranges::IndexSet;

/// The demanded range of one model output, as anchored by Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputDemand {
    /// Output index (`BufferRole::Output(index)`).
    pub index: usize,
    /// Elements the model must produce.
    pub range: IndexSet,
    /// The `Outport` block's name, when known (names the block in
    /// mismatch diagnostics).
    pub block: Option<String>,
}

/// The checker's verdict plus the counters the `verify` trace stage
/// records.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SoundnessReport {
    /// Every finding, in program order (statement findings first, then
    /// output-coverage findings by output index).
    pub diagnostics: Vec<Diagnostic>,
    /// Statements interpreted.
    pub stmts_checked: usize,
    /// Buffers tracked.
    pub buffers_checked: usize,
    /// Output demands compared.
    pub outputs_checked: usize,
}

impl SoundnessReport {
    /// Whether the program passed (no findings at all — the checker only
    /// emits errors).
    pub fn is_sound(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Checks a compiled [`Analysis`] + [`Program`] pair: derives each model
/// output's demanded range the way Algorithm 1 anchors it (the `Outport`'s
/// full input extent) and runs the written-set interpretation across **two
/// consecutive invocations** (see [`check_program_invocations`]) — the
/// second invocation proves that persistent state handed to the next step
/// was fully refreshed by the first, which is what makes rewrites carrying
/// inter-invocation state (`Stmt::WindowedReuse`) sound to deploy.
pub fn check_compile(analysis: &Analysis, program: &Program) -> SoundnessReport {
    check_program_invocations(program, &output_demands(analysis, program), 2)
}

/// Derives each model output's demanded range the way Algorithm 1 anchors
/// it: the `Outport`'s full input extent. Shared between the soundness
/// checker and the dataflow analyses in [`crate::analyze`].
pub fn output_demands(analysis: &Analysis, program: &Program) -> Vec<OutputDemand> {
    let model = analysis.dfg().model();
    let shapes = analysis.dfg().shapes();
    program
        .outputs()
        .iter()
        .map(|&(index, _)| match model.outport(index) {
            Some(block) => OutputDemand {
                index,
                range: IndexSet::full(shapes.input(block, 0).numel()),
                block: Some(model.block(block).name.clone()),
            },
            None => OutputDemand {
                index,
                range: IndexSet::new(),
                block: None,
            },
        })
        .collect()
}

/// Checks a [`Program`] against explicit output demands over a single
/// invocation. Tests inject partial or shifted demands here to prove the
/// checker rejects corrupted calculation ranges.
pub fn check_program(program: &Program, demands: &[OutputDemand]) -> SoundnessReport {
    check_program_invocations(program, demands, 1)
}

/// [`check_program`] across `invocations` consecutive invocations.
///
/// The first invocation starts from the usual abstract state (inputs,
/// constants, and state buffers fully written). At each invocation
/// boundary, temporaries and outputs reset to empty and inputs/constants
/// to full — but each **state** buffer's written set becomes exactly the
/// elements the previous invocation wrote to it: stale initial values are
/// treated as poison, so a transform that fails to fully refresh the state
/// it hands to the next step surfaces as an uninitialized read (F101)
/// in the second invocation. Output coverage (F103/F104) is judged once,
/// after the final invocation.
pub fn check_program_invocations(
    program: &Program,
    demands: &[OutputDemand],
    invocations: usize,
) -> SoundnessReport {
    let mut ck = Checker::new(program);
    for inv in 0..invocations.max(1) {
        if inv > 0 {
            ck.next_invocation();
        }
        for (i, stmt) in program.stmts.iter().enumerate() {
            ck.step(i, stmt);
        }
    }
    ck.check_outputs(demands);
    ck.report
}

struct Checker<'p> {
    program: &'p Program,
    written: Vec<IndexSet>,
    /// Elements written during the current invocation only (feeds the
    /// state carry-over at invocation boundaries).
    inv_writes: Vec<IndexSet>,
    report: SoundnessReport,
}

impl<'p> Checker<'p> {
    fn new(program: &'p Program) -> Self {
        let written: Vec<IndexSet> = program
            .buffers
            .iter()
            .map(|b| match b.role {
                // values that exist before the first step
                BufferRole::Input(_) | BufferRole::Const(_) | BufferRole::State(_) => {
                    IndexSet::full(b.len)
                }
                BufferRole::Temp | BufferRole::Output(_) => IndexSet::new(),
            })
            .collect();
        let buffers_checked = written.len();
        Checker {
            program,
            inv_writes: vec![IndexSet::new(); written.len()],
            written,
            report: SoundnessReport {
                buffers_checked,
                ..SoundnessReport::default()
            },
        }
    }

    /// Re-arms the written sets for the next consecutive invocation: a
    /// state buffer keeps only what this invocation actually wrote to it
    /// (its pre-first-step initial values are spent), everything else
    /// resets to its start-of-step state.
    fn next_invocation(&mut self) {
        for (i, b) in self.program.buffers.iter().enumerate() {
            self.written[i] = match b.role {
                BufferRole::Input(_) | BufferRole::Const(_) => IndexSet::full(b.len),
                BufferRole::Temp | BufferRole::Output(_) => IndexSet::new(),
                BufferRole::State(_) => self.inv_writes[i].clone(),
            };
            self.inv_writes[i] = IndexSet::new();
        }
    }

    fn buf_name(&self, buf: BufId) -> &str {
        &self.program.buffer(buf).name
    }

    fn diag(&mut self, code: &'static str, stmt: usize, buf: BufId, message: String) {
        let d = Diagnostic::new(code, message)
            .with_block(self.buf_name(buf).to_string())
            .with_location(format!("stmt {stmt}"));
        self.report.diagnostics.push(d);
    }

    fn malformed(&mut self, stmt: usize, buf: BufId, reason: &str) {
        self.diag("F105", stmt, buf, format!("malformed statement: {reason}"));
    }

    /// Interprets one statement: derives its read/write sets from the
    /// shared accessor ([`frodo_codegen::access::stmt_access`], mirroring
    /// the `frodo-sim` VM element accesses exactly) and checks them.
    fn step(&mut self, i: usize, stmt: &Stmt) {
        self.report.stmts_checked += 1;
        let acc = match stmt_access(self.program, stmt) {
            Ok(acc) => acc,
            Err(m) => return self.malformed(i, m.buf, m.reason),
        };
        for r in &acc.reads {
            self.check_read(i, r);
        }
        for w in &acc.writes {
            self.check_write(i, w);
        }
    }

    /// F102 + F101 for one read access.
    fn check_read(&mut self, stmt: usize, a: &Access) {
        let len = self.program.buffer(a.buf).len;
        let oob = a.set.difference(&IndexSet::full(len));
        if let Some(iv) = oob.intervals().first().copied() {
            self.diag(
                "F102",
                stmt,
                a.buf,
                format!(
                    "{} read of `{}` [{}, {}) exceeds its extent {len}",
                    a.what,
                    self.buf_name(a.buf),
                    iv.start,
                    iv.end
                ),
            );
        }
        let uninit = a
            .set
            .intersect(&IndexSet::full(len))
            .difference(&self.written[a.buf.0]);
        if let Some(iv) = uninit.intervals().first().copied() {
            self.diag(
                "F101",
                stmt,
                a.buf,
                format!(
                    "{} read of `{}` [{}, {}) before any statement writes it",
                    a.what,
                    self.buf_name(a.buf),
                    iv.start,
                    iv.end
                ),
            );
        }
    }

    /// F102 for one write access, then records the elements as written.
    fn check_write(&mut self, stmt: usize, a: &Access) {
        let len = self.program.buffer(a.buf).len;
        let oob = a.set.difference(&IndexSet::full(len));
        if let Some(iv) = oob.intervals().first().copied() {
            self.diag(
                "F102",
                stmt,
                a.buf,
                format!(
                    "{} write of `{}` [{}, {}) exceeds its extent {len}",
                    a.what,
                    self.buf_name(a.buf),
                    iv.start,
                    iv.end
                ),
            );
        }
        let w = a.set.intersect(&IndexSet::full(len));
        self.written[a.buf.0] = self.written[a.buf.0].union(&w);
        self.inv_writes[a.buf.0] = self.inv_writes[a.buf.0].union(&w);
    }

    /// F103/F104: every output's final written set must equal its demand.
    fn check_outputs(&mut self, demands: &[OutputDemand]) {
        for &(index, buf) in &self.program.outputs() {
            let Some(demand) = demands.iter().find(|d| d.index == index) else {
                continue;
            };
            self.report.outputs_checked += 1;
            let written = &self.written[buf.0];
            let missing = demand.range.difference(written);
            let extra = written.difference(&demand.range);
            let block = demand
                .block
                .clone()
                .unwrap_or_else(|| self.buf_name(buf).to_string());
            for (code, set, verb) in [
                ("F103", &missing, "demanded but never written"),
                ("F104", &extra, "written beyond the demanded range"),
            ] {
                for iv in set.intervals() {
                    let d = Diagnostic::new(
                        code,
                        format!(
                            "output {index} (`{}`, buffer `{}`): elements [{}, {}) {verb}",
                            block,
                            self.buf_name(buf),
                            iv.start,
                            iv.end
                        ),
                    )
                    .with_block(block.clone())
                    .with_location(format!("buffer {}", self.buf_name(buf)));
                    self.report.diagnostics.push(d);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_codegen::lir::{Buffer, Slice, Src, Stmt, UnOp};
    use frodo_codegen::GeneratorStyle;

    fn buffer(name: &str, len: usize, role: BufferRole) -> Buffer {
        Buffer {
            name: name.into(),
            len,
            role,
        }
    }

    /// in(8) -> gain -> out(8), computed in full.
    fn straight_program() -> Program {
        Program {
            name: "t".into(),
            style: GeneratorStyle::Frodo,
            buffers: vec![
                buffer("in0", 8, BufferRole::Input(0)),
                buffer("g", 8, BufferRole::Temp),
                buffer("out0", 8, BufferRole::Output(0)),
            ],
            stmts: vec![
                Stmt::Unary {
                    op: UnOp::Gain(2.0),
                    dst: Slice::new(BufId(1), 0),
                    src: Src::Run(Slice::new(BufId(0), 0)),
                    len: 8,
                },
                Stmt::Copy {
                    dst: Slice::new(BufId(2), 0),
                    src: Slice::new(BufId(1), 0),
                    len: 8,
                },
            ],
        }
    }

    fn full_demand() -> Vec<OutputDemand> {
        vec![OutputDemand {
            index: 0,
            range: IndexSet::full(8),
            block: Some("out".into()),
        }]
    }

    #[test]
    fn sound_program_passes() {
        let report = check_program(&straight_program(), &full_demand());
        assert!(report.is_sound(), "{:?}", report.diagnostics);
        assert_eq!(report.stmts_checked, 2);
        assert_eq!(report.buffers_checked, 3);
        assert_eq!(report.outputs_checked, 1);
    }

    #[test]
    fn shrunk_run_is_caught_as_uninitialized_read() {
        let mut p = straight_program();
        // corrupt the gain's calculation range: [0,8) -> [0,5)
        if let Stmt::Unary { len, .. } = &mut p.stmts[0] {
            *len = 5;
        }
        let report = check_program(&p, &full_demand());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "F101")
            .expect("uninitialized read");
        assert_eq!(d.block.as_deref(), Some("g"));
        assert!(d.message.contains("[5, 8)"), "{}", d.message);
    }

    #[test]
    fn shrunk_output_copy_is_under_computation() {
        let mut p = straight_program();
        if let Stmt::Copy { len, .. } = &mut p.stmts[1] {
            *len = 6;
        }
        let report = check_program(&p, &full_demand());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "F103")
            .expect("under-computation");
        assert_eq!(d.block.as_deref(), Some("out"));
        assert!(d.message.contains("buffer `out0`"), "{}", d.message);
        assert!(d.message.contains("[6, 8)"), "{}", d.message);
    }

    #[test]
    fn partial_demand_flags_over_computation() {
        let demands = vec![OutputDemand {
            index: 0,
            range: IndexSet::from_range(0, 4),
            block: Some("out".into()),
        }];
        let report = check_program(&straight_program(), &demands);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "F104")
            .expect("over-computation");
        assert!(d.message.contains("[4, 8)"), "{}", d.message);
    }

    /// in(8) -> state round-trip -> out(8), with the state store writing
    /// only `store_len` of the 8 state elements.
    fn stateful_program(store_len: usize) -> Program {
        Program {
            name: "st".into(),
            style: GeneratorStyle::Frodo,
            buffers: vec![
                buffer("in0", 8, BufferRole::Input(0)),
                buffer("st", 8, BufferRole::State(vec![0.0; 8])),
                buffer("out0", 8, BufferRole::Output(0)),
            ],
            stmts: vec![
                Stmt::Copy {
                    dst: Slice::new(BufId(2), 0),
                    src: Slice::new(BufId(1), 0),
                    len: 8,
                },
                Stmt::StateStore {
                    state: BufId(1),
                    src: BufId(0),
                    len: store_len,
                },
            ],
        }
    }

    #[test]
    fn partially_refreshed_state_is_caught_on_the_second_invocation() {
        let p = stateful_program(4);
        // one invocation: the initial state values cover the read
        assert!(check_program(&p, &full_demand()).is_sound());
        // two invocations: stale initial values are spent, so the copy
        // reads state elements [4, 8) nothing refreshed
        let report = check_program_invocations(&p, &full_demand(), 2);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "F101")
            .expect("stale state read");
        assert!(d.message.contains("[4, 8)"), "{}", d.message);
    }

    #[test]
    fn fully_refreshed_state_passes_across_invocations() {
        let report = check_program_invocations(&stateful_program(8), &full_demand(), 3);
        assert!(report.is_sound(), "{:?}", report.diagnostics);
        assert_eq!(report.stmts_checked, 6);
        assert_eq!(report.outputs_checked, 1);
    }

    #[test]
    fn windowed_reuse_rewrite_is_sound_across_invocations() {
        use frodo_codegen::lir::{ConvStyle, WindowScale};
        // a Conv run [5, 55) over in(50) * uniform(11), rewritten to
        // rolling form with an 11-deep ring buffer
        let reuse = Stmt::WindowedReuse {
            dst: BufId(2),
            src: BufId(0),
            src_len: 50,
            state: BufId(3),
            window: 11,
            scale: WindowScale::Mul(0.1),
            k0: 5,
            k1: 55,
        };
        let conv = Stmt::Conv {
            dst: BufId(2),
            u: BufId(0),
            u_len: 50,
            v: BufId(1),
            v_len: 11,
            k0: 5,
            k1: 55,
            style: ConvStyle::Tight,
        };
        let program = |stmt: Stmt| Program {
            name: "wr".into(),
            style: GeneratorStyle::Frodo,
            buffers: vec![
                buffer("in0", 50, BufferRole::Input(0)),
                buffer("k", 11, BufferRole::Const(vec![0.1; 11])),
                buffer("out0", 60, BufferRole::Output(0)),
                buffer("out0_win0", 11, BufferRole::State(vec![0.0; 11])),
            ],
            stmts: vec![stmt],
        };
        let demands = vec![OutputDemand {
            index: 0,
            range: IndexSet::from_range(5, 55),
            block: Some("out".into()),
        }];
        // the rewrite writes the same output run as the Conv it replaced,
        // and its state store survives the invocation-boundary carry-over
        for p in [program(reuse), program(conv)] {
            let report = check_program_invocations(&p, &demands, 2);
            assert!(report.is_sound(), "{:?}", report.diagnostics);
        }
    }

    #[test]
    fn windowed_reuse_past_the_source_extent_is_malformed() {
        use frodo_codegen::lir::WindowScale;
        let p = Program {
            name: "bad".into(),
            style: GeneratorStyle::Frodo,
            buffers: vec![
                buffer("in0", 50, BufferRole::Input(0)),
                buffer("out0", 200, BufferRole::Output(0)),
                buffer("win", 11, BufferRole::State(vec![0.0; 11])),
            ],
            stmts: vec![Stmt::WindowedReuse {
                dst: BufId(1),
                src: BufId(0),
                src_len: 50,
                state: BufId(2),
                window: 11,
                // every window in this run starts past the source's end
                k0: 120,
                k1: 130,
                scale: WindowScale::Div(11.0),
            }],
        };
        let report = check_program(&p, &[]);
        assert!(report.diagnostics.iter().any(|d| d.code == "F105"));
    }

    #[test]
    fn oob_read_is_f102() {
        let mut p = straight_program();
        if let Stmt::Unary { src, .. } = &mut p.stmts[0] {
            *src = Src::Run(Slice::new(BufId(0), 3));
        }
        let report = check_program(&p, &full_demand());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "F102")
            .expect("out of bounds");
        assert_eq!(d.block.as_deref(), Some("in0"));
        assert!(d.message.contains("[8, 11)"), "{}", d.message);
    }

    #[test]
    fn degenerate_statement_is_f105() {
        let mut p = straight_program();
        if let Stmt::Unary { len, .. } = &mut p.stmts[0] {
            *len = 0;
        }
        let report = check_program(&p, &full_demand());
        assert!(report.diagnostics.iter().any(|d| d.code == "F105"));
    }

    #[test]
    fn conv_window_reads_match_the_vm() {
        // u(8) * v(3): outputs [4, 9) read u[2..8] and v[0..3]
        let p = Program {
            name: "c".into(),
            style: GeneratorStyle::Frodo,
            buffers: vec![
                buffer("u", 8, BufferRole::Input(0)),
                buffer("v", 3, BufferRole::Const(vec![1.0; 3])),
                buffer("out0", 10, BufferRole::Output(0)),
            ],
            stmts: vec![Stmt::Conv {
                dst: BufId(2),
                u: BufId(0),
                u_len: 8,
                v: BufId(1),
                v_len: 3,
                k0: 4,
                k1: 9,
                style: frodo_codegen::lir::ConvStyle::Tight,
            }],
        };
        let demands = vec![OutputDemand {
            index: 0,
            range: IndexSet::from_range(4, 9),
            block: None,
        }];
        let report = check_program(&p, &demands);
        assert!(report.is_sound(), "{:?}", report.diagnostics);
    }

    #[test]
    fn end_to_end_compile_is_certified() {
        use frodo_model::{Block, BlockKind, Model, SelectorMode};
        use frodo_ranges::Shape;
        let mut m = Model::new("fig1");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(50),
            },
        ));
        let k = m.add(Block::new(
            "k",
            BlockKind::Constant {
                value: frodo_model::Tensor::vector(vec![0.1; 11]),
            },
        ));
        let c = m.add(Block::new("conv", BlockKind::Convolution));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 5, end: 55 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, c, 0).unwrap();
        m.connect(k, 0, c, 1).unwrap();
        m.connect(c, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        let analysis = Analysis::run(m).unwrap();
        let program =
            frodo_codegen::generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let report = check_compile(&analysis, &program);
        assert!(report.is_sound(), "{:?}", report.diagnostics);
        assert!(report.outputs_checked == 1);
    }

    /// Property tests (gated: the `proptest` crate is not vendored, so the
    /// default offline build compiles these out; re-add the dev-dependency
    /// and run `cargo test --features proptest` to enable them).
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Shrinking any statement run of the straight-line program by
            /// any non-trivial amount must be rejected (as an
            /// uninitialized read downstream or as under-computation at
            /// the output).
            #[test]
            fn prop_every_injected_under_computation_is_caught(
                which in 0usize..2,
                cut in 1usize..8,
            ) {
                let mut p = straight_program();
                match &mut p.stmts[which] {
                    Stmt::Unary { len, .. } | Stmt::Copy { len, .. } => *len -= cut,
                    _ => unreachable!(),
                }
                let report = check_program(&p, &full_demand());
                prop_assert!(!report.is_sound());
                prop_assert!(report
                    .diagnostics
                    .iter()
                    .any(|d| d.code == "F101" || d.code == "F103" || d.code == "F105"));
            }

            /// Shifting the demanded range of the output must be rejected
            /// in both directions (missing prefix = F103, surplus = F104).
            #[test]
            fn prop_shifted_demands_are_caught(shift in 1usize..8) {
                let demands = vec![OutputDemand {
                    index: 0,
                    range: IndexSet::from_range(shift, 8 + shift),
                    block: None,
                }];
                let report = check_program(&straight_program(), &demands);
                prop_assert!(report.diagnostics.iter().any(|d| d.code == "F103"));
                prop_assert!(report.diagnostics.iter().any(|d| d.code == "F104"));
            }
        }
    }
}
