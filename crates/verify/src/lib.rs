//! Static analysis and translation validation for the FRODO pipeline.
//!
//! Three layers, all producing structured [`Diagnostic`]s with stable
//! `F0xx`–`F3xx` codes (see [`RULES`]) and human / JSON / SARIF renderers:
//!
//! 1. **Model lint** ([`lint`]) — structural checks over the flattened
//!    model and its dataflow graph: unconnected or multiply-driven inputs,
//!    shape mismatches, truncation parameters outside their input extents,
//!    delay-free cycles, and dead blocks whose calculation range from
//!    Algorithm 1 is empty.
//! 2. **Range soundness** ([`check_compile`] / [`check_program`]) — an
//!    element-level def-use abstract interpretation of the lowered
//!    statement IR using the [`frodo_ranges::IndexSet`] algebra: no
//!    uninitialized reads, no out-of-bounds indices, and each model
//!    output's final written set *exactly equal* to the range Algorithm 1
//!    demanded. A clean pass is a per-compilation certificate that
//!    redundancy elimination did not change observable outputs.
//! 3. **Dataflow analyses** ([`analyze_compile`] / [`analyze_program`],
//!    the opt-in `analyze` pipeline stage) — a generic forward/backward
//!    [`dataflow`] engine with four clients: per-buffer value intervals
//!    flagging numeric hazards (`F201`–`F203`), a backward-demand
//!    residual-redundancy detector (`F204`), a parallel-schedule race
//!    checker proving or refuting race freedom at element granularity
//!    (`F301`/`F302`), and a buffer-lifetime / storage-reuse report.
//!
//! # Example
//!
//! ```
//! use frodo_core::Analysis;
//! use frodo_codegen::{generate, GeneratorStyle};
//! use frodo_model::{Block, BlockKind, Model};
//! use frodo_ranges::Shape;
//!
//! # fn main() -> Result<(), frodo_model::ModelError> {
//! let mut m = Model::new("demo");
//! let i = m.add(Block::new("in", BlockKind::Inport { index: 0, shape: Shape::Vector(8) }));
//! let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
//! let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
//! m.connect(i, 0, g, 0)?;
//! m.connect(g, 0, o, 0)?;
//!
//! assert!(frodo_verify::lint(&m).is_empty());
//!
//! let analysis = Analysis::run(m)?;
//! let program = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
//! let report = frodo_verify::check_compile(&analysis, &program);
//! assert!(report.is_sound());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod dataflow;
mod diag;
mod lint;
mod soundness;

pub use analyze::{
    analyze_compile, analyze_program, check_emission_chunks, check_schedule, conflict_pairs,
    level_schedule, AnalyzeOptions, AnalyzeReport, BufferLifetime, LifetimeReport, Schedule, Task,
    Unit,
};
pub use diag::{
    from_model_error, render_human, render_json, render_sarif, rule, Diagnostic, Rule, Severity,
    RULES,
};
pub use lint::lint;
pub use soundness::{
    check_compile, check_program, check_program_invocations, output_demands, OutputDemand,
    SoundnessReport,
};
