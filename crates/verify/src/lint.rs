//! Layer 1: structural model lint over `frodo-model` + `frodo-graph`.
//!
//! The linter flattens the model and then checks, in order: connectivity
//! (unconnected / multiply-driven inputs, dangling outputs), shape
//! consistency and truncation-parameter extents, delay-free cycles, and —
//! when the model is otherwise clean — dead blocks whose calculation range
//! from Algorithm 1 is empty.

use crate::diag::{from_model_error, Diagnostic, Severity};
use frodo_core::Analysis;
use frodo_graph::Dfg;
use frodo_model::{BlockKind, InPort, Model, OutPort, SelectorMode, ShapeTable};

/// Lints a model and returns every finding, errors first, in block order
/// within each severity.
pub fn lint(model: &Model) -> Vec<Diagnostic> {
    let flat = match model.flattened(&frodo_obs::Trace::noop()) {
        Ok(f) => f,
        Err(e) => return vec![from_model_error(Some(model), &e)],
    };
    let mut diags = Vec::new();
    lint_connectivity(&flat, &mut diags);
    match flat.infer_shapes() {
        Err(e) => diags.push(from_model_error(Some(&flat), &e)),
        Ok(shapes) => {
            lint_truncation_params(&flat, &shapes, &mut diags);
            if diags.iter().all(|d| d.severity != Severity::Error) {
                lint_semantics(&flat, &shapes, &mut diags);
            }
        }
    }
    diags.sort_by_key(|d| std::cmp::Reverse(d.severity));
    diags
}

/// Unconnected inputs (F001), multiply-driven inputs (F002), dangling
/// outputs (F007).
fn lint_connectivity(flat: &Model, diags: &mut Vec<Diagnostic>) {
    for (id, block) in flat.iter() {
        for port in 0..block.kind.num_inputs() {
            let p = InPort::new(id, port);
            let driving = flat.connections().iter().filter(|c| c.to == p).count();
            if driving == 0 {
                diags.push(
                    Diagnostic::new(
                        "F001",
                        format!(
                            "input port {port} of `{}` has no incoming connection",
                            block.name
                        ),
                    )
                    .with_block(&block.name)
                    .with_location(p.to_string())
                    .with_help("connect a source block or remove the consumer"),
                );
            } else if driving > 1 {
                diags.push(
                    Diagnostic::new(
                        "F002",
                        format!(
                            "input port {port} of `{}` is driven by {driving} connections",
                            block.name
                        ),
                    )
                    .with_block(&block.name)
                    .with_location(p.to_string()),
                );
            }
        }
        for port in 0..block.kind.num_outputs() {
            let p = OutPort::new(id, port);
            if flat.consumers_of(p).is_empty() {
                diags.push(
                    Diagnostic::new(
                        "F007",
                        format!("output port {port} of `{}` drives no consumer", block.name),
                    )
                    .with_block(&block.name)
                    .with_location(p.to_string())
                    .with_help("route it to an Outport or a Terminator, or delete the block"),
                );
            }
        }
    }
}

/// Selector / Submatrix / Assignment parameters that index outside their
/// input extents (F004). Shape inference rejects most of these on its
/// first error; this pass reports *all* of them when shapes are available.
fn lint_truncation_params(flat: &Model, shapes: &ShapeTable, diags: &mut Vec<Diagnostic>) {
    for (id, block) in flat.iter() {
        let in_shape = match shapes.try_input(id, 0) {
            Some(s) => s,
            None => continue,
        };
        let n = in_shape.numel();
        let mut bad = |message: String, help: &str| {
            diags.push(
                Diagnostic::new("F004", message)
                    .with_block(&block.name)
                    .with_location(InPort::new(id, 0).to_string())
                    .with_help(help),
            );
        };
        match &block.kind {
            BlockKind::Selector { mode } => match mode {
                SelectorMode::StartEnd { start, end } => {
                    if start >= end {
                        bad(
                            format!("selector range [{start}, {end}) is empty"),
                            "use start < end",
                        );
                    } else if *end > n {
                        bad(
                            format!("selector end {end} exceeds input length {n}"),
                            "shrink the selection to the input extent",
                        );
                    }
                }
                SelectorMode::IndexVector(idx) => {
                    for i in idx.iter().filter(|i| **i >= n) {
                        bad(
                            format!("selector index {i} exceeds input length {n}"),
                            "remove indices past the input extent",
                        );
                    }
                }
                SelectorMode::IndexPort { .. } => {}
            },
            BlockKind::Submatrix {
                row_start,
                row_end,
                col_start,
                col_end,
            } => {
                let (rows, cols) = (in_shape.rows(), in_shape.cols());
                if row_start >= row_end || col_start >= col_end {
                    bad(
                        format!(
                            "submatrix region [{row_start}, {row_end})×[{col_start}, {col_end}) is empty"
                        ),
                        "use start < end on both axes",
                    );
                } else if *row_end > rows || *col_end > cols {
                    bad(
                        format!(
                            "submatrix region [{row_start}, {row_end})×[{col_start}, {col_end}) \
                             exceeds the {rows}×{cols} input"
                        ),
                        "shrink the region to the input extent",
                    );
                }
            }
            BlockKind::Assignment { start } => {
                if let Some(patch) = shapes.try_input(id, 1) {
                    let p = patch.numel();
                    if start + p > n {
                        bad(
                            format!(
                                "assignment writes [{start}, {}) into a length-{n} base",
                                start + p
                            ),
                            "move the start or shrink the replacement signal",
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

/// Delay-free cycles (F005) via graph construction, then dead blocks with
/// empty calculation ranges (F006) via Algorithm 1. Only reached when the
/// model has no structural errors.
fn lint_semantics(flat: &Model, shapes: &ShapeTable, diags: &mut Vec<Diagnostic>) {
    match Dfg::new(flat.clone(), &frodo_obs::Trace::noop()) {
        Err(e) => {
            diags.push(from_model_error(Some(flat), &e));
            return;
        }
        Ok(dfg) => {
            if let Err(e) = dfg.schedule() {
                diags.push(from_model_error(Some(flat), &e));
                return;
            }
        }
    }
    if let Ok(analysis) = Analysis::run(flat.clone()) {
        let mut dead: Vec<&OutPort> = analysis
            .ranges()
            .iter()
            .filter(|(port, range)| {
                range.is_empty() && shapes.output(port.block, port.port).numel() > 0
            })
            .map(|(port, _)| port)
            .collect();
        dead.sort();
        for port in dead {
            let name = &flat.block(port.block).name;
            diags.push(
                Diagnostic::new(
                    "F006",
                    format!(
                        "block `{name}` output {} is never demanded: its calculation range is empty",
                        port.port
                    ),
                )
                .with_block(name)
                .with_location(port.to_string())
                .with_help("the block is dead code; redundancy elimination removes it entirely"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_model::{Block, Model, SelectorMode, Tensor};
    use frodo_ranges::Shape;

    fn clean_model() -> Model {
        let mut m = Model::new("clean");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(8),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, o, 0).unwrap();
        m
    }

    #[test]
    fn clean_model_lints_clean() {
        assert!(lint(&clean_model()).is_empty());
    }

    #[test]
    fn dangling_input_is_f001() {
        let mut m = clean_model();
        let a = m.add(Block::new("abs", BlockKind::Abs));
        let t = m.add(Block::new("t", BlockKind::Terminator));
        m.connect(a, 0, t, 0).unwrap();
        let diags = lint(&m);
        assert!(diags
            .iter()
            .any(|d| d.code == "F001" && d.block.as_deref() == Some("abs")));
    }

    #[test]
    fn dangling_output_is_a_warning() {
        let mut m = clean_model();
        let i2 = m.add(Block::new(
            "in2",
            BlockKind::Inport {
                index: 1,
                shape: Shape::Vector(4),
            },
        ));
        let _ = i2;
        let diags = lint(&m);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "F007");
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn oob_selector_is_f004() {
        let mut m = Model::new("oob");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(8),
            },
        ));
        let s = m.add(Block::new(
            "sel",
            BlockKind::Selector {
                mode: SelectorMode::StartEnd { start: 4, end: 20 },
            },
        ));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, s, 0).unwrap();
        m.connect(s, 0, o, 0).unwrap();
        let diags = lint(&m);
        assert!(
            diags.iter().any(|d| d.code == "F004"
                && d.block.as_deref() == Some("sel")
                && d.message.contains("20")),
            "{diags:?}"
        );
    }

    #[test]
    fn delay_free_cycle_is_f005() {
        let mut m = Model::new("loop");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(4),
            },
        ));
        let a = m.add(Block::new("a", BlockKind::Add));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 0.5 }));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, a, 0).unwrap();
        m.connect(g, 0, a, 1).unwrap();
        m.connect(a, 0, g, 0).unwrap();
        m.connect(a, 0, o, 0).unwrap();
        let diags = lint(&m);
        assert!(diags.iter().any(|d| d.code == "F005"), "{diags:?}");
    }

    #[test]
    fn dead_constant_feeding_a_terminator_is_f006() {
        let mut m = clean_model();
        let c = m.add(Block::new(
            "unused",
            BlockKind::Constant {
                value: Tensor::vector(vec![1.0; 4]),
            },
        ));
        let t = m.add(Block::new("t", BlockKind::Terminator));
        m.connect(c, 0, t, 0).unwrap();
        let diags = lint(&m);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "F006" && d.block.as_deref() == Some("unused")),
            "{diags:?}"
        );
    }

    #[test]
    fn errors_sort_before_warnings() {
        let mut m = clean_model();
        // a dangling output (warning) ...
        m.add(Block::new(
            "in2",
            BlockKind::Inport {
                index: 1,
                shape: Shape::Vector(4),
            },
        ));
        // ... plus a dangling input (error)
        let a = m.add(Block::new("abs", BlockKind::Abs));
        let t = m.add(Block::new("t", BlockKind::Terminator));
        m.connect(a, 0, t, 0).unwrap();
        let diags = lint(&m);
        assert_eq!(diags.first().map(|d| d.severity), Some(Severity::Error));
        assert_eq!(diags.last().map(|d| d.severity), Some(Severity::Warning));
    }
}
