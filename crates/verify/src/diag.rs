//! Structured diagnostics: codes, severities, and the three renderers
//! (human, JSON lines, SARIF 2.1.0).

use frodo_model::{Model, ModelError};
use frodo_obs::json_escape;
use std::fmt;

/// How bad a finding is. `Error` findings fail `frodo lint` /
/// `frodo compile --verify`; `Warning` findings are reported but pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not provably wrong (dead block, dangling output).
    Warning,
    /// The model or the generated program is provably ill-formed.
    Error,
}

impl Severity {
    /// Lowercase label used by the JSON and SARIF renderers.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding from the linter or the range-soundness checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code (`F0xx` model lint, `F1xx` soundness).
    pub code: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Block path (flattened name) the finding is about, when known.
    pub block: Option<String>,
    /// Span-ish location inside the artifact: a port (`b3:in0`), a
    /// statement (`stmt 7`), or a buffer (`buffer conv_out`).
    pub location: Option<String>,
    /// What is wrong, with concrete indices/extents.
    pub message: String,
    /// How to fix it, when a fix is obvious.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic for a rule in [`RULES`], inheriting the rule's
    /// default severity.
    ///
    /// # Panics
    ///
    /// Panics if `code` is not a registered rule (a bug in the caller).
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        let rule = rule(code).unwrap_or_else(|| panic!("unregistered diagnostic code {code}"));
        Diagnostic {
            code,
            severity: rule.severity,
            block: None,
            location: None,
            message: message.into(),
            help: None,
        }
    }

    /// Attaches the block path.
    pub fn with_block(mut self, block: impl Into<String>) -> Self {
        self.block = Some(block.into());
        self
    }

    /// Attaches a span-ish location.
    pub fn with_location(mut self, location: impl Into<String>) -> Self {
        self.location = Some(location.into());
        self
    }

    /// Attaches a help message.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(b) = &self.block {
            write!(f, " `{b}`")?;
        }
        if let Some(l) = &self.location {
            write!(f, " ({l})")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// One registered rule: code, default severity, a one-line summary (also
/// the SARIF `rules` table and the README codes table), and a minimal
/// triggering example for `frodo lint --explain`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Stable code.
    pub code: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
    /// Minimal triggering example, one line.
    pub example: &'static str,
}

/// Every rule the linter (`F0xx`), the soundness checker (`F1xx`), and
/// the dataflow analyses (`F2xx` numeric safety / residual redundancy,
/// `F3xx` schedule races) can emit, in code order.
pub const RULES: &[Rule] = &[
    Rule {
        code: "F001",
        severity: Severity::Error,
        summary: "input port has no incoming connection",
        example: "a Gain block whose input port is never the target of a connect()",
    },
    Rule {
        code: "F002",
        severity: Severity::Error,
        summary: "input port is driven by more than one connection",
        example: "two source blocks both connected to Add's in0",
    },
    Rule {
        code: "F003",
        severity: Severity::Error,
        summary: "operand shapes are incompatible across an edge",
        example: "Add fed a Vector(8) on in0 and a Vector(4) on in1",
    },
    Rule {
        code: "F004",
        severity: Severity::Error,
        summary: "truncation parameter indexes outside the input extent",
        example: "Selector start=5 end=55 on a Vector(50) input",
    },
    Rule {
        code: "F005",
        severity: Severity::Error,
        summary: "delay-free cycle (algebraic loop)",
        example: "Add -> Gain -> Add with no UnitDelay on the feedback edge",
    },
    Rule {
        code: "F006",
        severity: Severity::Warning,
        summary: "dead block: calculation range is empty",
        example: "a Gain whose only consumer selects none of its elements",
    },
    Rule {
        code: "F007",
        severity: Severity::Warning,
        summary: "output port drives no consumer",
        example: "a Product block whose output is connected to nothing",
    },
    Rule {
        code: "F008",
        severity: Severity::Error,
        summary: "model failed validation",
        example: "any ModelError without a more specific rule mapping",
    },
    Rule {
        code: "F101",
        severity: Severity::Error,
        summary: "element read before any statement writes it",
        example: "a Copy reading temp[5..8] when only temp[0..5] was computed",
    },
    Rule {
        code: "F102",
        severity: Severity::Error,
        summary: "index outside the buffer's declared extent",
        example: "a run reading in0[8..11] from a buffer of extent 8",
    },
    Rule {
        code: "F103",
        severity: Severity::Error,
        summary: "output under-computation: demanded elements never written",
        example: "out0 demands [0, 8) but the final copy writes only [0, 6)",
    },
    Rule {
        code: "F104",
        severity: Severity::Error,
        summary: "output over-computation: elements written beyond the demand",
        example: "out0 demands [0, 4) but the program writes [0, 8)",
    },
    Rule {
        code: "F105",
        severity: Severity::Error,
        summary: "malformed or degenerate statement",
        example: "a Unary statement with len == 0",
    },
    Rule {
        code: "F201",
        severity: Severity::Warning,
        summary: "possible division by zero (divisor interval contains 0)",
        example: "Divide whose divisor is an unconstrained input with interval [-1e6, 1e6]",
    },
    Rule {
        code: "F202",
        severity: Severity::Warning,
        summary: "sqrt/log of a possibly negative operand",
        example: "Sqrt applied directly to an input with interval [-1e6, 1e6]",
    },
    Rule {
        code: "F203",
        severity: Severity::Warning,
        summary: "arithmetic may overflow to +/-inf",
        example: "Gain(1e300) applied to a value already bounded by 1e300",
    },
    Rule {
        code: "F204",
        severity: Severity::Warning,
        summary: "residual redundancy: elements written but never demanded",
        example: "a full-range Conv writing [0, 60) when the Selector demands only [5, 55)",
    },
    Rule {
        code: "F301",
        severity: Severity::Error,
        summary: "data race: concurrent statements access overlapping elements",
        example: "two statements in one schedule unit both writing buf[4..8]",
    },
    Rule {
        code: "F302",
        severity: Severity::Error,
        summary: "malformed parallel schedule (coverage or dependence order)",
        example: "a schedule placing a reader in an earlier unit than its writer",
    },
];

/// Looks up a rule by code.
pub fn rule(code: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.code == code)
}

fn block_name(model: Option<&Model>, id: frodo_model::BlockId) -> String {
    match model {
        Some(m) if id.index() < m.len() => m.block(id).name.clone(),
        _ => id.to_string(),
    }
}

/// Maps a [`ModelError`] onto the rule table. `model` (when available and
/// id-compatible with the error) resolves block ids to names.
pub fn from_model_error(model: Option<&Model>, err: &ModelError) -> Diagnostic {
    match err {
        ModelError::UnconnectedInput(p) => {
            Diagnostic::new("F001", format!("input port {p} has no incoming connection"))
                .with_block(block_name(model, p.block))
                .with_location(p.to_string())
                .with_help("connect a source block or remove the consumer")
        }
        ModelError::DuplicateInput(p) => Diagnostic::new(
            "F002",
            format!("input port {p} has more than one incoming connection"),
        )
        .with_block(block_name(model, p.block))
        .with_location(p.to_string()),
        ModelError::ShapeMismatch { block, reason } => {
            Diagnostic::new("F003", format!("shape inference failed: {reason}"))
                .with_block(block_name(model, *block))
        }
        ModelError::BadParameter { block, reason } => {
            Diagnostic::new("F004", format!("invalid block parameter: {reason}"))
                .with_block(block_name(model, *block))
        }
        ModelError::AlgebraicLoop { cycle } => {
            let path: Vec<String> = cycle.iter().map(|b| block_name(model, *b)).collect();
            Diagnostic::new(
                "F005",
                format!("delay-free cycle through: {}", path.join(" -> ")),
            )
            .with_help("break the loop with a UnitDelay block")
        }
        other => Diagnostic::new("F008", other.to_string()),
    }
}

/// Renders diagnostics the way a compiler prints them, one per line with
/// an optional indented `help:` line.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
        if let Some(h) = &d.help {
            out.push_str("  help: ");
            out.push_str(h);
            out.push('\n');
        }
    }
    out
}

/// Renders diagnostics as NDJSON: one flat JSON object per line.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\"",
            json_escape(d.code),
            d.severity.as_str()
        ));
        if let Some(b) = &d.block {
            out.push_str(&format!(",\"block\":\"{}\"", json_escape(b)));
        }
        if let Some(l) = &d.location {
            out.push_str(&format!(",\"location\":\"{}\"", json_escape(l)));
        }
        out.push_str(&format!(",\"message\":\"{}\"", json_escape(&d.message)));
        if let Some(h) = &d.help {
            out.push_str(&format!(",\"help\":\"{}\"", json_escape(h)));
        }
        out.push_str("}\n");
    }
    out
}

/// Renders diagnostics as a minimal SARIF 2.1.0 document (one run, the
/// full rule table, one result per diagnostic with a logical location).
pub fn render_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\"version\":\"2.1.0\",");
    out.push_str("\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",");
    out.push_str("\"runs\":[{\"tool\":{\"driver\":{\"name\":\"frodo-verify\",\"rules\":[");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            json_escape(r.code),
            json_escape(r.summary)
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut text = d.message.clone();
        if let Some(l) = &d.location {
            text.push_str(&format!(" (at {l})"));
        }
        out.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}}",
            json_escape(d.code),
            d.severity.as_str(),
            json_escape(&text)
        ));
        if let Some(b) = &d.block {
            out.push_str(&format!(
                ",\"locations\":[{{\"logicalLocations\":[{{\"fullyQualifiedName\":\"{}\"}}]}}]",
                json_escape(b)
            ));
        }
        out.push('}');
    }
    out.push_str("]}]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_table_is_sorted_and_unique() {
        for w in RULES.windows(2) {
            assert!(w[0].code < w[1].code);
        }
        assert_eq!(rule("F101").unwrap().severity, Severity::Error);
        assert_eq!(rule("F006").unwrap().severity, Severity::Warning);
        assert!(rule("F999").is_none());
    }

    #[test]
    #[should_panic(expected = "unregistered diagnostic code")]
    fn unknown_code_is_a_caller_bug() {
        let _ = Diagnostic::new("F999", "nope");
    }

    #[test]
    fn human_rendering_carries_code_block_and_help() {
        let d = Diagnostic::new("F004", "selector end 55 exceeds input length 50")
            .with_block("sel")
            .with_location("b3:in0")
            .with_help("shrink the selection");
        let text = render_human(&[d]);
        assert!(text.contains("error[F004] `sel` (b3:in0): selector end 55"));
        assert!(text.contains("  help: shrink the selection"));
    }

    #[test]
    fn json_rendering_is_flat_ndjson() {
        let d = Diagnostic::new("F101", "read of \"x\" before write").with_block("conv");
        let line = render_json(&[d]);
        assert!(line.ends_with("}\n"));
        assert!(line.starts_with("{\"code\":\"F101\",\"severity\":\"error\""));
        assert!(line.contains("\\\"x\\\""));
        let fields = frodo_obs::ndjson::parse_line(line.trim_end()).unwrap();
        assert!(fields.iter().any(|(k, _)| k == "message"));
    }

    #[test]
    fn sarif_document_has_schema_rules_and_results() {
        let d = Diagnostic::new("F103", "output 0 misses [5, 9)").with_block("out");
        let doc = render_sarif(&[d]);
        assert!(doc.contains("\"version\":\"2.1.0\""));
        assert!(doc.contains("\"name\":\"frodo-verify\""));
        assert!(doc.contains("\"id\":\"F001\""));
        assert!(doc.contains("\"ruleId\":\"F103\""));
        assert!(doc.contains("\"fullyQualifiedName\":\"out\""));
    }

    #[test]
    fn model_error_mapping_targets_the_specific_rules() {
        use frodo_model::{Block, BlockKind, Model};
        let mut m = Model::new("t");
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let err = ModelError::BadParameter {
            block: g,
            reason: "end 9 past input".into(),
        };
        let d = from_model_error(Some(&m), &err);
        assert_eq!(d.code, "F004");
        assert_eq!(d.block.as_deref(), Some("g"));
        let d = from_model_error(None, &err);
        assert_eq!(d.block.as_deref(), Some("b0"));
    }
}
