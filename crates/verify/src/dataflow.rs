//! A small generic dataflow engine over the lowered statement IR.
//!
//! The lowered [`Program`](frodo_codegen::lir::Program) is a straight-line
//! sequence of statements executed once per simulation step, with state
//! buffers carrying values between invocations. That makes the control-flow
//! graph trivial — one basic block plus a back edge for the invocation
//! boundary — so a dataflow analysis here is an ordered sweep over the
//! statements (forward or backward) iterated to a fixpoint across the
//! back edge.
//!
//! Clients implement [`Transfer`]; [`run_to_fixpoint`] drives the sweeps.
//! The engine itself is deliberately silent: clients typically iterate to
//! convergence first and then run one extra *reporting* pass over the
//! stabilized states to emit diagnostics, so that warnings are not
//! duplicated per pass and do not depend on the pass count.

use frodo_codegen::lir::{Program, Stmt};

/// Sweep direction for a dataflow analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Statements are visited first-to-last (e.g. value ranges).
    Forward,
    /// Statements are visited last-to-first (e.g. demand / liveness).
    Backward,
}

/// A dataflow analysis over a lowered program.
///
/// `State` is the whole abstract store (typically one lattice value per
/// buffer); the engine clones it to detect convergence, so it must be
/// cheap-ish to clone and comparable.
pub trait Transfer {
    /// The abstract store threaded through the statement sweep.
    type State: Clone + PartialEq;

    /// Which way the sweep runs.
    fn direction(&self) -> Direction;

    /// The store at the sweep entry of the *first* invocation: before the
    /// first statement for forward analyses, after the last statement for
    /// backward ones.
    fn boundary(&mut self, program: &Program) -> Self::State;

    /// Apply one statement's effect to the store. `idx` is the statement's
    /// position in program order regardless of sweep direction.
    fn transfer(&mut self, program: &Program, idx: usize, stmt: &Stmt, state: &mut Self::State);

    /// Apply the invocation back edge: called between sweeps with the store
    /// from the end of one invocation, producing the entry store of the
    /// next. The default keeps the store unchanged, which models state
    /// buffers carrying values across steps verbatim.
    fn invocation_boundary(&mut self, _program: &Program, _state: &mut Self::State) {}
}

/// Result of [`run_to_fixpoint`].
#[derive(Debug, Clone)]
pub struct Fixpoint<S> {
    /// The stabilized store at the sweep entry (after the last applied
    /// invocation boundary).
    pub entry: S,
    /// Number of full sweeps performed (at least 1).
    pub passes: usize,
    /// Whether the store stopped changing within the pass budget. When
    /// false, clients should widen or treat the result as conservative.
    pub converged: bool,
}

/// Sweep `t` over `program` repeatedly until the entry store stops
/// changing or `max_passes` sweeps have run.
///
/// Each pass starts from the current entry store, applies every statement
/// in `t.direction()` order, then applies [`Transfer::invocation_boundary`]
/// to produce the candidate entry store of the next pass. Convergence is
/// detected by comparing consecutive entry stores with `PartialEq`.
pub fn run_to_fixpoint<T: Transfer>(
    program: &Program,
    t: &mut T,
    max_passes: usize,
) -> Fixpoint<T::State> {
    let mut entry = t.boundary(program);
    let mut passes = 0;
    let mut converged = false;
    while passes < max_passes.max(1) {
        passes += 1;
        let mut state = entry.clone();
        run_one_pass(program, t, &mut state);
        t.invocation_boundary(program, &mut state);
        if state == entry {
            converged = true;
            break;
        }
        entry = state;
    }
    Fixpoint {
        entry,
        passes,
        converged,
    }
}

/// Apply every statement of `program` to `state` in `t.direction()` order,
/// without touching the invocation boundary. Useful for the final
/// *reporting* pass over an already-stabilized entry store.
pub fn run_one_pass<T: Transfer>(program: &Program, t: &mut T, state: &mut T::State) {
    match t.direction() {
        Direction::Forward => {
            for (i, stmt) in program.stmts.iter().enumerate() {
                t.transfer(program, i, stmt, state);
            }
        }
        Direction::Backward => {
            for (i, stmt) in program.stmts.iter().enumerate().rev() {
                t.transfer(program, i, stmt, state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_codegen::lir::{BufId, Buffer, BufferRole, Slice, Src, Stmt, UnOp};
    use frodo_codegen::GeneratorStyle;

    fn tiny_program() -> Program {
        // in0 -> gain -> out0, with a state buffer feeding back.
        Program {
            name: "tiny".into(),
            style: GeneratorStyle::Frodo,
            buffers: vec![
                Buffer {
                    name: "in0".into(),
                    len: 4,
                    role: BufferRole::Input(0),
                },
                Buffer {
                    name: "acc".into(),
                    len: 4,
                    role: BufferRole::State(vec![0.0; 4]),
                },
                Buffer {
                    name: "out0".into(),
                    len: 4,
                    role: BufferRole::Output(0),
                },
            ],
            stmts: vec![
                Stmt::StateLoad {
                    dst: BufId(2),
                    state: BufId(1),
                    len: 4,
                },
                Stmt::Unary {
                    op: UnOp::Gain(2.0),
                    dst: Slice {
                        buf: BufId(2),
                        off: 0,
                    },
                    src: Src::Run(Slice {
                        buf: BufId(0),
                        off: 0,
                    }),
                    len: 4,
                },
                Stmt::StateStore {
                    state: BufId(1),
                    src: BufId(2),
                    len: 4,
                },
            ],
        }
    }

    /// Records visit order; converges after one extra pass.
    struct OrderProbe {
        dir: Direction,
        seen: Vec<usize>,
    }

    impl Transfer for OrderProbe {
        type State = usize;
        fn direction(&self) -> Direction {
            self.dir
        }
        fn boundary(&mut self, _p: &Program) -> usize {
            0
        }
        fn transfer(&mut self, _p: &Program, idx: usize, _s: &Stmt, state: &mut usize) {
            self.seen.push(idx);
            *state = (*state).max(idx + 1);
        }
    }

    #[test]
    fn forward_and_backward_visit_orders() {
        let p = tiny_program();
        let mut f = OrderProbe {
            dir: Direction::Forward,
            seen: vec![],
        };
        let out = run_to_fixpoint(&p, &mut f, 8);
        assert!(out.converged);
        // pass 1 changes the state (0 -> 3), pass 2 confirms the fixpoint.
        assert_eq!(out.passes, 2);
        assert_eq!(f.seen, vec![0, 1, 2, 0, 1, 2]);

        let mut b = OrderProbe {
            dir: Direction::Backward,
            seen: vec![],
        };
        run_to_fixpoint(&p, &mut b, 8);
        assert_eq!(&b.seen[..3], &[2, 1, 0]);
    }

    /// A widening counter that never stabilizes on its own: checks the
    /// pass budget is honored and reported.
    struct Diverge;
    impl Transfer for Diverge {
        type State = u64;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&mut self, _p: &Program) -> u64 {
            0
        }
        fn transfer(&mut self, _p: &Program, _i: usize, _s: &Stmt, state: &mut u64) {
            *state += 1;
        }
    }

    #[test]
    fn pass_budget_is_honored_and_reported() {
        let p = tiny_program();
        let out = run_to_fixpoint(&p, &mut Diverge, 5);
        assert!(!out.converged);
        assert_eq!(out.passes, 5);
    }
}
