//! The NDJSON wire protocol.
//!
//! One flat JSON object per line, in both directions, parsed and written
//! with [`frodo_obs::ndjson`] — the same format the trace exporter and
//! perf ledger speak, so one parser serves the whole workspace. The
//! hand-rolled parser has no boolean literals; **flags travel as `0`/`1`
//! numbers** (`"verify":1`).
//!
//! Request kinds (`"type"`):
//!
//! | type | fields |
//! |------|--------|
//! | `compile` | `model`, optional `style`, `threads`, `engine`, `verify`, `analyze`, `trace`, `timeout_ms`, `vectorize`, `window_reuse`, `client` |
//! | `lint` | `model` |
//! | `batch` | `models` (array), optional `styles` (comma list or `all`), plus the `compile` options |
//! | `recompile` | `session`, `model`, optional `style`, `region_max`, plus the `compile` options |
//! | `status` | — |
//! | `metrics` | — |
//! | `shutdown` | — |
//!
//! `model` is a `.slx`/`.mdl` path (resolved server-side), a bundled
//! Table-1 benchmark name, or a `random:<seed>:<size>[:edit:<k>]` spec.
//! `client` names the fairness bucket submissions queue under;
//! connections without one get a per-connection bucket. `recompile`
//! compiles through a named server-side [`frodo_driver::CompileSession`]:
//! resubmitting an edited model under the same `session` re-analyzes only
//! the regions the edit dirtied (the session pins the first request's
//! style and options).
//!
//! Response kinds: `result` (one per job; `ok` 0/1; `recompile` results
//! add `regions`/`region_hits`/`dirty_blocks`/`fragment_hits`),
//! `lint-result`, `batch-done` (terminator after a batch's `result`
//! lines), `status`, `metrics` (rolling-window per-verb latency
//! histograms plus per-session cache stats), `busy` (admission
//! backpressure, with `retry_after_ms`), `draining`, `shutdown` (the
//! final ack), and `error` (malformed request).
//!
//! # Versioning
//!
//! Every request and response may carry a `proto_version` number; this
//! build speaks [`PROTO_VERSION`], and every response states it. A
//! request without one is treated as version 1 (the pre-versioned wire
//! format, which this build still accepts). A request with a version this
//! daemon does not speak gets a structured `error` response naming the
//! supported range — it is never silently misparsed.
//!
//! # Request correlation
//!
//! Since version 3 the server stamps a `request_id` onto every response
//! line: the client-supplied `request_id` field when the request carried
//! one, a server-assigned sequence number otherwise. Every line a request
//! produces (a batch's whole `result` stream and its `batch-done`
//! terminator included) carries the same id, so clients multiplexing one
//! connection can correlate responses without counting lines. The stamp
//! is prepended by the connection loop, not the renderers here — the
//! renderers stay request-agnostic. Version 1 and 2 clients ignore the
//! extra field; the flat-NDJSON parser skips unknown keys by design.

use frodo_codegen::{GeneratorStyle, VectorMode};
use frodo_core::{RangeEngine, RangeOptions};
use frodo_driver::{CacheStats, CompileOptions, JobError, JobOutput, PoolSnapshot, SessionStats};
use frodo_obs::ndjson::{self, ObjWriter, Value};
use frodo_obs::Histogram;

/// The wire-protocol version this build speaks. Version 1 is the
/// pre-versioned NDJSON format (still accepted when a request carries no
/// `proto_version`); version 2 added the field itself and the
/// `recompile` request; version 3 added the `metrics` request and the
/// `request_id` stamp on every response; version 4 added the `analyze`
/// compile option (dataflow analyses over the lowered program). Versions
/// 1 through 3 remain fully accepted — each bump only adds fields or
/// verbs, it changes none.
pub const PROTO_VERSION: u64 = 4;

/// Per-request compile options — the CLI surface, carried on the wire.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestOptions {
    /// Intra-model thread budget (`threads`); `0` = auto.
    pub threads: usize,
    /// Range-determination options (`engine`).
    pub range: RangeOptions,
    /// Run the range-soundness checker (`verify`, as 0/1).
    pub verify: bool,
    /// Run the dataflow analyses (`analyze`, as 0/1; protocol version 4).
    pub analyze: bool,
    /// Include per-stage timings in each `result` line (`trace`, as 0/1).
    pub trace: bool,
    /// Per-job wall-clock budget in milliseconds (`timeout_ms`); `0` = none.
    pub timeout_ms: u64,
    /// Vectorization mode of the emitted C (`vectorize`, as a label).
    pub vectorize: VectorMode,
    /// Run the sliding-window reuse pass (`window_reuse`, as 0/1).
    pub window_reuse: bool,
}

impl RequestOptions {
    /// Lowers the wire options onto the driver's option set.
    pub fn compile_options(&self) -> CompileOptions {
        CompileOptions::builder()
            .range(self.range)
            .intra_threads(self.threads)
            .verify(self.verify)
            .analyze(self.analyze)
            .timeout_ms(self.timeout_ms)
            .vectorize(self.vectorize)
            .window_reuse(self.window_reuse)
            .build()
    }
}

/// One parsed request line.
#[derive(Debug)]
pub enum Request {
    /// Compile one model.
    Compile {
        /// Model path or benchmark name.
        model: String,
        /// Generator style (defaults to `frodo`).
        style: GeneratorStyle,
        /// Compile options.
        options: RequestOptions,
        /// Fairness bucket, when the client names one.
        client: Option<u64>,
    },
    /// Lint one model (static diagnostics; runs inline, never queued).
    Lint {
        /// Model path or benchmark name.
        model: String,
    },
    /// Compile a models × styles grid.
    Batch {
        /// Model paths or benchmark names.
        models: Vec<String>,
        /// Generator styles (defaults to `frodo` only).
        styles: Vec<GeneratorStyle>,
        /// Compile options, shared by every job.
        options: RequestOptions,
        /// Fairness bucket, when the client names one.
        client: Option<u64>,
    },
    /// Compile through a named server-side incremental compile session.
    Recompile {
        /// Session name (created on first use; pins style and options).
        session: String,
        /// Model path, benchmark name, or `random:` spec.
        model: String,
        /// Generator style (defaults to `frodo`; pinned at creation).
        style: GeneratorStyle,
        /// Compile options (pinned at creation).
        options: RequestOptions,
        /// Region-size cap for the partition (`0` = the driver default;
        /// pinned at creation).
        region_max: usize,
    },
    /// Report queue, cache, and worker metrics.
    Status,
    /// Report rolling-window per-verb request rates and latency
    /// histograms plus per-session stats (protocol version 3).
    Metrics,
    /// Drain in-flight jobs, flush the final ledger entry, and stop.
    Shutdown,
}

/// Parses a generator style label (`simulink|dfsynth|hcg|frodo`).
pub fn parse_style(s: &str) -> Result<GeneratorStyle, String> {
    match s.to_ascii_lowercase().as_str() {
        "simulink" => Ok(GeneratorStyle::SimulinkCoder),
        "dfsynth" => Ok(GeneratorStyle::DfSynth),
        "hcg" => Ok(GeneratorStyle::Hcg),
        "frodo" => Ok(GeneratorStyle::Frodo),
        other => Err(format!(
            "unknown style '{other}' (expected simulink|dfsynth|hcg|frodo)"
        )),
    }
}

/// Parses a `styles` list: a comma-separated label list or `all`.
pub fn parse_styles(s: &str) -> Result<Vec<GeneratorStyle>, String> {
    if s == "all" {
        return Ok(GeneratorStyle::ALL.to_vec());
    }
    s.split(',').map(parse_style).collect()
}

fn options_from(fields: &[(String, Value)]) -> Result<RequestOptions, String> {
    let engine = match ndjson::get_str(fields, "engine") {
        None | Some("recursive") => RangeEngine::Recursive,
        Some("iterative") => RangeEngine::Iterative,
        Some("parallel") => RangeEngine::Parallel,
        Some(other) => {
            return Err(format!(
                "unknown engine '{other}' (expected recursive|iterative|parallel)"
            ))
        }
    };
    // Bare `batch` gets the x86 lane count; the daemon compiles for the
    // host it runs on, and clients wanting another width say `batch:W`.
    let vectorize = match ndjson::get_str(fields, "vectorize") {
        None => VectorMode::default(),
        Some(s) => VectorMode::parse(s, 8)?,
    };
    let num = |key: &str| ndjson::get_num(fields, key).unwrap_or(0.0);
    Ok(RequestOptions {
        threads: num("threads") as usize,
        range: RangeOptions {
            engine,
            ..RangeOptions::default()
        },
        verify: num("verify") != 0.0,
        analyze: num("analyze") != 0.0,
        trace: num("trace") != 0.0,
        timeout_ms: num("timeout_ms") as u64,
        vectorize,
        window_reuse: num("window_reuse") != 0.0,
    })
}

/// Parses one request line. A `proto_version` this build does not speak
/// is a structured error before the `type` is even looked at.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let fields = ndjson::parse_line(line)?;
    if let Some(v) = ndjson::get_num(&fields, "proto_version") {
        let v = v as u64;
        if v == 0 || v > PROTO_VERSION {
            return Err(format!(
                "unsupported proto_version {v} (this daemon speaks 1..={PROTO_VERSION})"
            ));
        }
    }
    let typ = ndjson::get_str(&fields, "type").ok_or("request has no \"type\" field")?;
    let model = || -> Result<String, String> {
        ndjson::get_str(&fields, "model")
            .map(str::to_string)
            .ok_or_else(|| format!("{typ} request has no \"model\" field"))
    };
    let client = ndjson::get_num(&fields, "client").map(|n| n as u64);
    match typ {
        "compile" => Ok(Request::Compile {
            model: model()?,
            style: match ndjson::get_str(&fields, "style") {
                Some(s) => parse_style(s)?,
                None => GeneratorStyle::Frodo,
            },
            options: options_from(&fields)?,
            client,
        }),
        "lint" => Ok(Request::Lint { model: model()? }),
        "batch" => {
            let models: Vec<String> = ndjson::get(&fields, "models")
                .and_then(Value::as_arr)
                .ok_or("batch request has no \"models\" array")?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "\"models\" entries must be strings".to_string())
                })
                .collect::<Result<_, _>>()?;
            if models.is_empty() {
                return Err("batch request has an empty \"models\" array".into());
            }
            Ok(Request::Batch {
                models,
                styles: match ndjson::get_str(&fields, "styles") {
                    Some(s) => parse_styles(s)?,
                    None => vec![GeneratorStyle::Frodo],
                },
                options: options_from(&fields)?,
                client,
            })
        }
        "recompile" => Ok(Request::Recompile {
            session: ndjson::get_str(&fields, "session")
                .map(str::to_string)
                .ok_or("recompile request has no \"session\" field")?,
            model: model()?,
            style: match ndjson::get_str(&fields, "style") {
                Some(s) => parse_style(s)?,
                None => GeneratorStyle::Frodo,
            },
            options: options_from(&fields)?,
            region_max: ndjson::get_num(&fields, "region_max").unwrap_or(0.0) as usize,
        }),
        "status" => Ok(Request::Status),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown request type '{other}'")),
    }
}

/// Starts a response object: `type`, the protocol version, and `ok`.
fn response(typ: &str, ok: u64) -> ObjWriter {
    let mut w = ObjWriter::new();
    w.field_str("type", typ)
        .field_num("proto_version", PROTO_VERSION)
        .field_num("ok", ok);
    w
}

/// The shared body of a `result` line, minus the trailing `code` field.
fn result_fields(w: &mut ObjWriter, out: &JobOutput, with_stages: bool) {
    let r = &out.report;
    w.field_str("job", &r.job)
        .field_str("style", r.style.label())
        .field_str("cache", r.cache.label())
        .field_str("digest", &r.digest.to_string())
        .field_num("blocks", r.metrics.blocks as u64)
        .field_num("optimizable", r.metrics.optimizable_blocks as u64)
        .field_num("elements", r.metrics.total_elements as u64)
        .field_num("eliminated", r.metrics.eliminated_elements as u64)
        .field_num("code_bytes", r.code_bytes as u64);
    if with_stages {
        let mut stages = ObjWriter::new();
        for (name, d) in r.timings.rows() {
            stages.field_num(name, d.as_nanos() as u64);
        }
        stages.field_num("total", r.timings.total().as_nanos() as u64);
        w.field_raw("stages", &stages.finish());
    }
}

/// Renders a completed job. `code` rides along so clients can write the
/// artifact without a second round trip; `stages` only when the request
/// asked for per-stage timings (`"trace":1`).
pub fn render_result(out: &JobOutput, with_stages: bool) -> String {
    let mut w = response("result", 1);
    result_fields(&mut w, out, with_stages);
    w.field_str("code", &out.code);
    w.finish()
}

/// Renders a completed `recompile` job: a `result` line with the
/// session's region-reuse stats for this compile.
pub fn render_recompile_result(out: &JobOutput, stats: &SessionStats, with_stages: bool) -> String {
    let mut w = response("result", 1);
    result_fields(&mut w, out, with_stages);
    w.field_num("regions", stats.last_region_total)
        .field_num("region_hits", stats.last_region_hits)
        .field_num("dirty_blocks", stats.last_dirty_blocks)
        .field_num("fragment_hits", stats.last_fragment_hits)
        .field_str("code", &out.code);
    w.finish()
}

/// Renders a failed job as an `ok:0` result.
pub fn render_job_error(err: &JobError) -> String {
    let mut w = response("result", 0);
    w.field_str("job", err.job())
        .field_str("error", &err.to_string());
    if matches!(err, JobError::Timeout { .. }) {
        w.field_num("timeout", 1);
    }
    let diags = err.diagnostics();
    if !diags.is_empty() {
        w.field_raw("diags", &render_diags(diags));
    }
    w.finish()
}

/// Renders lint findings for one model.
pub fn render_lint(model: &str, diags: &[frodo_verify::Diagnostic]) -> String {
    let errors = diags
        .iter()
        .filter(|d| d.severity == frodo_verify::Severity::Error)
        .count();
    let mut w = response("lint-result", u64::from(errors == 0));
    w.field_str("model", model)
        .field_num("findings", diags.len() as u64)
        .field_num("errors", errors as u64)
        .field_raw("diags", &render_diags(diags));
    w.finish()
}

fn render_diags(diags: &[frodo_verify::Diagnostic]) -> String {
    let items: Vec<String> = diags
        .iter()
        .map(|d| {
            let mut w = ObjWriter::new();
            w.field_str("code", d.code)
                .field_str("severity", &d.severity.to_string())
                .field_str("message", &d.message);
            if let Some(b) = &d.block {
                w.field_str("block", b);
            }
            if let Some(l) = &d.location {
                w.field_str("location", l);
            }
            w.finish()
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// Renders the backpressure response for a full admission queue.
pub fn render_busy(queued: usize, retry_after_ms: u64) -> String {
    let mut w = response("busy", 0);
    w.field_num("queued", queued as u64)
        .field_num("retry_after_ms", retry_after_ms);
    w.finish()
}

/// Renders the rejection sent while the server drains.
pub fn render_draining() -> String {
    response("draining", 0).finish()
}

/// Renders a request-level error (parse failure, unknown model, …).
pub fn render_error(message: &str) -> String {
    let mut w = response("error", 0);
    w.field_str("message", message);
    w.finish()
}

/// Renders the terminator after a batch's `result` lines. `rejected`
/// counts jobs the admission queue turned away (resubmit those).
pub fn render_batch_done(jobs: usize, ok: usize, failed: usize, rejected: usize) -> String {
    let mut w = ObjWriter::new();
    w.field_str("type", "batch-done")
        .field_num("proto_version", PROTO_VERSION)
        .field_num("jobs", jobs as u64)
        .field_num("ok", ok as u64)
        .field_num("failed", failed as u64)
        .field_num("rejected", rejected as u64);
    w.finish()
}

/// Renders the live metrics line: queue, cache, and worker state.
pub fn render_status(
    pool: &PoolSnapshot,
    cache: &CacheStats,
    uptime_ms: u64,
    jobs_ok: u64,
    jobs_failed: u64,
) -> String {
    let lookups = cache.hits + cache.misses;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        cache.hits as f64 / lookups as f64 * 100.0
    };
    let capacity_ns = (uptime_ms as u128) * 1_000_000 * pool.workers as u128;
    let utilization = if capacity_ns == 0 {
        0.0
    } else {
        pool.busy_ns as f64 / capacity_ns as f64 * 100.0
    };
    let mut w = response("status", 1);
    w.field_num("uptime_ms", uptime_ms)
        .field_num("workers", pool.workers as u64)
        .field_num("queue_depth", pool.queue_depth as u64)
        .field_num("in_flight", pool.in_flight as u64)
        .field_num("submitted", pool.submitted)
        .field_num("completed", pool.completed)
        .field_num("rejected", pool.rejected)
        .field_num("timeouts", pool.timeouts)
        .field_num("jobs_ok", jobs_ok)
        .field_num("jobs_failed", jobs_failed)
        .field_num("draining", u64::from(pool.draining))
        .field_pct("utilization_pct", utilization)
        .field_num("cache_hits", cache.hits as u64)
        .field_num("cache_misses", cache.misses as u64)
        .field_pct("cache_hit_rate_pct", hit_rate)
        .field_num("cache_entries", cache.entries as u64)
        .field_num("cache_bytes", cache.bytes as u64)
        .field_num("cache_evictions", cache.evictions as u64);
    w.finish()
}

/// One verb's share of the `metrics` response: its lifetime request
/// count and its request-latency histogram over the rolling window.
#[derive(Debug, Clone)]
pub struct VerbMetrics {
    /// Request verb (`compile`, `batch`, …).
    pub verb: &'static str,
    /// Requests of this verb since the daemon started (never evicted).
    pub total: u64,
    /// Request latency in nanoseconds over the rolling window.
    pub window: Histogram,
}

/// Renders the `metrics` response (protocol version 3): one entry per
/// verb with window count, latency percentiles, and the full log2 bucket
/// arrays (the same `bucket_upper`/`bucket_count` shape the trace
/// exporter's `hist` lines use, so one parser reads both), plus one
/// entry per live compile session.
pub fn render_metrics(
    uptime_ms: u64,
    window_secs: u64,
    verbs: &[VerbMetrics],
    sessions: &[(String, SessionStats)],
) -> String {
    let verb_items: Vec<String> = verbs
        .iter()
        .map(|v| {
            let (uppers, counts): (Vec<_>, Vec<_>) = v.window.nonzero_buckets().into_iter().unzip();
            let join = |ns: &[u64]| ns.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
            let mut w = ObjWriter::new();
            w.field_str("verb", v.verb)
                .field_num("total", v.total)
                .field_num("window_count", v.window.count())
                .field_num("p50_ns", v.window.percentile(50.0) as u64)
                .field_num("p95_ns", v.window.percentile(95.0) as u64)
                .field_num("max_ns", v.window.max() as u64)
                .field_raw("bucket_upper", &format!("[{}]", join(&uppers)))
                .field_raw("bucket_count", &format!("[{}]", join(&counts)));
            w.finish()
        })
        .collect();
    let session_items: Vec<String> = sessions
        .iter()
        .map(|(name, s)| {
            let mut w = ObjWriter::new();
            w.field_str("session", name)
                .field_num("compiles", s.compiles)
                .field_num("region_hits", s.region_hits)
                .field_num("region_misses", s.region_misses)
                .field_num("last_region_total", s.last_region_total)
                .field_num("last_region_hits", s.last_region_hits);
            w.finish()
        })
        .collect();
    let mut w = response("metrics", 1);
    w.field_num("uptime_ms", uptime_ms)
        .field_num("window_secs", window_secs)
        .field_raw("verbs", &format!("[{}]", verb_items.join(",")))
        .field_raw("sessions", &format!("[{}]", session_items.join(",")));
    w.finish()
}

/// Renders the shutdown ack: sent after the drain completes, immediately
/// before the listener goes away.
pub fn render_shutdown_ack(completed: u64, ledger: Option<&str>) -> String {
    let mut w = response("shutdown", 1);
    w.field_num("completed", completed);
    if let Some(path) = ledger {
        w.field_str("ledger", path);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_covers_every_kind() {
        let r = parse_request(
            r#"{"type":"compile","model":"Kalman","style":"hcg","threads":2,"engine":"iterative","verify":1,"timeout_ms":500,"vectorize":"batch:4","window_reuse":1,"client":7}"#,
        )
        .unwrap();
        match r {
            Request::Compile {
                model,
                style,
                options,
                client,
            } => {
                assert_eq!(model, "Kalman");
                assert_eq!(style, GeneratorStyle::Hcg);
                assert_eq!(options.threads, 2);
                assert_eq!(options.range.engine, RangeEngine::Iterative);
                assert!(options.verify);
                assert!(!options.trace);
                assert_eq!(options.timeout_ms, 500);
                assert_eq!(client, Some(7));
                assert_eq!(options.vectorize, VectorMode::Batch(4));
                assert!(options.window_reuse);
                let co = options.compile_options();
                assert_eq!(co.exec.intra_threads, 2);
                assert_eq!(co.exec.timeout_ms, 500);
                assert_eq!(co.keyed.range.engine, RangeEngine::Iterative);
                assert_eq!(co.keyed.emit.vectorize, VectorMode::Batch(4));
                assert!(co.keyed.lower.window_reuse);
            }
            other => panic!("expected compile, got {other:?}"),
        }

        let r =
            parse_request(r#"{"type":"batch","models":["a.mdl","Kalman"],"styles":"frodo,hcg"}"#)
                .unwrap();
        match r {
            Request::Batch { models, styles, .. } => {
                assert_eq!(models, ["a.mdl", "Kalman"]);
                assert_eq!(styles, [GeneratorStyle::Frodo, GeneratorStyle::Hcg]);
            }
            other => panic!("expected batch, got {other:?}"),
        }

        assert!(matches!(
            parse_request(r#"{"type":"lint","model":"m.slx"}"#).unwrap(),
            Request::Lint { .. }
        ));
        assert!(matches!(
            parse_request(r#"{"type":"status"}"#).unwrap(),
            Request::Status
        ));
        assert!(matches!(
            parse_request(r#"{"type":"metrics"}"#).unwrap(),
            Request::Metrics
        ));
        assert!(matches!(
            parse_request(r#"{"type":"shutdown"}"#).unwrap(),
            Request::Shutdown
        ));
    }

    #[test]
    fn recompile_requests_parse_with_session_and_region_max() {
        let r = parse_request(
            r#"{"type":"recompile","proto_version":2,"session":"edit-loop","model":"random:42:60","style":"frodo","region_max":8}"#,
        )
        .unwrap();
        match r {
            Request::Recompile {
                session,
                model,
                style,
                region_max,
                ..
            } => {
                assert_eq!(session, "edit-loop");
                assert_eq!(model, "random:42:60");
                assert_eq!(style, GeneratorStyle::Frodo);
                assert_eq!(region_max, 8);
            }
            other => panic!("expected recompile, got {other:?}"),
        }
        assert!(parse_request(r#"{"type":"recompile","model":"Kalman"}"#)
            .unwrap_err()
            .contains("session"));
    }

    #[test]
    fn unknown_proto_versions_are_rejected_and_stated() {
        // absent = version 1; the current version passes
        assert!(parse_request(r#"{"type":"status"}"#).is_ok());
        assert!(parse_request(&format!(
            r#"{{"type":"status","proto_version":{PROTO_VERSION}}}"#
        ))
        .is_ok());
        // a future (or zero) version is a structured refusal
        let err = parse_request(r#"{"type":"status","proto_version":99}"#).unwrap_err();
        assert!(err.contains("unsupported proto_version 99"), "{err}");
        assert!(err.contains(&format!("1..={PROTO_VERSION}")), "{err}");
        assert!(parse_request(r#"{"type":"status","proto_version":0}"#).is_err());
        // every response states the version it speaks
        for line in [
            render_error("nope"),
            render_busy(1, 5),
            render_draining(),
            render_batch_done(1, 1, 0, 0),
            render_shutdown_ack(0, None),
            render_status(&PoolSnapshot::default(), &CacheStats::default(), 0, 0, 0),
            render_metrics(0, 60, &[], &[]),
        ] {
            let fields = ndjson::parse_line(&line).unwrap();
            assert_eq!(
                ndjson::get_num(&fields, "proto_version"),
                Some(PROTO_VERSION as f64),
                "{line}"
            );
        }
    }

    #[test]
    fn malformed_requests_name_the_fault() {
        assert!(parse_request(r#"{"model":"x"}"#)
            .unwrap_err()
            .contains("type"));
        assert!(parse_request(r#"{"type":"dance"}"#)
            .unwrap_err()
            .contains("unknown request type"));
        assert!(parse_request(r#"{"type":"batch","models":[]}"#)
            .unwrap_err()
            .contains("empty"));
        assert!(
            parse_request(r#"{"type":"compile","model":"x","engine":"warp"}"#)
                .unwrap_err()
                .contains("unknown engine")
        );
        assert!(
            parse_request(r#"{"type":"compile","model":"x","vectorize":"warp"}"#)
                .unwrap_err()
                .contains("unknown vectorize mode")
        );
        assert!(
            parse_request(r#"{"type":"compile","model":"x","vectorize":"batch:99"}"#)
                .unwrap_err()
                .contains("out of range")
        );
        // parse errors carry the line/offset locator from frodo-obs
        assert!(parse_request(r#"{"type":"compile","threads":x}"#)
            .unwrap_err()
            .contains("at line 1"));
    }

    #[test]
    fn response_lines_parse_back_as_flat_ndjson() {
        let busy = render_busy(12, 75);
        let fields = ndjson::parse_line(&busy).unwrap();
        assert_eq!(ndjson::get_str(&fields, "type"), Some("busy"));
        assert_eq!(ndjson::get_num(&fields, "retry_after_ms"), Some(75.0));

        let done = render_batch_done(4, 3, 1, 0);
        let fields = ndjson::parse_line(&done).unwrap();
        assert_eq!(ndjson::get_num(&fields, "jobs"), Some(4.0));

        let status = render_status(&PoolSnapshot::default(), &CacheStats::default(), 0, 0, 0);
        let fields = ndjson::parse_line(&status).unwrap();
        assert_eq!(ndjson::get_str(&fields, "type"), Some("status"));
        assert_eq!(ndjson::get_num(&fields, "queue_depth"), Some(0.0));

        let ack = render_shutdown_ack(9, Some(".frodo/ledger.ndjson"));
        let fields = ndjson::parse_line(&ack).unwrap();
        assert_eq!(ndjson::get_num(&fields, "completed"), Some(9.0));
        assert_eq!(
            ndjson::get_str(&fields, "ledger"),
            Some(".frodo/ledger.ndjson")
        );
    }

    #[test]
    fn metrics_lines_carry_parseable_latency_histograms() {
        let mut window = Histogram::new();
        for ns in [1_000.0, 2_000.0, 50_000.0] {
            window.record(ns);
        }
        let line = render_metrics(
            1234,
            60,
            &[
                VerbMetrics {
                    verb: "compile",
                    total: 7,
                    window: window.clone(),
                },
                VerbMetrics {
                    verb: "status",
                    total: 0,
                    window: Histogram::new(),
                },
            ],
            &[(
                "edit-loop".into(),
                SessionStats {
                    compiles: 3,
                    region_hits: 5,
                    ..Default::default()
                },
            )],
        );
        let fields = ndjson::parse_line(&line).unwrap();
        assert_eq!(ndjson::get_str(&fields, "type"), Some("metrics"));
        assert_eq!(ndjson::get_num(&fields, "window_secs"), Some(60.0));

        let verbs = ndjson::get(&fields, "verbs").unwrap().as_arr().unwrap();
        assert_eq!(verbs.len(), 2);
        let compile = &verbs[0];
        assert_eq!(compile.field("verb"), Some(&Value::Str("compile".into())));
        assert_eq!(compile.field("total").unwrap().as_num(), Some(7.0));
        assert_eq!(compile.field("window_count").unwrap().as_num(), Some(3.0));
        assert_eq!(compile.field("max_ns").unwrap().as_num(), Some(50_000.0));
        // the bucket arrays rebuild the histogram exactly — the wire
        // format is lossless down to the log2 buckets
        let nums = |key: &str| -> Vec<u64> {
            compile
                .field(key)
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .map(|v| v.as_num().unwrap() as u64)
                .collect()
        };
        let pairs: Vec<(u64, u64)> = nums("bucket_upper")
            .into_iter()
            .zip(nums("bucket_count"))
            .collect();
        assert_eq!(pairs.iter().map(|&(_, n)| n).sum::<u64>(), 3);
        let rebuilt =
            Histogram::from_parts(3, window.sum(), window.min(), window.max(), &pairs).unwrap();
        assert_eq!(rebuilt.nonzero_buckets(), window.nonzero_buckets());
        // an idle verb still appears, with an empty histogram
        assert_eq!(verbs[1].field("window_count").unwrap().as_num(), Some(0.0));
        assert_eq!(
            verbs[1]
                .field("bucket_upper")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            0
        );

        let sessions = ndjson::get(&fields, "sessions").unwrap().as_arr().unwrap();
        assert_eq!(
            sessions[0].field("session"),
            Some(&Value::Str("edit-loop".into()))
        );
        assert_eq!(sessions[0].field("compiles").unwrap().as_num(), Some(3.0));
        assert_eq!(
            sessions[0].field("region_hits").unwrap().as_num(),
            Some(5.0)
        );
    }
}
