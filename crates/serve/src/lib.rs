//! # frodo-serve — the persistent compile daemon
//!
//! The rest of the workspace compiles in one-shot CLI invocations; this
//! crate keeps the [`CompileService`](frodo_driver::CompileService) alive
//! behind a socket, which is what the ROADMAP's production service needs:
//! a warm artifact cache, a shared worker pool, and live metrics that
//! outlive any single request.
//!
//! - [`server`] — the daemon: a unix-socket (or TCP) listener whose
//!   connections share one [`JobPool`](frodo_driver::JobPool): a bounded
//!   admission queue with per-client round-robin fairness and explicit
//!   backpressure (`busy` + `retry_after_ms`) instead of blocking,
//!   plus graceful drain on `shutdown` with a final perf-ledger entry.
//! - [`proto`] — the NDJSON wire protocol (`compile`, `lint`, `batch`,
//!   `recompile`, `status`, `metrics`, `shutdown`), written and parsed
//!   with [`frodo_obs::ndjson`] so the daemon speaks the same dialect as
//!   the trace/ledger tooling. Since protocol version 3 every response
//!   carries a `request_id` stamp, and `metrics` reports rolling-window
//!   per-verb latency histograms.
//! - [`client`] — a line-oriented client with backpressure-aware retry,
//!   used by `frodo client` and the integration tests.
//! - [`cli`] — the `frodo serve` / `frodo client` verb implementations.
//!
//! # Example
//!
//! ```no_run
//! use frodo_serve::client::{Client, Endpoint};
//!
//! # fn main() -> Result<(), String> {
//! let mut client = Client::connect(&Endpoint::Unix(".frodo/serve.sock".into()))?;
//! let response = client.request_one(r#"{"type":"status"}"#)?;
//! assert!(response.contains("\"queue_depth\""));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod client;
pub mod proto;
pub mod server;

pub use client::{Client, Endpoint};
pub use proto::{Request, RequestOptions, PROTO_VERSION};
pub use server::{Server, ServerConfig};
