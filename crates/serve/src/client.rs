//! The client side: connection plumbing (shared with the server) and a
//! line-oriented request/response driver with backpressure-aware retry.

use crate::proto;
use frodo_obs::ndjson;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A unix-domain socket at this path (the default transport).
    Unix(PathBuf),
    /// A TCP address (`host:port`), behind the `--tcp` flag.
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// One accepted or dialed connection, over either transport.
#[derive(Debug)]
pub(crate) enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    pub(crate) fn connect(endpoint: &Endpoint) -> std::io::Result<Stream> {
        match endpoint {
            Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            Endpoint::Tcp(addr) => TcpStream::connect(addr).map(Stream::Tcp),
        }
    }

    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A connected client. One request at a time per connection; the daemon
/// answers each request with one line, except `batch`, which streams one
/// `result` line per job and terminates with `batch-done`.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    /// Dials the daemon.
    pub fn connect(endpoint: &Endpoint) -> Result<Client, String> {
        let stream =
            Stream::connect(endpoint).map_err(|e| format!("cannot reach {endpoint}: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone connection: {e}"))?,
        );
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request line verbatim (the newline is added here).
    pub fn send(&mut self, line: &str) -> Result<(), String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))
    }

    /// Reads one response line; `None` when the daemon closed the
    /// connection.
    pub fn read_line(&mut self) -> Result<Option<String>, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Ok(None),
            Ok(_) => Ok(Some(line.trim_end_matches('\n').to_string())),
            Err(e) => Err(format!("read failed: {e}")),
        }
    }

    /// Sends a single-response request (`compile`, `lint`, `status`,
    /// `shutdown`) and returns the daemon's one line.
    pub fn request_one(&mut self, line: &str) -> Result<String, String> {
        self.send(line)?;
        self.read_line()?
            .ok_or_else(|| "daemon closed the connection".to_string())
    }

    /// Sends a `batch` request and collects every line through the
    /// terminator (`batch-done`, or a `busy`/`draining`/`error` line).
    pub fn request_batch(&mut self, line: &str) -> Result<Vec<String>, String> {
        self.send(line)?;
        let mut lines = Vec::new();
        loop {
            let Some(response) = self.read_line()? else {
                return Err("daemon closed the connection mid-batch".to_string());
            };
            let done = response_type(&response)? != "result";
            lines.push(response);
            if done {
                return Ok(lines);
            }
        }
    }

    /// Like [`Self::request_one`], but on a `busy` response honors the
    /// daemon's `retry_after_ms` hint and resends, up to `max_retries`
    /// times. Returns the first non-busy response.
    pub fn request_with_retry(&mut self, line: &str, max_retries: u32) -> Result<String, String> {
        for _ in 0..max_retries {
            let response = self.request_one(line)?;
            if response_type(&response)? != "busy" {
                return Ok(response);
            }
            let fields = ndjson::parse_line(&response)?;
            let backoff = ndjson::get_num(&fields, "retry_after_ms").unwrap_or(25.0) as u64;
            std::thread::sleep(Duration::from_millis(backoff.max(1)));
        }
        Err(format!("still busy after {max_retries} retries"))
    }
}

/// The `"type"` of a response line.
pub fn response_type(line: &str) -> Result<String, String> {
    let fields = ndjson::parse_line(line)?;
    ndjson::get_str(&fields, "type")
        .map(str::to_string)
        .ok_or_else(|| "response has no \"type\" field".to_string())
}

/// Starts a request object: `type` plus the protocol version this build
/// speaks, so a newer daemon knows exactly what it is talking to and an
/// older one (which ignores unknown fields) is unaffected.
fn request(kind: &str) -> ndjson::ObjWriter {
    let mut w = ndjson::ObjWriter::new();
    w.field_str("type", kind)
        .field_num("proto_version", proto::PROTO_VERSION);
    w
}

/// Checks a response's `proto_version` against this build's. Responses
/// without one (a version-1 daemon) pass; a version this client does not
/// speak is a clean error instead of a misread line.
pub fn check_proto(fields: &[(String, ndjson::Value)]) -> Result<(), String> {
    match ndjson::get_num(fields, "proto_version").map(|v| v as u64) {
        None => Ok(()),
        Some(v) if (1..=proto::PROTO_VERSION).contains(&v) => Ok(()),
        Some(v) => Err(format!(
            "daemon speaks proto_version {v}; this client speaks 1..={} — upgrade the client",
            proto::PROTO_VERSION
        )),
    }
}

/// Builds a `compile` request line from CLI-level parts.
pub fn compile_request(
    model: &str,
    style: Option<&str>,
    options: &proto::RequestOptions,
    client: Option<u64>,
) -> String {
    let mut w = request("compile");
    w.field_str("model", model);
    if let Some(style) = style {
        w.field_str("style", style);
    }
    write_options(&mut w, options, client);
    w.finish()
}

/// Builds a `batch` request line from CLI-level parts.
pub fn batch_request(
    models: &[&str],
    styles: Option<&str>,
    options: &proto::RequestOptions,
    client: Option<u64>,
) -> String {
    let items: Vec<String> = models
        .iter()
        .map(|m| format!("\"{}\"", frodo_obs::json_escape(m)))
        .collect();
    let mut w = request("batch");
    w.field_raw("models", &format!("[{}]", items.join(",")));
    if let Some(styles) = styles {
        w.field_str("styles", styles);
    }
    write_options(&mut w, options, client);
    w.finish()
}

/// Builds a `recompile` request line: a compile through the named
/// server-side incremental session.
pub fn recompile_request(
    session: &str,
    model: &str,
    style: Option<&str>,
    options: &proto::RequestOptions,
    region_max: usize,
) -> String {
    let mut w = request("recompile");
    w.field_str("session", session).field_str("model", model);
    if let Some(style) = style {
        w.field_str("style", style);
    }
    if region_max > 0 {
        w.field_num("region_max", region_max as u64);
    }
    write_options(&mut w, options, None);
    w.finish()
}

/// Builds a bare request line (`lint` takes a model; `status` and
/// `shutdown` take nothing).
pub fn simple_request(kind: &str, model: Option<&str>) -> String {
    let mut w = request(kind);
    if let Some(model) = model {
        w.field_str("model", model);
    }
    w.finish()
}

fn write_options(w: &mut ndjson::ObjWriter, options: &proto::RequestOptions, client: Option<u64>) {
    if options.threads > 0 {
        w.field_num("threads", options.threads as u64);
    }
    match options.range.engine {
        frodo_core::RangeEngine::Recursive => {}
        frodo_core::RangeEngine::Iterative => {
            w.field_str("engine", "iterative");
        }
        frodo_core::RangeEngine::Parallel => {
            w.field_str("engine", "parallel");
        }
    }
    if options.verify {
        w.field_num("verify", 1);
    }
    if options.analyze {
        w.field_num("analyze", 1);
    }
    if options.trace {
        w.field_num("trace", 1);
    }
    if options.timeout_ms > 0 {
        w.field_num("timeout_ms", options.timeout_ms);
    }
    match options.vectorize {
        frodo_codegen::VectorMode::Auto => {}
        frodo_codegen::VectorMode::Off => {
            w.field_str("vectorize", "off");
        }
        frodo_codegen::VectorMode::Hints => {
            w.field_str("vectorize", "hints");
        }
        frodo_codegen::VectorMode::Batch(width) => {
            w.field_str("vectorize", &format!("batch:{width}"));
        }
    }
    if options.window_reuse {
        w.field_num("window_reuse", 1);
    }
    if let Some(client) = client {
        w.field_num("client", client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{parse_request, Request};

    #[test]
    fn built_requests_parse_back() {
        let opts = proto::RequestOptions {
            threads: 1,
            verify: true,
            analyze: true,
            timeout_ms: 250,
            ..Default::default()
        };
        let line = compile_request("models/a b.mdl", Some("hcg"), &opts, Some(3));
        match parse_request(&line).unwrap() {
            Request::Compile {
                model,
                style,
                options,
                client,
            } => {
                assert_eq!(model, "models/a b.mdl");
                assert_eq!(style, frodo_codegen::GeneratorStyle::Hcg);
                assert_eq!(options.threads, 1);
                assert!(options.verify);
                assert!(options.analyze);
                assert_eq!(options.timeout_ms, 250);
                assert_eq!(client, Some(3));
            }
            other => panic!("expected compile, got {other:?}"),
        }

        let line = batch_request(
            &["Kalman", "x\"y.mdl"],
            Some("all"),
            &Default::default(),
            None,
        );
        match parse_request(&line).unwrap() {
            Request::Batch { models, styles, .. } => {
                assert_eq!(models, ["Kalman", "x\"y.mdl"]);
                assert_eq!(styles.len(), 4);
            }
            other => panic!("expected batch, got {other:?}"),
        }

        let line = recompile_request("s1", "random:42:60", None, &Default::default(), 16);
        match parse_request(&line).unwrap() {
            Request::Recompile {
                session,
                model,
                region_max,
                ..
            } => {
                assert_eq!(session, "s1");
                assert_eq!(model, "random:42:60");
                assert_eq!(region_max, 16);
            }
            other => panic!("expected recompile, got {other:?}"),
        }

        assert!(matches!(
            parse_request(&simple_request("status", None)).unwrap(),
            Request::Status
        ));
    }

    #[test]
    fn requests_carry_the_proto_version_and_responses_are_checked() {
        let line = simple_request("status", None);
        let fields = ndjson::parse_line(&line).unwrap();
        assert_eq!(
            ndjson::get_num(&fields, "proto_version"),
            Some(proto::PROTO_VERSION as f64)
        );

        let v1 = ndjson::parse_line(r#"{"type":"status","ok":1}"#).unwrap();
        assert!(check_proto(&v1).is_ok());
        let current = ndjson::parse_line(&format!(
            r#"{{"type":"status","proto_version":{}}}"#,
            proto::PROTO_VERSION
        ))
        .unwrap();
        assert!(check_proto(&current).is_ok());
        let future = ndjson::parse_line(r#"{"type":"status","proto_version":99}"#).unwrap();
        let err = check_proto(&future).unwrap_err();
        assert!(err.contains("proto_version 99"), "{err}");
    }
}
