//! The `frodo serve` and `frodo client` verb implementations, called
//! from the binary's dispatcher.

use crate::client::{self, Client, Endpoint};
use crate::proto::RequestOptions;
use crate::server::{Server, ServerConfig};
use frodo_core::{RangeEngine, RangeOptions};
use frodo_obs::ndjson;
use std::path::Path;

/// The default unix socket, next to the default ledger.
pub const DEFAULT_SOCKET: &str = ".frodo/serve.sock";

fn flag_value<'a>(args: &'a [String], names: &[&str]) -> Option<&'a str> {
    args.windows(2)
        .find(|w| names.contains(&w[0].as_str()))
        .map(|w| w[1].as_str())
}

fn positionals<'a>(args: &'a [String], value_flags: &[&str], bool_flags: &[&str]) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut skip = false;
    for arg in args {
        if skip {
            skip = false;
        } else if value_flags.contains(&arg.as_str()) {
            skip = true;
        } else if !bool_flags.contains(&arg.as_str()) {
            out.push(arg.as_str());
        }
    }
    out
}

fn parse_num<T: std::str::FromStr>(
    args: &[String],
    names: &[&str],
    what: &str,
) -> Result<Option<T>, String> {
    flag_value(args, names)
        .map(|s| s.parse().map_err(|_| format!("bad {what}")))
        .transpose()
}

/// Resolves `--socket PATH` / `--tcp ADDR` (mutually exclusive; the unix
/// socket at [`DEFAULT_SOCKET`] otherwise).
fn endpoint(args: &[String]) -> Result<Endpoint, String> {
    match (
        flag_value(args, &["--socket"]),
        flag_value(args, &["--tcp"]),
    ) {
        (Some(_), Some(_)) => Err("--socket and --tcp are mutually exclusive".into()),
        (Some(path), None) => Ok(Endpoint::Unix(path.into())),
        (None, Some(addr)) => Ok(Endpoint::Tcp(addr.to_string())),
        (None, None) => Ok(Endpoint::Unix(DEFAULT_SOCKET.into())),
    }
}

/// `frodo serve`: run the daemon in the foreground until a client sends
/// `shutdown`.
pub fn cmd_serve(args: &[String]) -> Result<(), String> {
    let ledger_out = if let Some(path) = flag_value(args, &["--ledger-out"]) {
        Some(path.into())
    } else {
        args.iter()
            .any(|a| a == "--ledger")
            .then(|| Path::new(".frodo").join("ledger.ndjson"))
    };
    let config = ServerConfig {
        endpoint: endpoint(args)?,
        workers: parse_num(args, &["--workers", "-j"], "--workers")?.unwrap_or(0),
        queue_cap: parse_num(args, &["--queue-cap"], "--queue-cap")?.unwrap_or(256),
        cache_dir: flag_value(args, &["--cache-dir"]).map(Into::into),
        cache_cap_bytes: parse_num(args, &["--cache-cap"], "--cache-cap")?.unwrap_or(0),
        ledger_out,
    };
    let server = Server::start(config)?;
    eprintln!("frodo serve: listening on {}", server.endpoint());
    server.wait();
    eprintln!("frodo serve: stopped");
    Ok(())
}

/// `frodo client`: one request against a running daemon.
pub fn cmd_client(args: &[String]) -> Result<(), String> {
    let value_flags = [
        "--socket",
        "--tcp",
        "-s",
        "--style",
        "--styles",
        "--threads",
        "-t",
        "--engine",
        "--timeout",
        "--client",
        "--retries",
        "-o",
        "--output",
        "--session",
        "--region-max",
        "--vectorize",
    ];
    let bool_flags = ["--verify", "--trace", "--window-reuse"];
    let pos = positionals(args, &value_flags, &bool_flags);
    let kind = *pos.first().ok_or(
        "client: missing request kind (compile|recompile|lint|batch|status|metrics|shutdown)",
    )?;
    let mut conn = Client::connect(&endpoint(args)?)?;
    let options = request_options(args)?;
    let client_id = parse_num(args, &["--client"], "--client")?;
    let retries: u32 = parse_num(args, &["--retries"], "--retries")?.unwrap_or(100);
    let output = flag_value(args, &["-o", "--output"]);
    match kind {
        "compile" => {
            let model = *pos.get(1).ok_or("client compile: missing model")?;
            let style = flag_value(args, &["-s", "--style"]);
            let line = client::compile_request(model, style, &options, client_id);
            let response = conn.request_with_retry(&line, retries)?;
            handle_result_line(&response, output)
        }
        "recompile" => {
            let model = *pos.get(1).ok_or("client recompile: missing model")?;
            let session = flag_value(args, &["--session"])
                .ok_or("client recompile: missing --session NAME")?;
            let style = flag_value(args, &["-s", "--style"]);
            let region_max: usize =
                parse_num(args, &["--region-max"], "--region-max")?.unwrap_or(0);
            let line = client::recompile_request(session, model, style, &options, region_max);
            let response = conn.request_one(&line)?;
            handle_result_line(&response, output)
        }
        "lint" => {
            let model = *pos.get(1).ok_or("client lint: missing model")?;
            let response = conn.request_one(&client::simple_request("lint", Some(model)))?;
            println!("{response}");
            let fields = ndjson::parse_line(&response)?;
            client::check_proto(&fields)?;
            expect_ok(&fields)
        }
        "batch" => {
            let models = &pos[1..];
            if models.is_empty() {
                return Err("client batch: no models given".into());
            }
            let styles = flag_value(args, &["-s", "--style", "--styles"]);
            let line = client::batch_request(models, styles, &options, client_id);
            let responses = conn.request_batch(&line)?;
            handle_batch_lines(&responses, output)
        }
        "status" => {
            let response = conn.request_one(&client::simple_request("status", None))?;
            println!("{response}");
            client::check_proto(&ndjson::parse_line(&response)?)
        }
        "metrics" => {
            let response = conn.request_one(&client::simple_request("metrics", None))?;
            let fields = ndjson::parse_line(&response)?;
            client::check_proto(&fields)?;
            expect_ok(&fields)?;
            print_metrics(&fields);
            Ok(())
        }
        "shutdown" => {
            let response = conn.request_one(&client::simple_request("shutdown", None))?;
            println!("{response}");
            client::check_proto(&ndjson::parse_line(&response)?)
        }
        other => Err(format!(
            "client: unknown request kind '{other}' \
             (expected compile|recompile|lint|batch|status|metrics|shutdown)"
        )),
    }
}

fn request_options(args: &[String]) -> Result<RequestOptions, String> {
    let engine = match flag_value(args, &["--engine"]) {
        None | Some("recursive") => RangeEngine::Recursive,
        Some("iterative") => RangeEngine::Iterative,
        Some("parallel") => RangeEngine::Parallel,
        Some(other) => {
            return Err(format!(
                "unknown engine '{other}' (expected recursive|iterative|parallel)"
            ))
        }
    };
    // Bare `batch` widths resolve server-side; the label travels verbatim.
    let vectorize = match flag_value(args, &["--vectorize"]) {
        None => frodo_codegen::VectorMode::default(),
        Some(s) => frodo_codegen::VectorMode::parse(s, 8)?,
    };
    Ok(RequestOptions {
        threads: parse_num(args, &["--threads", "-t"], "--threads")?.unwrap_or(0),
        range: RangeOptions {
            engine,
            ..RangeOptions::default()
        },
        verify: args.iter().any(|a| a == "--verify"),
        analyze: args.iter().any(|a| a == "--analyze"),
        trace: args.iter().any(|a| a == "--trace"),
        timeout_ms: parse_num(args, &["--timeout"], "--timeout")?.unwrap_or(0),
        vectorize,
        window_reuse: args.iter().any(|a| a == "--window-reuse"),
    })
}

/// Unpacks a single `result` line: code to `-o` (or stdout), a summary
/// to stderr; failures become the exit error. `recompile` results add a
/// region-reuse line.
fn handle_result_line(line: &str, output: Option<&str>) -> Result<(), String> {
    let fields = ndjson::parse_line(line)?;
    client::check_proto(&fields)?;
    match ndjson::get_str(&fields, "type") {
        Some("result") => {}
        Some("draining") => return Err("daemon is draining; resubmit later".into()),
        _ => return Err(response_error(&fields)),
    }
    expect_ok(&fields)?;
    let code = ndjson::get_str(&fields, "code").unwrap_or_default();
    match output {
        Some(path) => std::fs::write(path, code).map_err(|e| format!("{path}: {e}"))?,
        None => print!("{code}"),
    }
    eprintln!(
        "{} [{}] cache={} {} bytes",
        ndjson::get_str(&fields, "job").unwrap_or("?"),
        ndjson::get_str(&fields, "style").unwrap_or("?"),
        ndjson::get_str(&fields, "cache").unwrap_or("?"),
        ndjson::get_num(&fields, "code_bytes").unwrap_or(0.0) as u64,
    );
    if let Some(regions) = ndjson::get_num(&fields, "regions") {
        eprintln!(
            "  regions {}/{} reused, {} dirty blocks, {} fragments reused",
            ndjson::get_num(&fields, "region_hits").unwrap_or(0.0) as u64,
            regions as u64,
            ndjson::get_num(&fields, "dirty_blocks").unwrap_or(0.0) as u64,
            ndjson::get_num(&fields, "fragment_hits").unwrap_or(0.0) as u64,
        );
    }
    Ok(())
}

/// Unpacks a batch's `result` stream: code files into `-o DIR` (named
/// like `frodo batch -o`), per-job summaries to stderr.
fn handle_batch_lines(lines: &[String], output: Option<&str>) -> Result<(), String> {
    if let Some(dir) = output {
        std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    }
    let mut failures = Vec::new();
    for line in lines {
        let fields = ndjson::parse_line(line)?;
        client::check_proto(&fields)?;
        match ndjson::get_str(&fields, "type") {
            Some("result") => {
                let job = ndjson::get_str(&fields, "job").unwrap_or("?");
                if ndjson::get_num(&fields, "ok") == Some(1.0) {
                    let style = ndjson::get_str(&fields, "style").unwrap_or("?");
                    eprintln!(
                        "{job} [{style}] cache={} {} bytes",
                        ndjson::get_str(&fields, "cache").unwrap_or("?"),
                        ndjson::get_num(&fields, "code_bytes").unwrap_or(0.0) as u64,
                    );
                    if let Some(dir) = output {
                        let file = format!(
                            "{dir}/{}_{}.c",
                            job.replace(['/', '\\'], "_"),
                            style.to_ascii_lowercase()
                        );
                        let code = ndjson::get_str(&fields, "code").unwrap_or_default();
                        std::fs::write(&file, code).map_err(|e| format!("{file}: {e}"))?;
                    }
                } else {
                    failures.push(format!(
                        "{job}: {}",
                        ndjson::get_str(&fields, "error").unwrap_or("failed")
                    ));
                }
            }
            Some("batch-done") => {
                let rejected = ndjson::get_num(&fields, "rejected").unwrap_or(0.0) as u64;
                eprintln!(
                    "batch: {} jobs, {} ok, {} failed, {rejected} rejected",
                    ndjson::get_num(&fields, "jobs").unwrap_or(0.0) as u64,
                    ndjson::get_num(&fields, "ok").unwrap_or(0.0) as u64,
                    ndjson::get_num(&fields, "failed").unwrap_or(0.0) as u64,
                );
                if rejected > 0 {
                    failures.push(format!("{rejected} jobs rejected by admission control"));
                }
            }
            Some("busy") => failures.push("daemon busy; retry later".into()),
            Some("draining") => failures.push("daemon is draining".into()),
            _ => return Err(response_error(&fields)),
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// Renders a `metrics` response as a per-verb latency table plus a line
/// per live compile session.
fn print_metrics(fields: &[(String, ndjson::Value)]) {
    use std::time::Duration;
    let ns = |v: f64| frodo_obs::fmt_duration(Duration::from_nanos(v as u64));
    let num = |key: &str| ndjson::get_num(fields, key).unwrap_or(0.0);
    println!(
        "uptime {:.1}s, rolling window {}s",
        num("uptime_ms") / 1000.0,
        num("window_secs") as u64
    );
    println!(
        "{:<10} {:>7} {:>10} {:>10} {:>10} {:>8}",
        "verb", "window", "p50", "p95", "max", "total"
    );
    let arr = |key: &str| {
        ndjson::get(fields, key)
            .and_then(ndjson::Value::as_arr)
            .unwrap_or(&[])
    };
    for verb in arr("verbs") {
        let f = |key: &str| {
            verb.field(key)
                .and_then(ndjson::Value::as_num)
                .unwrap_or(0.0)
        };
        println!(
            "{:<10} {:>7} {:>10} {:>10} {:>10} {:>8}",
            verb.field("verb")
                .and_then(ndjson::Value::as_str)
                .unwrap_or("?"),
            f("window_count") as u64,
            ns(f("p50_ns")),
            ns(f("p95_ns")),
            ns(f("max_ns")),
            f("total") as u64,
        );
    }
    let sessions = arr("sessions");
    if !sessions.is_empty() {
        println!("sessions:");
        for s in sessions {
            let f = |key: &str| s.field(key).and_then(ndjson::Value::as_num).unwrap_or(0.0);
            println!(
                "  {}: {} compiles, {} region hits / {} misses",
                s.field("session")
                    .and_then(ndjson::Value::as_str)
                    .unwrap_or("?"),
                f("compiles") as u64,
                f("region_hits") as u64,
                f("region_misses") as u64,
            );
        }
    }
}

fn expect_ok(fields: &[(String, ndjson::Value)]) -> Result<(), String> {
    if ndjson::get_num(fields, "ok") == Some(1.0) {
        Ok(())
    } else {
        Err(response_error(fields))
    }
}

fn response_error(fields: &[(String, ndjson::Value)]) -> String {
    ndjson::get_str(fields, "error")
        .or_else(|| ndjson::get_str(fields, "message"))
        .unwrap_or("request failed")
        .to_string()
}
