//! The daemon: listener, per-connection handlers, and the request
//! dispatch onto the shared [`JobPool`].
//!
//! One accept thread takes connections off the unix (or TCP) listener
//! and hands each to its own handler thread; handlers parse NDJSON
//! request lines and answer on the same connection. All compile work
//! funnels through one [`JobPool`] over one [`CompileService`], so every
//! connection shares the artifact cache, the admission queue, and the
//! fairness ring. Jobs record into one server-wide [`Trace`] — the
//! `status` endpoint and the final ledger entry are projections of it.
//!
//! Shutdown (the `shutdown` request) drains the pool — in-flight and
//! queued jobs complete, new submissions are rejected with `draining` —
//! flushes a final [`LedgerEntry`] when the server was started with a
//! ledger path, acks the requester, and then stops the accept loop by
//! dialing itself awake.

use crate::client::{Endpoint, Stream};
use crate::proto::{self, Request, RequestOptions};
use frodo_codegen::GeneratorStyle;
use frodo_driver::{
    CompileService, CompileSession, JobPool, JobSpec, JobTicket, PoolConfig, ServiceConfig,
    SessionStats, SubmitError,
};
use frodo_model::Model;
use frodo_obs::{
    aggregate, append_entry, ndjson, Histogram, LedgerEntry, RollingWindow, ServiceMetrics, Trace,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// Worker threads for the shared pool; `0` = one per core.
    pub workers: usize,
    /// Admission-queue capacity; `0` = unbounded (no backpressure).
    pub queue_cap: usize,
    /// On-disk artifact cache directory.
    pub cache_dir: Option<PathBuf>,
    /// Byte cap per artifact-cache layer; `0` = unbounded.
    pub cache_cap_bytes: usize,
    /// Appends a final ledger entry here on shutdown.
    pub ledger_out: Option<PathBuf>,
}

/// Fairness buckets for connections that do not name a `client` start
/// above this bound, so they can never collide with client-chosen ids.
const CONN_CLIENT_BASE: u64 = 1 << 32;

/// Width of the `metrics` verb's rolling latency window.
const METRICS_WINDOW_SECS: u64 = 60;

/// Request verbs tracked by the per-verb latency windows, in the order
/// the `metrics` response reports them.
const VERBS: [&str; 7] = [
    "compile",
    "lint",
    "batch",
    "recompile",
    "status",
    "metrics",
    "shutdown",
];

/// One verb's latency recorders: the rolling window the `metrics`
/// response reports, plus a lifetime histogram the shutdown ledger
/// entry folds into `svc_request_*`.
struct VerbStats {
    window: RollingWindow,
    lifetime: Histogram,
}

struct Shared {
    service: CompileService,
    pool: JobPool,
    trace: Trace,
    endpoint: Endpoint,
    started: Instant,
    workers: usize,
    jobs_ok: AtomicU64,
    jobs_failed: AtomicU64,
    conn_seq: AtomicU64,
    /// Server-assigned `request_id` sequence for requests that do not
    /// carry their own.
    request_seq: AtomicU64,
    /// Per-verb request latency, indexed like [`VERBS`].
    verbs: Mutex<Vec<VerbStats>>,
    stopping: AtomicBool,
    ledger_out: Option<PathBuf>,
    /// Named incremental compile sessions (`recompile` requests), shared
    /// across connections. Each session serializes its own compiles;
    /// distinct sessions run concurrently.
    sessions: Mutex<HashMap<String, Arc<Mutex<CompileSession>>>>,
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

/// A running daemon. Dropping the handle does not stop it; send a
/// `shutdown` request (or call [`Server::wait`] from the CLI and let a
/// client do it).
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the endpoint and starts the accept loop and worker pool.
    /// A stale unix socket file at the path is removed first (the common
    /// leftover of a killed daemon).
    pub fn start(config: ServerConfig) -> Result<Server, String> {
        let listener = match &config.endpoint {
            Endpoint::Unix(path) => {
                if let Some(dir) = path.parent() {
                    if !dir.as_os_str().is_empty() {
                        std::fs::create_dir_all(dir)
                            .map_err(|e| format!("{}: {e}", dir.display()))?;
                    }
                }
                let _ = std::fs::remove_file(path);
                Listener::Unix(
                    UnixListener::bind(path).map_err(|e| format!("{}: {e}", path.display()))?,
                )
            }
            Endpoint::Tcp(addr) => {
                Listener::Tcp(TcpListener::bind(addr).map_err(|e| format!("{addr}: {e}"))?)
            }
        };
        let service = CompileService::new(ServiceConfig {
            workers: config.workers,
            cache_dir: config.cache_dir.clone(),
            cache_cap_bytes: config.cache_cap_bytes,
            no_cache: false,
        });
        let trace = Trace::new();
        let pool = JobPool::start(
            &service,
            PoolConfig {
                workers: config.workers,
                queue_cap: config.queue_cap,
            },
            &trace,
        );
        let workers = pool.workers();
        let shared = Arc::new(Shared {
            service,
            pool,
            trace,
            endpoint: config.endpoint,
            started: Instant::now(),
            workers,
            jobs_ok: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            conn_seq: AtomicU64::new(0),
            request_seq: AtomicU64::new(0),
            verbs: Mutex::new(
                (0..VERBS.len())
                    .map(|_| VerbStats {
                        window: RollingWindow::new(METRICS_WINDOW_SECS),
                        lifetime: Histogram::new(),
                    })
                    .collect(),
            ),
            stopping: AtomicBool::new(false),
            ledger_out: config.ledger_out,
            sessions: Mutex::new(HashMap::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, listener))
        };
        Ok(Server {
            shared,
            accept: Some(accept),
        })
    }

    /// The endpoint the daemon listens on.
    pub fn endpoint(&self) -> &Endpoint {
        &self.shared.endpoint
    }

    /// Blocks until a `shutdown` request stops the daemon.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: Listener) {
    loop {
        let conn = listener.accept();
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || handle_conn(&shared, stream));
            }
            Err(_) => break,
        }
    }
    if let Endpoint::Unix(path) = &shared.endpoint {
        let _ = std::fs::remove_file(path);
    }
}

fn handle_conn(shared: &Arc<Shared>, stream: Stream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let conn_client = CONN_CLIENT_BASE + shared.conn_seq.fetch_add(1, Ordering::Relaxed);
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let mut stop_after = false;
        // correlation id: the client's `request_id` when the line carries
        // one, a server-assigned sequence number otherwise; every line
        // this request produces gets the same stamp
        let request_id = ndjson::parse_line(&line)
            .ok()
            .and_then(|fields| ndjson::get_num(&fields, "request_id"))
            .map_or_else(
                || shared.request_seq.fetch_add(1, Ordering::Relaxed),
                |n| n as u64,
            );
        let started = Instant::now();
        let parsed = proto::parse_request(&line);
        let verb_idx = parsed.as_ref().ok().map(verb_index);
        let responses = match parsed {
            Ok(request) => handle_request(shared, request, conn_client, &mut stop_after),
            Err(message) => vec![proto::render_error(&message)],
        };
        if let Some(idx) = verb_idx {
            record_request(shared, idx, started.elapsed().as_nanos() as f64);
        }
        for response in responses {
            if writer
                .write_all(stamp_request_id(&response, request_id).as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .is_err()
            {
                return;
            }
        }
        if writer.flush().is_err() {
            return;
        }
        if stop_after {
            stop_listener(shared);
            return;
        }
    }
}

/// Which [`VERBS`] slot a request records latency under.
fn verb_index(request: &Request) -> usize {
    match request {
        Request::Compile { .. } => 0,
        Request::Lint { .. } => 1,
        Request::Batch { .. } => 2,
        Request::Recompile { .. } => 3,
        Request::Status => 4,
        Request::Metrics => 5,
        Request::Shutdown => 6,
    }
}

/// Records one request's wall time into its verb's rolling window and
/// lifetime histogram.
fn record_request(shared: &Shared, verb_idx: usize, dur_ns: f64) {
    let now_sec = shared.started.elapsed().as_secs();
    let mut verbs = shared.verbs.lock().unwrap();
    let v = &mut verbs[verb_idx];
    v.window.record(now_sec, dur_ns);
    v.lifetime.record(dur_ns);
}

/// Prepends the correlation id onto a rendered response line. Every
/// renderer emits one non-empty flat object (`{"type":...`), so splicing
/// after the opening brace keeps the line valid JSON with `request_id`
/// first.
fn stamp_request_id(line: &str, id: u64) -> String {
    debug_assert!(line.len() > 2 && line.starts_with('{'));
    format!("{{\"request_id\":{id},{}", &line[1..])
}

/// Wakes the accept loop out of its blocking `accept` so it can exit.
fn stop_listener(shared: &Shared) {
    shared.stopping.store(true, Ordering::SeqCst);
    let _ = Stream::connect(&shared.endpoint);
}

fn handle_request(
    shared: &Arc<Shared>,
    request: Request,
    conn_client: u64,
    stop_after: &mut bool,
) -> Vec<String> {
    match request {
        Request::Compile {
            model,
            style,
            options,
            client,
        } => {
            let spec = match job_spec_for(&model, style) {
                Ok(spec) => spec
                    .with_options(options.compile_options())
                    .with_trace(&shared.trace),
                Err(message) => return vec![proto::render_error(&message)],
            };
            match shared.pool.submit(client.unwrap_or(conn_client), spec) {
                Ok(ticket) => vec![finish_job(shared, ticket, options.trace).0],
                Err(e) => vec![render_submit_error(&e)],
            }
        }
        Request::Lint { model } => match resolve_model(&model) {
            Ok(m) => vec![proto::render_lint(&model, &frodo_verify::lint(&m))],
            Err(message) => vec![proto::render_error(&message)],
        },
        Request::Batch {
            models,
            styles,
            options,
            client,
        } => handle_batch(
            shared,
            &models,
            &styles,
            options,
            client.unwrap_or(conn_client),
        ),
        Request::Recompile {
            session,
            model,
            style,
            options,
            region_max,
        } => vec![handle_recompile(
            shared, &session, &model, style, options, region_max,
        )],
        Request::Status => {
            let uptime_ms = shared.started.elapsed().as_millis() as u64;
            vec![proto::render_status(
                &shared.pool.snapshot(),
                &shared.service.cache_stats(),
                uptime_ms,
                shared.jobs_ok.load(Ordering::Relaxed),
                shared.jobs_failed.load(Ordering::Relaxed),
            )]
        }
        Request::Metrics => {
            let uptime_ms = shared.started.elapsed().as_millis() as u64;
            let now_sec = shared.started.elapsed().as_secs();
            let verbs: Vec<proto::VerbMetrics> = {
                let stats = shared.verbs.lock().unwrap();
                VERBS
                    .iter()
                    .zip(stats.iter())
                    .map(|(&verb, v)| proto::VerbMetrics {
                        verb,
                        total: v.window.total(),
                        window: v.window.snapshot(now_sec),
                    })
                    .collect()
            };
            // sessions mid-compile hold their own lock for the whole
            // compile; skip those rather than stall the metrics endpoint
            let mut sessions: Vec<(String, SessionStats)> = shared
                .sessions
                .lock()
                .unwrap()
                .iter()
                .filter_map(|(name, s)| s.try_lock().ok().map(|sess| (name.clone(), sess.stats())))
                .collect();
            sessions.sort_by(|a, b| a.0.cmp(&b.0));
            vec![proto::render_metrics(
                uptime_ms,
                METRICS_WINDOW_SECS,
                &verbs,
                &sessions,
            )]
        }
        Request::Shutdown => {
            shared.pool.drain();
            let ledger = flush_ledger(shared);
            *stop_after = true;
            vec![proto::render_shutdown_ack(
                shared.pool.snapshot().completed,
                ledger.as_deref(),
            )]
        }
    }
}

/// Submits the whole grid before waiting on anything, so a batch keeps
/// the queue fed while earlier jobs run; results stream back in
/// submission order. Jobs the admission queue turns away are counted in
/// the `batch-done` terminator (resubmit those), never silently dropped.
fn handle_batch(
    shared: &Arc<Shared>,
    models: &[String],
    styles: &[frodo_codegen::GeneratorStyle],
    options: proto::RequestOptions,
    client: u64,
) -> Vec<String> {
    let mut specs = Vec::new();
    for model in models {
        for &style in styles {
            match job_spec_for(model, style) {
                Ok(spec) => specs.push(
                    spec.with_options(options.compile_options())
                        .with_trace(&shared.trace),
                ),
                Err(message) => return vec![proto::render_error(&message)],
            }
        }
    }
    // mirror the one-shot batch path, which counts its jobs on the batch
    // span — keeps serve ledger entries diffable against `frodo batch`
    shared.trace.count("jobs", specs.len() as u64);
    let total = specs.len();
    let mut tickets: Vec<JobTicket> = Vec::new();
    let mut rejected = 0usize;
    let mut draining = false;
    for spec in specs {
        if draining {
            rejected += 1;
            continue;
        }
        match shared.pool.submit(client, spec) {
            Ok(ticket) => tickets.push(ticket),
            Err(SubmitError::Full { .. }) => rejected += 1,
            Err(SubmitError::Draining) => {
                rejected += 1;
                draining = true;
            }
        }
    }
    let mut lines = Vec::new();
    let (mut ok, mut failed) = (0, 0);
    for ticket in tickets {
        let (line, succeeded) = finish_job(shared, ticket, options.trace);
        if succeeded {
            ok += 1;
        } else {
            failed += 1;
        }
        lines.push(line);
    }
    lines.push(proto::render_batch_done(total, ok, failed, rejected));
    lines
}

/// Compiles through a named incremental session, creating it on first
/// use. The session pins the style, options, and region cap of the
/// request that created it; a later request naming the same session with
/// a different style is refused rather than silently recompiled cold.
/// Runs inline on the connection handler (sessions own in-memory caches,
/// so their compiles cannot move across pool workers); the map lock is
/// held only for the lookup, so distinct sessions compile concurrently.
fn handle_recompile(
    shared: &Arc<Shared>,
    session: &str,
    model_ref: &str,
    style: GeneratorStyle,
    options: RequestOptions,
    region_max: usize,
) -> String {
    let model = match resolve_model(model_ref) {
        Ok(m) => m,
        Err(message) => return proto::render_error(&message),
    };
    let entry = {
        let mut sessions = shared.sessions.lock().unwrap();
        Arc::clone(sessions.entry(session.to_string()).or_insert_with(|| {
            Arc::new(Mutex::new(
                CompileSession::builder(style)
                    .options(options.compile_options())
                    .region_max(if region_max == 0 {
                        frodo_driver::DEFAULT_REGION_MAX
                    } else {
                        region_max
                    })
                    .build(),
            ))
        }))
    };
    let mut sess = entry.lock().unwrap();
    if sess.style() != style {
        return proto::render_error(&format!(
            "session '{session}' is pinned to style {}; open another session for {}",
            sess.style().label(),
            style.label()
        ));
    }
    match sess.compile(model_ref, model, &shared.trace) {
        Ok(out) => {
            shared.jobs_ok.fetch_add(1, Ordering::Relaxed);
            proto::render_recompile_result(&out, &sess.stats(), options.trace)
        }
        Err(e) => {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            proto::render_job_error(&e)
        }
    }
}

/// Waits a ticket out and renders the result, keeping the server-wide
/// ok/failed tallies. The flag is whether the job succeeded.
fn finish_job(shared: &Shared, ticket: JobTicket, with_stages: bool) -> (String, bool) {
    match ticket.wait() {
        Ok(out) => {
            shared.jobs_ok.fetch_add(1, Ordering::Relaxed);
            (proto::render_result(&out, with_stages), true)
        }
        Err(e) => {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            (proto::render_job_error(&e), false)
        }
    }
}

fn render_submit_error(e: &SubmitError) -> String {
    match e {
        SubmitError::Draining => proto::render_draining(),
        SubmitError::Full {
            queued,
            retry_after_ms,
        } => proto::render_busy(*queued, *retry_after_ms),
    }
}

/// Resolves a model reference the way the CLI does: a `.slx`/`.mdl`
/// path, a bundled Table-1 benchmark name, or a
/// `random:<seed>:<size>[:edit:<k>]` spec.
fn resolve_model(model_ref: &str) -> Result<Model, String> {
    let path = std::path::Path::new(model_ref);
    match path.extension().and_then(|e| e.to_str()) {
        Some("slx") => {
            let bytes = std::fs::read(path).map_err(|e| format!("{model_ref}: {e}"))?;
            frodo_slx::read_slx(&bytes, &frodo_obs::Trace::noop())
                .map_err(|e| format!("{model_ref}: {e}"))
        }
        Some("mdl") => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{model_ref}: {e}"))?;
            frodo_slx::read_mdl(&text, &frodo_obs::Trace::noop())
                .map_err(|e| format!("{model_ref}: {e}"))
        }
        _ => frodo_benchmodels::by_spec(model_ref).ok_or_else(|| {
            format!(
                "'{model_ref}' is not a .slx/.mdl path, a bundled benchmark, \
                 or a random:<seed>:<size>[:edit:<k>] spec"
            )
        }),
    }
}

/// Builds the job spec for a model reference; file parsing stays on the
/// worker (the job's `parse` stage), bench models are materialized here.
fn job_spec_for(model_ref: &str, style: frodo_codegen::GeneratorStyle) -> Result<JobSpec, String> {
    let path = std::path::Path::new(model_ref);
    if matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("slx" | "mdl")
    ) {
        if !path.exists() {
            return Err(format!("{model_ref}: no such file"));
        }
        return Ok(JobSpec::from_path(path, style));
    }
    if let Some(bench) = frodo_benchmodels::by_name(model_ref) {
        return Ok(JobSpec::from_model(bench.name, bench.model, style));
    }
    match frodo_benchmodels::by_spec(model_ref) {
        Some(model) => Ok(JobSpec::from_model(model_ref, model, style)),
        None => Err(format!(
            "'{model_ref}' is not a .slx/.mdl path, a bundled benchmark, \
             or a random:<seed>:<size>[:edit:<k>] spec"
        )),
    }
}

/// Folds the server-wide trace into one ledger entry, mirroring the
/// one-shot batch path: per-stage aggregates and counters from the trace,
/// service metrics from the pool and cache. Returns the path written to.
fn flush_ledger(shared: &Shared) -> Option<String> {
    let path = shared.ledger_out.as_ref()?;
    let snap = shared.trace.snapshot();
    let agg = aggregate(&snap);
    let wall_ns = shared.started.elapsed().as_nanos() as u64;
    let mut entry = LedgerEntry::from_agg(&agg, "serve", "auto", 0, shared.workers as u64, wall_ns);
    let pool = shared.pool.snapshot();
    let cache = shared.service.cache_stats();
    let hist = |name: &str| {
        snap.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    };
    let (queue_p50, queue_max) = hist("queue_wait_ns")
        .map(|h| (h.percentile(50.0) as u64, h.max() as u64))
        .unwrap_or((0, 0));
    let capacity_ns = wall_ns.saturating_mul(shared.workers as u64);
    // request-level rollup across every verb, over the daemon's lifetime
    // (the shutdown request itself is still in flight and not counted)
    let all_requests = {
        let verbs = shared.verbs.lock().unwrap();
        let mut all = Histogram::new();
        for v in verbs.iter() {
            all.merge(&v.lifetime);
        }
        all
    };
    entry.svc = Some(ServiceMetrics {
        cache_hits: cache.hits as u64,
        cache_misses: cache.misses as u64,
        queue_wait_p50_ns: queue_p50,
        queue_wait_max_ns: queue_max,
        worker_busy_ns: pool.busy_ns,
        utilization_pct: if capacity_ns == 0 {
            0.0
        } else {
            pool.busy_ns as f64 / capacity_ns as f64 * 100.0
        },
        cache_evictions: cache.evictions as u64,
        job_timeouts: pool.timeouts,
        requests_total: all_requests.count(),
        request_p50_ns: all_requests.percentile(50.0) as u64,
        request_max_ns: all_requests.max() as u64,
    });
    match append_entry(path, &entry) {
        Ok(()) => Some(path.display().to_string()),
        Err(_) => None,
    }
}
