//! The content-addressed artifact cache.
//!
//! Keys are [`ContentDigest`](frodo_slx::fnv::ContentDigest)s of the
//! flattened model plus every option that affects the generated C (style,
//! range engine, dead-end elimination, coalescing gap, emission options).
//! Two layers:
//!
//! - an **in-memory** map, always on, which also retains the lowered
//!   [`Program`] so in-process consumers (the bench harness, the VM) can
//!   re-execute a hit without re-lowering;
//! - an optional **on-disk** layer under a cache directory — `<digest>.c`
//!   holds the emitted code verbatim, `<digest>.meta` the counters — so
//!   hits survive process restarts. Disk writes are best-effort: an
//!   unwritable cache dir degrades to memory-only operation, it never
//!   fails a job.

use crate::report::JobMetrics;
use frodo_codegen::lir::Program;
use frodo_codegen::GeneratorStyle;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a job's artifact was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Compiled from scratch this run.
    Miss,
    /// Served from the in-memory layer.
    Memory,
    /// Served from the on-disk layer.
    Disk,
}

impl CacheStatus {
    /// Whether analysis and emission were skipped.
    pub fn is_hit(self) -> bool {
        !matches!(self, CacheStatus::Miss)
    }

    /// Short token used in both the human table and machine lines.
    pub fn label(self) -> &'static str {
        match self {
            CacheStatus::Miss => "miss",
            CacheStatus::Memory => "hit",
            CacheStatus::Disk => "disk",
        }
    }
}

/// Cumulative cache counters for one service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from either layer.
    pub hits: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// The subset of `hits` served from disk.
    pub disk_hits: usize,
    /// Entries currently in the in-memory layer.
    pub entries: usize,
}

/// One cached artifact.
#[derive(Debug, Clone)]
pub(crate) struct CachedArtifact {
    pub code: String,
    /// Present when the artifact was compiled in this process; disk-loaded
    /// artifacts carry code and counters only.
    pub program: Option<Program>,
    pub metrics: JobMetrics,
}

#[derive(Debug)]
pub(crate) struct ArtifactCache {
    mem: Mutex<HashMap<String, CachedArtifact>>,
    dir: Option<PathBuf>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    disk_hits: AtomicUsize,
}

impl ArtifactCache {
    /// Creates a cache; `dir` enables the on-disk layer (created eagerly,
    /// and silently disabled if creation fails).
    pub fn new(dir: Option<PathBuf>) -> Self {
        let dir = dir.filter(|d| std::fs::create_dir_all(d).is_ok());
        ArtifactCache {
            mem: Mutex::new(HashMap::new()),
            dir,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            disk_hits: AtomicUsize::new(0),
        }
    }

    /// Looks `digest` up in memory, then on disk. Counts the outcome.
    /// A disk hit is promoted into the memory layer.
    pub fn lookup(&self, digest: &str) -> Option<(CachedArtifact, CacheStatus)> {
        if let Some(art) = self.mem.lock().unwrap().get(digest).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some((art, CacheStatus::Memory));
        }
        if let Some(art) = self.dir.as_deref().and_then(|d| load_disk(d, digest)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.mem
                .lock()
                .unwrap()
                .insert(digest.to_string(), art.clone());
            return Some((art, CacheStatus::Disk));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts a freshly compiled artifact into both layers.
    pub fn store(&self, digest: &str, artifact: CachedArtifact) {
        if let Some(d) = self.dir.as_deref() {
            store_disk(d, digest, &artifact);
        }
        self.mem
            .lock()
            .unwrap()
            .insert(digest.to_string(), artifact);
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            entries: self.mem.lock().unwrap().len(),
        }
    }
}

fn code_path(dir: &Path, digest: &str) -> PathBuf {
    dir.join(format!("{digest}.c"))
}

fn meta_path(dir: &Path, digest: &str) -> PathBuf {
    dir.join(format!("{digest}.meta"))
}

fn store_disk(dir: &Path, digest: &str, artifact: &CachedArtifact) {
    let m = &artifact.metrics;
    let meta = format!(
        "blocks={}\noptimizable={}\nelements={}\neliminated={}\n",
        m.blocks, m.optimizable_blocks, m.total_elements, m.eliminated_elements
    );
    // Best-effort: the meta file is written after the code so a torn cache
    // (code without meta) reads as a miss, never as a half-artifact.
    if std::fs::write(code_path(dir, digest), &artifact.code).is_ok() {
        let _ = std::fs::write(meta_path(dir, digest), meta);
    }
}

fn load_disk(dir: &Path, digest: &str) -> Option<CachedArtifact> {
    let code = std::fs::read_to_string(code_path(dir, digest)).ok()?;
    let meta = std::fs::read_to_string(meta_path(dir, digest)).ok()?;
    let mut metrics = JobMetrics::default();
    for line in meta.lines() {
        let (key, value) = line.split_once('=')?;
        let value: usize = value.trim().parse().ok()?;
        match key {
            "blocks" => metrics.blocks = value,
            "optimizable" => metrics.optimizable_blocks = value,
            "elements" => metrics.total_elements = value,
            "eliminated" => metrics.eliminated_elements = value,
            _ => return None,
        }
    }
    Some(CachedArtifact {
        code,
        program: None,
        metrics,
    })
}

/// Parses a generator-style label written by the disk layer.
#[allow(dead_code)]
pub(crate) fn style_from_label(label: &str) -> Option<GeneratorStyle> {
    GeneratorStyle::ALL.into_iter().find(|s| s.label() == label)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(code: &str) -> CachedArtifact {
        CachedArtifact {
            code: code.to_string(),
            program: None,
            metrics: JobMetrics {
                blocks: 5,
                optimizable_blocks: 2,
                total_elements: 100,
                eliminated_elements: 40,
            },
        }
    }

    #[test]
    fn memory_roundtrip_and_counters() {
        let cache = ArtifactCache::new(None);
        assert!(cache.lookup("abc").is_none());
        cache.store("abc", artifact("int x;"));
        let (art, status) = cache.lookup("abc").unwrap();
        assert_eq!(status, CacheStatus::Memory);
        assert_eq!(art.code, "int x;");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn disk_roundtrip_promotes_to_memory() {
        let dir = std::env::temp_dir().join(format!("frodo-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ArtifactCache::new(Some(dir.clone()));
            cache.store("d1", artifact("void f(void) {}"));
        }
        // a fresh cache instance only has the disk layer
        let cache = ArtifactCache::new(Some(dir.clone()));
        let (art, status) = cache.lookup("d1").unwrap();
        assert_eq!(status, CacheStatus::Disk);
        assert_eq!(art.code, "void f(void) {}");
        assert_eq!(art.metrics.eliminated_elements, 40);
        assert!(art.program.is_none());
        // promoted: second lookup is a memory hit
        let (_, status) = cache.lookup("d1").unwrap();
        assert_eq!(status, CacheStatus::Memory);
        assert_eq!(cache.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_disk_entry_is_a_miss() {
        let dir = std::env::temp_dir().join(format!("frodo-cache-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(code_path(&dir, "t1"), "int y;").unwrap(); // no .meta
        let cache = ArtifactCache::new(Some(dir.clone()));
        assert!(cache.lookup("t1").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn style_labels_roundtrip() {
        for style in GeneratorStyle::ALL {
            assert_eq!(style_from_label(style.label()), Some(style));
        }
        assert_eq!(style_from_label("nope"), None);
    }
}
