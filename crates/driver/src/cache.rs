//! The content-addressed artifact cache.
//!
//! Keys are [`ContentDigest`](frodo_slx::fnv::ContentDigest)s of the
//! flattened model plus every option that affects the generated C (style,
//! range engine, dead-end elimination, coalescing gap, emission options).
//! Two layers:
//!
//! - an **in-memory** map, always on, which also retains the lowered
//!   [`Program`] so in-process consumers (the bench harness, the VM) can
//!   re-execute a hit without re-lowering;
//! - an optional **on-disk** layer under a cache directory — `<digest>.c`
//!   holds the emitted code verbatim, `<digest>.meta` the counters — so
//!   hits survive process restarts. Disk writes are best-effort: an
//!   unwritable cache dir degrades to memory-only operation, it never
//!   fails a job.
//!
//! Both layers honor an optional byte-size cap with LRU eviction, sized
//! by the emitted code (the dominant artifact). The memory layer tracks
//! recency with a monotone use tick; the disk layer uses file mtimes,
//! refreshed on every hit, so recency survives restarts too. The entry
//! being stored or served is never the eviction victim — an artifact
//! larger than the cap still compiles and serves, the cache just won't
//! retain anything else beside it.

use crate::report::JobMetrics;
use frodo_codegen::lir::Program;
use frodo_codegen::GeneratorStyle;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

/// How a job's artifact was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Compiled from scratch this run.
    Miss,
    /// Served from the in-memory layer.
    Memory,
    /// Served from the on-disk layer.
    Disk,
}

impl CacheStatus {
    /// Whether analysis and emission were skipped.
    pub fn is_hit(self) -> bool {
        !matches!(self, CacheStatus::Miss)
    }

    /// Short token used in both the human table and machine lines.
    pub fn label(self) -> &'static str {
        match self {
            CacheStatus::Miss => "miss",
            CacheStatus::Memory => "hit",
            CacheStatus::Disk => "disk",
        }
    }
}

/// Cumulative cache counters for one service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from either layer.
    pub hits: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// The subset of `hits` served from disk.
    pub disk_hits: usize,
    /// Entries currently in the in-memory layer.
    pub entries: usize,
    /// Emitted-code bytes currently held by the in-memory layer.
    pub bytes: usize,
    /// Entries evicted (both layers) to stay under the byte cap.
    pub evictions: usize,
}

/// One cached artifact.
#[derive(Debug, Clone)]
pub(crate) struct CachedArtifact {
    pub code: String,
    /// Present when the artifact was compiled in this process; disk-loaded
    /// artifacts carry code and counters only.
    pub program: Option<Program>,
    pub metrics: JobMetrics,
}

/// The in-memory layer: a map plus LRU bookkeeping (a monotone tick per
/// touch, byte total over the cached code).
#[derive(Debug, Default)]
struct MemLayer {
    map: HashMap<String, MemEntry>,
    tick: u64,
    bytes: usize,
}

#[derive(Debug)]
struct MemEntry {
    art: CachedArtifact,
    bytes: usize,
    last_used: u64,
}

impl MemLayer {
    /// Returns the entry for `digest`, refreshing its recency.
    fn touch(&mut self, digest: &str) -> Option<CachedArtifact> {
        self.tick += 1;
        let entry = self.map.get_mut(digest)?;
        entry.last_used = self.tick;
        Some(entry.art.clone())
    }

    /// Inserts (or replaces) `digest`, then evicts least-recently-used
    /// entries until the layer fits `cap` bytes (`0` = unbounded). The
    /// just-inserted entry is never evicted. Returns how many entries
    /// were evicted.
    fn insert(&mut self, cap: usize, digest: String, art: CachedArtifact) -> usize {
        self.tick += 1;
        let cost = art.code.len();
        let entry = MemEntry {
            art,
            bytes: cost,
            last_used: self.tick,
        };
        if let Some(old) = self.map.insert(digest, entry) {
            self.bytes -= old.bytes;
        }
        self.bytes += cost;
        let mut evicted = 0;
        while cap > 0 && self.bytes > cap && self.map.len() > 1 {
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("len > 1");
            let gone = self.map.remove(&lru).expect("key came from the map");
            self.bytes -= gone.bytes;
            evicted += 1;
        }
        evicted
    }
}

#[derive(Debug)]
pub(crate) struct ArtifactCache {
    mem: Mutex<MemLayer>,
    dir: Option<PathBuf>,
    /// Byte cap applied to each layer independently; `0` = unbounded.
    cap_bytes: usize,
    hits: AtomicUsize,
    misses: AtomicUsize,
    disk_hits: AtomicUsize,
    evictions: AtomicUsize,
}

impl ArtifactCache {
    /// Creates a cache; `dir` enables the on-disk layer (created eagerly,
    /// and silently disabled if creation fails). `cap_bytes` bounds each
    /// layer's emitted-code footprint (`0` = unbounded).
    pub fn new(dir: Option<PathBuf>, cap_bytes: usize) -> Self {
        let dir = dir.filter(|d| std::fs::create_dir_all(d).is_ok());
        ArtifactCache {
            mem: Mutex::new(MemLayer::default()),
            dir,
            cap_bytes,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            disk_hits: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
        }
    }

    /// Looks `digest` up in memory, then on disk. Counts the outcome.
    /// A disk hit refreshes the file's mtime (its recency) and is
    /// promoted into the memory layer.
    pub fn lookup(&self, digest: &str) -> Option<(CachedArtifact, CacheStatus)> {
        if let Some(art) = self.mem.lock().unwrap().touch(digest) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some((art, CacheStatus::Memory));
        }
        if let Some(art) = self.dir.as_deref().and_then(|d| load_disk(d, digest)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(d) = self.dir.as_deref() {
                touch_disk(&code_path(d, digest));
            }
            let evicted =
                self.mem
                    .lock()
                    .unwrap()
                    .insert(self.cap_bytes, digest.to_string(), art.clone());
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            return Some((art, CacheStatus::Disk));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts a freshly compiled artifact into both layers, evicting
    /// least-recently-used entries past the byte cap. Returns how many
    /// entries were evicted (across both layers).
    pub fn store(&self, digest: &str, artifact: CachedArtifact) -> usize {
        let mut evicted = 0;
        if let Some(d) = self.dir.as_deref() {
            evicted += store_disk(d, digest, &artifact, self.cap_bytes);
        }
        evicted += self
            .mem
            .lock()
            .unwrap()
            .insert(self.cap_bytes, digest.to_string(), artifact);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    pub fn stats(&self) -> CacheStats {
        let (entries, bytes) = {
            let mem = self.mem.lock().unwrap();
            (mem.map.len(), mem.bytes)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            entries,
            bytes,
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

fn code_path(dir: &Path, digest: &str) -> PathBuf {
    dir.join(format!("{digest}.c"))
}

fn meta_path(dir: &Path, digest: &str) -> PathBuf {
    dir.join(format!("{digest}.meta"))
}

/// Best-effort mtime refresh, so disk-layer recency tracks hits.
fn touch_disk(path: &Path) {
    if let Ok(file) = std::fs::File::options().append(true).open(path) {
        let now = SystemTime::now();
        let _ = file.set_times(
            std::fs::FileTimes::new()
                .set_accessed(now)
                .set_modified(now),
        );
    }
}

/// Writes the artifact, then evicts the oldest `.c`/`.meta` pairs until
/// the directory's code bytes fit `cap` (`0` = unbounded; the pair just
/// written is exempt). Returns the number of evicted entries.
fn store_disk(dir: &Path, digest: &str, artifact: &CachedArtifact, cap: usize) -> usize {
    let m = &artifact.metrics;
    let meta = format!(
        "blocks={}\noptimizable={}\nelements={}\neliminated={}\n",
        m.blocks, m.optimizable_blocks, m.total_elements, m.eliminated_elements
    );
    // Best-effort: the meta file is written after the code so a torn cache
    // (code without meta) reads as a miss, never as a half-artifact.
    if std::fs::write(code_path(dir, digest), &artifact.code).is_err() {
        return 0;
    }
    let _ = std::fs::write(meta_path(dir, digest), meta);
    if cap == 0 {
        return 0;
    }
    evict_disk(dir, digest, cap)
}

/// One LRU pass over the disk layer: oldest mtime goes first.
fn evict_disk(dir: &Path, keep: &str, cap: usize) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut files: Vec<(String, SystemTime, usize)> = Vec::new();
    let mut total = 0usize;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("c") {
            continue;
        }
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        let Ok(md) = entry.metadata() else { continue };
        let mtime = md.modified().unwrap_or(SystemTime::UNIX_EPOCH);
        let bytes = md.len() as usize;
        total += bytes;
        files.push((stem.to_string(), mtime, bytes));
    }
    files.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    let mut evicted = 0;
    for (digest, _, bytes) in files {
        if total <= cap {
            break;
        }
        if digest == keep {
            continue;
        }
        let _ = std::fs::remove_file(code_path(dir, &digest));
        let _ = std::fs::remove_file(meta_path(dir, &digest));
        total -= bytes;
        evicted += 1;
    }
    evicted
}

fn load_disk(dir: &Path, digest: &str) -> Option<CachedArtifact> {
    let code = std::fs::read_to_string(code_path(dir, digest)).ok()?;
    let meta = std::fs::read_to_string(meta_path(dir, digest)).ok()?;
    let mut metrics = JobMetrics::default();
    for line in meta.lines() {
        let (key, value) = line.split_once('=')?;
        let value: usize = value.trim().parse().ok()?;
        match key {
            "blocks" => metrics.blocks = value,
            "optimizable" => metrics.optimizable_blocks = value,
            "elements" => metrics.total_elements = value,
            "eliminated" => metrics.eliminated_elements = value,
            _ => return None,
        }
    }
    Some(CachedArtifact {
        code,
        program: None,
        metrics,
    })
}

/// Parses a generator-style label written by the disk layer.
#[allow(dead_code)]
pub(crate) fn style_from_label(label: &str) -> Option<GeneratorStyle> {
    GeneratorStyle::ALL.into_iter().find(|s| s.label() == label)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(code: &str) -> CachedArtifact {
        CachedArtifact {
            code: code.to_string(),
            program: None,
            metrics: JobMetrics {
                blocks: 5,
                optimizable_blocks: 2,
                total_elements: 100,
                eliminated_elements: 40,
            },
        }
    }

    #[test]
    fn memory_roundtrip_and_counters() {
        let cache = ArtifactCache::new(None, 0);
        assert!(cache.lookup("abc").is_none());
        cache.store("abc", artifact("int x;"));
        let (art, status) = cache.lookup("abc").unwrap();
        assert_eq!(status, CacheStatus::Memory);
        assert_eq!(art.code, "int x;");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.bytes, "int x;".len());
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn disk_roundtrip_promotes_to_memory() {
        let dir = std::env::temp_dir().join(format!("frodo-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ArtifactCache::new(Some(dir.clone()), 0);
            cache.store("d1", artifact("void f(void) {}"));
        }
        // a fresh cache instance only has the disk layer
        let cache = ArtifactCache::new(Some(dir.clone()), 0);
        let (art, status) = cache.lookup("d1").unwrap();
        assert_eq!(status, CacheStatus::Disk);
        assert_eq!(art.code, "void f(void) {}");
        assert_eq!(art.metrics.eliminated_elements, 40);
        assert!(art.program.is_none());
        // promoted: second lookup is a memory hit
        let (_, status) = cache.lookup("d1").unwrap();
        assert_eq!(status, CacheStatus::Memory);
        assert_eq!(cache.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_disk_entry_is_a_miss() {
        let dir = std::env::temp_dir().join(format!("frodo-cache-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(code_path(&dir, "t1"), "int y;").unwrap(); // no .meta
        let cache = ArtifactCache::new(Some(dir.clone()), 0);
        assert!(cache.lookup("t1").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_layer_evicts_least_recently_used_past_the_cap() {
        // each artifact is 10 bytes; the cap fits exactly two
        let cache = ArtifactCache::new(None, 20);
        cache.store("a", artifact("0123456789"));
        cache.store("b", artifact("0123456789"));
        assert_eq!(cache.stats().evictions, 0);
        // touch "a" so "b" becomes the LRU entry
        assert!(cache.lookup("a").is_some());
        let evicted = cache.store("c", artifact("0123456789"));
        assert_eq!(evicted, 1);
        assert!(cache.lookup("b").is_none(), "LRU entry was evicted");
        assert!(cache.lookup("a").is_some());
        assert!(cache.lookup("c").is_some());
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.bytes, 20);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn oversized_entry_is_kept_alone_not_thrashed() {
        let cache = ArtifactCache::new(None, 4);
        cache.store("big", artifact("0123456789"));
        // over cap, but the sole entry survives and still serves
        assert!(cache.lookup("big").is_some());
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn disk_layer_evicts_oldest_past_the_cap() {
        let dir = std::env::temp_dir().join(format!("frodo-cache-lru-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ArtifactCache::new(Some(dir.clone()), 20);
        cache.store("d1", artifact("0123456789"));
        cache.store("d2", artifact("0123456789"));
        // backdate d1 so it is unambiguously the oldest on disk
        let old = SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_000_000);
        std::fs::File::options()
            .append(true)
            .open(code_path(&dir, "d1"))
            .unwrap()
            .set_times(std::fs::FileTimes::new().set_modified(old))
            .unwrap();
        let evicted = cache.store("d3", artifact("0123456789"));
        assert!(evicted >= 1, "disk layer must evict past the cap");
        assert!(!code_path(&dir, "d1").exists(), "oldest pair evicted");
        assert!(!meta_path(&dir, "d1").exists());
        assert!(code_path(&dir, "d3").exists());
        // a fresh cache (disk only) misses the evicted digest
        let fresh = ArtifactCache::new(Some(dir.clone()), 20);
        assert!(fresh.lookup("d1").is_none());
        assert!(fresh.lookup("d3").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn style_labels_roundtrip() {
        for style in GeneratorStyle::ALL {
            assert_eq!(style_from_label(style.label()), Some(style));
        }
        assert_eq!(style_from_label("nope"), None);
    }
}
