//! # frodo-driver — the batch compilation service
//!
//! The rest of the workspace compiles one model at a time: the paper's
//! pipeline (parse → flatten → I/O mapping → Algorithm 1 → concise
//! codegen) behind one function call. This crate is the layer that turns
//! that pipeline into a *service* able to take production-scale traffic:
//!
//! - **Batching & parallelism** — [`CompileService::compile_batch`] drains
//!   a job queue on a `std::thread` worker pool. Jobs are panic-isolated:
//!   a poisoned job becomes a [`JobError`] in its result slot, the rest of
//!   the batch completes.
//! - **Content-addressed caching** — every artifact is keyed by a digest
//!   ([`frodo_slx::fnv`]) of the *flattened* model plus every option that
//!   affects the generated C. Resubmitting an unchanged model skips
//!   analysis and emission entirely; an optional on-disk layer persists
//!   artifacts across processes. Hit/miss counters are exposed via
//!   [`CompileService::cache_stats`].
//! - **Pipeline observability** — every job records its stages into a
//!   [`frodo_obs::Trace`] (the caller's, via [`JobSpec::with_trace`] /
//!   [`CompileService::compile_batch_traced`], or a job-local one
//!   otherwise) and derives monotonic per-stage timings from it
//!   ([`StageTimings`]: parse, flatten, hash, cache, dfg, iomap, ranges,
//!   classify, lower, emit) plus redundancy counters (blocks analyzed,
//!   optimizable blocks, elements eliminated), rendered as a human table
//!   ([`BatchReport::render_table`]), machine lines
//!   ([`BatchReport::machine_lines`]), and — for traced batches — a span
//!   tree ([`BatchReport::render_trace`]).
//!
//! # Example
//!
//! ```
//! use frodo_driver::{CompileService, JobSpec, ServiceConfig};
//! use frodo_codegen::GeneratorStyle;
//! use frodo_model::{Block, BlockKind, Model};
//! use frodo_ranges::Shape;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = Model::new("twice");
//! let i = m.add(Block::new("in", BlockKind::Inport { index: 0, shape: Shape::Vector(8) }));
//! let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
//! let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
//! m.connect(i, 0, g, 0)?;
//! m.connect(g, 0, o, 0)?;
//!
//! let service = CompileService::new(ServiceConfig::default());
//! let job = JobSpec::from_model("twice", m.clone(), GeneratorStyle::Frodo);
//! let first = service.compile(job)?;
//! assert!(!first.report.cache.is_hit());
//!
//! // resubmitting the unchanged model is a cache hit with identical code
//! let again = service.compile(JobSpec::from_model("twice", m, GeneratorStyle::Frodo))?;
//! assert!(again.report.cache.is_hit());
//! assert_eq!(again.code, first.code);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod lifecycle;
pub mod report;
pub mod session;

pub use cache::{CacheStats, CacheStatus};
pub use lifecycle::{JobPool, JobTicket, PoolConfig, PoolSnapshot, SubmitError};
pub use report::{BatchReport, CompileReport, JobMetrics, StageTimings};
pub use session::{CompileSession, SessionBuilder, SessionStats, DEFAULT_REGION_MAX};

use cache::{ArtifactCache, CachedArtifact};
use frodo_codegen::lir::Program;
use frodo_codegen::{emit_c_traced, generate_with, CEmitOptions, GeneratorStyle, LowerOptions};
use frodo_core::{Analysis, RangeOptions};
use frodo_model::Model;
use frodo_obs::Trace;
use frodo_slx::fnv::{ContentDigest, DigestWriter};
use frodo_slx::{read_mdl, read_slx, write_mdl};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The options that determine the generated C — exactly the set the
/// artifact cache key (and the incremental session's per-region keys)
/// must cover. Two compiles whose model and `KeyedOptions` agree produce
/// byte-identical code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyedOptions {
    /// Range-determination options (engine, dead-end elimination).
    pub range: RangeOptions,
    /// Lowering options (run coalescing).
    pub lower: LowerOptions,
    /// C emission options (shared convolution helper).
    pub emit: CEmitOptions,
}

/// The options that only affect *how* a job executes, never *what* it
/// produces. The type split (instead of the old per-field "excluded from
/// the cache key" comments) makes the cache keys correct by construction:
/// [`cache_key`] takes [`KeyedOptions`] and cannot see these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecOptions {
    /// Intra-model thread budget for analysis and emission; `0` means one
    /// per available core. `1` keeps every stage on the calling thread.
    /// The parallel stages are byte-identical to the sequential ones for
    /// every thread count.
    pub intra_threads: usize,
    /// Runs the range-soundness checker (`frodo-verify`) on the lowered
    /// program before emission; a failed check fails the job closed with
    /// [`JobError::Verify`] carrying the structured diagnostics.
    ///
    /// Verification never changes the generated C. Artifacts are only
    /// stored after a (possibly skipped) verify pass, so cached code
    /// under `verify: true` was verified when it was first compiled; cache
    /// hits do not re-verify.
    pub verify: bool,
    /// Runs the dataflow analyses (`frodo-verify`'s `analyze` stage) on
    /// the lowered program before emission: value-range numeric-safety
    /// checks, the residual-redundancy detector, the parallel-schedule
    /// race checker, and the buffer-lifetime report. Error-severity
    /// findings (`F301`/`F302`) fail the job closed with
    /// [`JobError::Verify`]; warnings are recorded as counters only.
    /// Like `verify`, this never changes the generated C and is excluded
    /// from every cache key.
    pub analyze: bool,
    /// Wall-clock budget for the whole job in milliseconds; `0` means no
    /// limit. Enforced by the worker pool ([`JobPool`]): an overrunning
    /// job is abandoned on its runner thread and fails with
    /// [`JobError::Timeout`], so a hung job never occupies a worker
    /// forever. Direct [`CompileService::compile`] calls run on the
    /// calling thread and do not enforce it.
    pub timeout_ms: u64,
}

/// Every compile knob, split into the half that shapes the generated C
/// ([`KeyedOptions`], digested into cache keys) and the half that only
/// shapes execution ([`ExecOptions`], invisible to every cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileOptions {
    /// Options digested into the artifact (and region) cache keys.
    pub keyed: KeyedOptions,
    /// Execution-only options, excluded from every cache key by type.
    pub exec: ExecOptions,
}

impl CompileOptions {
    /// A builder over every knob, flat like the CLI surface.
    pub fn builder() -> CompileOptionsBuilder {
        CompileOptionsBuilder::default()
    }

    /// Resolves [`ExecOptions::intra_threads`]: `0` becomes one thread
    /// per available core.
    pub fn resolved_intra_threads(&self) -> usize {
        if self.exec.intra_threads > 0 {
            self.exec.intra_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Builds a [`CompileOptions`] one knob at a time; each setter routes its
/// value to the correct half of the keyed/exec split.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileOptionsBuilder {
    options: CompileOptions,
}

impl CompileOptionsBuilder {
    /// Range-determination engine (keyed).
    pub fn engine(mut self, engine: frodo_core::RangeEngine) -> Self {
        self.options.keyed.range.engine = engine;
        self
    }

    /// Full range-determination options (keyed).
    pub fn range(mut self, range: RangeOptions) -> Self {
        self.options.keyed.range = range;
        self
    }

    /// Dead-end elimination in range determination (keyed).
    pub fn eliminate_dead_ends(mut self, on: bool) -> Self {
        self.options.keyed.range.eliminate_dead_ends = on;
        self
    }

    /// Coalescing gap for fragmented calculation ranges (keyed).
    pub fn coalesce_gap(mut self, gap: usize) -> Self {
        self.options.keyed.lower.coalesce_gap = gap;
        self
    }

    /// Shared convolution helper emission (keyed).
    pub fn shared_conv_helper(mut self, on: bool) -> Self {
        self.options.keyed.emit.shared_conv_helper = on;
        self
    }

    /// Vectorization mode of the emitted C (keyed).
    pub fn vectorize(mut self, mode: frodo_codegen::VectorMode) -> Self {
        self.options.keyed.emit.vectorize = mode;
        self
    }

    /// Self-profiling emission hooks in the generated C (keyed — the
    /// hooks change the emitted bytes, so profiled and plain artifacts
    /// must never share a cache slot).
    pub fn profile(mut self, on: bool) -> Self {
        self.options.keyed.emit.profile = on;
        self
    }

    /// Sliding-window reuse pass after lowering (keyed).
    pub fn window_reuse(mut self, on: bool) -> Self {
        self.options.keyed.lower.window_reuse = on;
        self
    }

    /// Intra-model thread budget (exec-only).
    pub fn intra_threads(mut self, threads: usize) -> Self {
        self.options.exec.intra_threads = threads;
        self
    }

    /// Range-soundness verification (exec-only).
    pub fn verify(mut self, on: bool) -> Self {
        self.options.exec.verify = on;
        self
    }

    /// Dataflow analyses over the lowered program (exec-only).
    pub fn analyze(mut self, on: bool) -> Self {
        self.options.exec.analyze = on;
        self
    }

    /// Per-job wall-clock budget in milliseconds (exec-only).
    pub fn timeout_ms(mut self, ms: u64) -> Self {
        self.options.exec.timeout_ms = ms;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> CompileOptions {
        self.options
    }
}

/// Where a job's model comes from.
pub enum JobSource {
    /// An already-constructed model.
    Model(Model),
    /// A `.slx` or `.mdl` file, read and parsed by the worker (the job's
    /// `parse` stage).
    Path(PathBuf),
    /// A deferred programmatic builder, run by the worker (the job's
    /// `parse` stage). This is how generated or synthetic workloads enter
    /// a batch without being materialized up front.
    #[allow(clippy::type_complexity)]
    Builder(Box<dyn FnOnce() -> Result<Model, String> + Send>),
}

impl std::fmt::Debug for JobSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobSource::Model(m) => f.debug_tuple("Model").field(&m.name()).finish(),
            JobSource::Path(p) => f.debug_tuple("Path").field(p).finish(),
            JobSource::Builder(_) => f.write_str("Builder(..)"),
        }
    }
}

/// One compilation job: a model source plus a generator style and options.
#[derive(Debug)]
pub struct JobSpec {
    /// Display name used in reports.
    pub name: String,
    /// The model source.
    pub source: JobSource,
    /// Generator style to compile with.
    pub style: GeneratorStyle,
    /// Analysis/lowering/emission options.
    pub options: CompileOptions,
    /// Trace sink the job records into. Defaults to [`Trace::noop`], in
    /// which case the worker records into a job-local trace just to derive
    /// the report's [`StageTimings`].
    pub trace: Trace,
}

impl JobSpec {
    /// A job over an already-constructed model.
    pub fn from_model(name: impl Into<String>, model: Model, style: GeneratorStyle) -> Self {
        JobSpec {
            name: name.into(),
            source: JobSource::Model(model),
            style,
            options: CompileOptions::default(),
            trace: Trace::noop(),
        }
    }

    /// A job that reads a `.slx`/`.mdl` file on the worker thread.
    pub fn from_path(path: impl Into<PathBuf>, style: GeneratorStyle) -> Self {
        let path = path.into();
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        JobSpec {
            name,
            source: JobSource::Path(path),
            style,
            options: CompileOptions::default(),
            trace: Trace::noop(),
        }
    }

    /// A job whose model is built by `f` on the worker thread.
    pub fn from_builder(
        name: impl Into<String>,
        style: GeneratorStyle,
        f: impl FnOnce() -> Result<Model, String> + Send + 'static,
    ) -> Self {
        JobSpec {
            name: name.into(),
            source: JobSource::Builder(Box::new(f)),
            style,
            options: CompileOptions::default(),
            trace: Trace::noop(),
        }
    }

    /// Replaces the job's compile options.
    pub fn with_options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches a trace sink: the job records its stage spans and counters
    /// there (under a `job:{name}` root span) instead of a job-local trace.
    pub fn with_trace(mut self, trace: &Trace) -> Self {
        self.trace = trace.clone();
        self
    }
}

/// Why a job failed. The batch it belonged to still completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The model could not be obtained (file read/parse, builder failure).
    Load {
        /// Job display name.
        job: String,
        /// What went wrong.
        message: String,
    },
    /// The pipeline rejected the model (validation, shape inference, …).
    Analysis {
        /// Job display name.
        job: String,
        /// What went wrong.
        message: String,
    },
    /// The job panicked; the panic was contained by the worker.
    Panicked {
        /// Job display name.
        job: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The range-soundness checker or the dataflow analyses rejected the
    /// lowered program ([`ExecOptions::verify`] / [`ExecOptions::analyze`]).
    /// The structured diagnostics name the block, buffer, and offending
    /// interval of every finding.
    Verify {
        /// Job display name.
        job: String,
        /// Every finding, in program order.
        diagnostics: Vec<frodo_verify::Diagnostic>,
    },
    /// The job overran its [`CompileOptions::timeout_ms`] budget and was
    /// abandoned by the worker pool.
    Timeout {
        /// Job display name.
        job: String,
        /// The budget that was exceeded.
        timeout_ms: u64,
    },
}

impl JobError {
    /// The display name of the job that failed.
    pub fn job(&self) -> &str {
        match self {
            JobError::Load { job, .. }
            | JobError::Analysis { job, .. }
            | JobError::Panicked { job, .. }
            | JobError::Verify { job, .. }
            | JobError::Timeout { job, .. } => job,
        }
    }

    /// The structured diagnostics carried by a [`JobError::Verify`];
    /// empty for the other variants.
    pub fn diagnostics(&self) -> &[frodo_verify::Diagnostic] {
        match self {
            JobError::Verify { diagnostics, .. } => diagnostics,
            _ => &[],
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Load { job, message } => write!(f, "{job}: load failed: {message}"),
            JobError::Analysis { job, message } => write!(f, "{job}: analysis failed: {message}"),
            JobError::Panicked { job, message } => write!(f, "{job}: job panicked: {message}"),
            JobError::Verify { job, diagnostics } => write!(
                f,
                "{job}: verification failed with {} diagnostic{}",
                diagnostics.len(),
                if diagnostics.len() == 1 { "" } else { "s" }
            ),
            JobError::Timeout { job, timeout_ms } => {
                write!(f, "{job}: timed out after {timeout_ms}ms")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// A completed job: the generated C plus the structured report.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The emitted C translation unit.
    pub code: String,
    /// The lowered program, when it exists in this process (fresh compiles
    /// and in-memory cache hits; `None` for disk hits).
    pub program: Option<Program>,
    /// The structured per-job report.
    pub report: CompileReport,
}

/// Service configuration.
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Worker threads for batches; `0` means one per available core.
    pub workers: usize,
    /// Enables the on-disk cache layer under this directory.
    pub cache_dir: Option<PathBuf>,
    /// Disables all caching when `true` (every job compiles from scratch).
    pub no_cache: bool,
    /// Byte-size cap on each artifact-cache layer (in-memory and on-disk
    /// independently), sized by emitted code; least-recently-used entries
    /// are evicted past it. `0` means unbounded.
    pub cache_cap_bytes: usize,
}

/// The batch compilation service. Cheap to construct; shareable across
/// threads (`&self` everywhere). Cloning is cheap and shares the
/// artifact cache — that is how [`JobPool`] workers and a daemon's many
/// connections serve one cache.
#[derive(Debug, Clone)]
pub struct CompileService {
    config: ServiceConfig,
    cache: std::sync::Arc<ArtifactCache>,
}

impl CompileService {
    /// Creates a service from `config`.
    pub fn new(config: ServiceConfig) -> Self {
        let cache = std::sync::Arc::new(ArtifactCache::new(
            config.cache_dir.clone(),
            config.cache_cap_bytes,
        ));
        CompileService { config, cache }
    }

    /// A service with default configuration (auto workers, memory cache).
    pub fn with_defaults() -> Self {
        CompileService::new(ServiceConfig::default())
    }

    /// The worker count batches run with.
    pub fn workers(&self) -> usize {
        if self.config.workers > 0 {
            self.config.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Cumulative cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Compiles a batch on the worker pool; results come back in
    /// submission order.
    pub fn compile_batch(&self, specs: Vec<JobSpec>) -> BatchReport {
        self.compile_batch_traced(specs, &Trace::noop())
    }

    /// Compiles a batch with every job recording into `trace` under a
    /// shared `batch` root span. Workers record concurrently (the trace is
    /// thread-safe); each job still gets isolated [`StageTimings`] because
    /// they are derived from its own `job:{name}` subtree. Per-job wall
    /// clocks land in the `job_total_ns` histogram, and the trace rides on
    /// the report for [`BatchReport::render_trace`].
    pub fn compile_batch_traced(&self, specs: Vec<JobSpec>, trace: &Trace) -> BatchReport {
        let workers = self.workers();
        let start = Instant::now();
        let batch_span = trace.span("batch");
        batch_span.count("jobs", specs.len() as u64);
        // Jobs that left intra_threads on auto split the machine with the
        // pool instead of each claiming every core: `workers` jobs run at
        // once, so each gets `cores / workers` threads. Explicit budgets
        // (including 1) pass through untouched.
        let intra_auto = (std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            / workers)
            .max(1);
        let specs: Vec<JobSpec> = specs
            .into_iter()
            .map(|mut s| {
                if s.options.exec.intra_threads == 0 {
                    s.options.exec.intra_threads = intra_auto;
                }
                s
            })
            .collect();
        let bt = batch_span.trace();
        let specs = if trace.is_enabled() {
            specs.into_iter().map(|s| s.with_trace(&bt)).collect()
        } else {
            specs
        };
        let jobs: Vec<Result<JobOutput, JobError>> = {
            let pool = JobPool::start(
                self,
                PoolConfig {
                    workers,
                    queue_cap: 0,
                },
                &bt,
            );
            // an unbounded queue admits every job; results come back in
            // submission order because the tickets are waited in order
            let tickets: Vec<JobTicket> = specs
                .into_iter()
                .map(|s| pool.submit(0, s).expect("unbounded queue admits every job"))
                .collect();
            let jobs = tickets.into_iter().map(JobTicket::wait).collect();
            pool.shutdown();
            jobs
        };
        batch_span.end();
        if trace.is_enabled() {
            for job in jobs.iter().flatten() {
                trace.observe("job_total_ns", job.report.timings.total().as_nanos() as f64);
            }
        }
        BatchReport {
            jobs,
            wall: start.elapsed(),
            workers,
            cache: self.cache_stats(),
            trace: trace.is_enabled().then(|| trace.clone()),
        }
    }

    /// Compiles one job on the calling thread.
    ///
    /// Every stage records a span on the job's trace — the sink attached
    /// via [`JobSpec::with_trace`], or a job-local recorder otherwise (the
    /// report's [`StageTimings`] are always derived from a real trace; the
    /// job-local one is simply dropped afterwards). The spans nest under a
    /// `job:{name}` root, so many jobs can share one sink and still be
    /// told apart.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Load`] when the model cannot be obtained and
    /// [`JobError::Analysis`] when the pipeline rejects it. (Panic
    /// isolation is the batch path's job; this call propagates panics.)
    pub fn compile(&self, spec: JobSpec) -> Result<JobOutput, JobError> {
        let JobSpec {
            name,
            source,
            style,
            options,
            trace: sink,
        } = spec;
        let trace = if sink.is_enabled() {
            sink
        } else {
            Trace::new()
        };
        let job_span = trace.span(&format!("job:{name}"));
        let job_id = job_span.id();
        let jt = job_span.trace();

        // parse: obtain the model
        let model = {
            let parse = jt.span("parse");
            let pt = parse.trace();
            match source {
                JobSource::Model(m) => m,
                JobSource::Path(p) => load_model(&p, &pt).map_err(|message| JobError::Load {
                    job: name.clone(),
                    message,
                })?,
                JobSource::Builder(f) => f().map_err(|message| JobError::Load {
                    job: name.clone(),
                    message,
                })?,
            }
        };

        // flatten: the canonical, cache-keyable form (records its own span)
        let flat = model.flattened(&jt).map_err(|e| JobError::Analysis {
            job: name.clone(),
            message: e.to_string(),
        })?;

        // hash: content digest of flattened model + keyed options
        let digest = {
            let _s = jt.span("hash");
            cache_key(&flat, style, &options.keyed)
        };
        let hex = digest.to_hex();

        if !self.config.no_cache {
            let lookup = {
                let span = jt.span("cache");
                let lookup = self.cache.lookup(&hex);
                span.count("cache_hits", lookup.is_some() as u64);
                lookup
            };
            if let Some((art, status)) = lookup {
                jt.count("bytes_emitted", art.code.len() as u64);
                job_span.end();
                let timings = StageTimings::for_span(&trace, job_id);
                return Ok(JobOutput {
                    report: CompileReport {
                        job: name,
                        style,
                        digest,
                        cache: status,
                        metrics: art.metrics,
                        timings,
                        code_bytes: art.code.len(),
                    },
                    code: art.code,
                    program: art.program,
                });
            }
        }

        // The intra-model thread budget is applied *after* the cache key is
        // taken: the parallel engine and threaded emitter are byte-identical
        // to the sequential path, so the budget must never split the cache.
        let threads = options.resolved_intra_threads();
        let mut range = options.keyed.range;
        if threads > 1 {
            range.engine = frodo_core::RangeEngine::Parallel;
            range.threads = threads;
        }

        // analysis: dfg + iomap + Algorithm 1 + classification. The
        // model is already flat, so the inner flatten span is a no-op
        // pass recorded alongside the real one above.
        let analysis = Analysis::run_traced(flat, range, &jt).map_err(|e| JobError::Analysis {
            job: name.clone(),
            message: e.to_string(),
        })?;

        // lower + emit (each records its own span)
        let program = generate_with(&analysis, style, options.keyed.lower, &jt);

        // verify (opt-in): certify the lowered program against the
        // analysis before anything is emitted or cached
        if options.exec.verify {
            let span = jt.span("verify");
            let soundness = frodo_verify::check_compile(&analysis, &program);
            span.count("verify_stmts", soundness.stmts_checked as u64);
            span.count("verify_buffers", soundness.buffers_checked as u64);
            span.count("verify_outputs", soundness.outputs_checked as u64);
            span.count("verify_diagnostics", soundness.diagnostics.len() as u64);
            if !soundness.is_sound() {
                return Err(JobError::Verify {
                    job: name.clone(),
                    diagnostics: soundness.diagnostics,
                });
            }
        }

        // analyze (opt-in): dataflow analyses over the lowered program.
        // Warnings (F2xx) are recorded; error-severity schedule findings
        // (F3xx) fail the job closed like a soundness defect.
        if options.exec.analyze {
            let span = jt.span("analyze");
            let report = frodo_verify::analyze_compile(
                &analysis,
                &program,
                &frodo_verify::AnalyzeOptions {
                    emit_threads: threads,
                    ..Default::default()
                },
            );
            span.count("analyze_stmts", report.stmts as u64);
            span.count("analyze_diagnostics", report.diagnostics.len() as u64);
            span.count("analyze_residual_elements", report.residual_elements as u64);
            span.count("analyze_schedule_units", report.schedule_units as u64);
            span.count(
                "analyze_dead_store_elements",
                report.lifetime.dead_store_elements as u64,
            );
            if report.error_count() > 0 {
                return Err(JobError::Verify {
                    job: name.clone(),
                    diagnostics: report.diagnostics,
                });
            }
        }

        let code = emit_c_traced(&program, options.keyed.emit, threads, &jt);

        let metrics = JobMetrics::from_analysis(&analysis);
        if !self.config.no_cache {
            let evicted = self.cache.store(
                &hex,
                CachedArtifact {
                    code: code.clone(),
                    program: Some(program.clone()),
                    metrics,
                },
            );
            // conditional so caches without a cap keep ledger counters
            // byte-identical to pre-eviction runs
            if evicted > 0 {
                jt.count("svc_cache_evictions", evicted as u64);
            }
        }
        job_span.end();
        let timings = StageTimings::for_span(&trace, job_id);
        Ok(JobOutput {
            report: CompileReport {
                job: name,
                style,
                digest,
                cache: CacheStatus::Miss,
                metrics,
                timings,
                code_bytes: code.len(),
            },
            code,
            program: Some(program),
        })
    }
}

/// Reads a `.slx` or `.mdl` model file, recording parse sub-spans on
/// `trace`.
fn load_model(path: &Path, trace: &Trace) -> Result<Model, String> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("slx") => {
            let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
            read_slx(&bytes, trace).map_err(|e| format!("{}: {e}", path.display()))
        }
        Some("mdl") => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            read_mdl(&text, trace).map_err(|e| format!("{}: {e}", path.display()))
        }
        _ => Err(format!("{}: expected a .slx or .mdl file", path.display())),
    }
}

/// The cache key: a content digest over the flattened model's canonical
/// `.mdl` serialization, the generator style, and every keyed option.
/// Taking [`KeyedOptions`] (not [`CompileOptions`]) makes it impossible
/// for an execution-only knob to split the cache.
pub(crate) fn cache_key(
    flat: &Model,
    style: GeneratorStyle,
    options: &KeyedOptions,
) -> ContentDigest {
    let mut digest = DigestWriter::new();
    digest.update(write_mdl(flat).as_bytes());
    digest.update(style.label().as_bytes());
    digest.update(
        format!(
            ";engine={:?};dead_ends={};coalesce={};shared_conv={};vectorize={:?};window_reuse={};profile={}",
            options.range.engine,
            options.range.eliminate_dead_ends,
            options.lower.coalesce_gap,
            options.emit.shared_conv_helper,
            options.emit.vectorize,
            options.lower.window_reuse,
            options.emit.profile
        )
        .as_bytes(),
    );
    digest.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use frodo_model::{Block, BlockKind};
    use frodo_ranges::Shape;

    fn gain_model(gain: f64) -> Model {
        let mut m = Model::new("g");
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(8),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain }));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, o, 0).unwrap();
        m
    }

    #[test]
    fn cache_key_separates_content_style_and_options() {
        let base = gain_model(2.0)
            .flattened(&frodo_obs::Trace::noop())
            .unwrap();
        let opts = KeyedOptions::default();
        let k0 = cache_key(&base, GeneratorStyle::Frodo, &opts);
        // same content, same key
        assert_eq!(k0, cache_key(&base, GeneratorStyle::Frodo, &opts));
        // different model content
        let other = gain_model(3.0)
            .flattened(&frodo_obs::Trace::noop())
            .unwrap();
        assert_ne!(k0, cache_key(&other, GeneratorStyle::Frodo, &opts));
        // different style
        assert_ne!(k0, cache_key(&base, GeneratorStyle::Hcg, &opts));
        // different lowering option
        let mut coalesce0 = opts;
        coalesce0.lower.coalesce_gap = 0;
        assert_ne!(k0, cache_key(&base, GeneratorStyle::Frodo, &coalesce0));
        // different emission option
        let mut shared = opts;
        shared.emit.shared_conv_helper = true;
        assert_ne!(k0, cache_key(&base, GeneratorStyle::Frodo, &shared));
        // different vectorization mode
        let mut vec = opts;
        vec.emit.vectorize = frodo_codegen::VectorMode::Batch(8);
        assert_ne!(k0, cache_key(&base, GeneratorStyle::Frodo, &vec));
        // different reuse setting
        let mut reuse = opts;
        reuse.lower.window_reuse = true;
        assert_ne!(k0, cache_key(&base, GeneratorStyle::Frodo, &reuse));
        // profiled emission must not share a slot with plain emission
        let mut prof = opts;
        prof.emit.profile = true;
        assert_ne!(k0, cache_key(&base, GeneratorStyle::Frodo, &prof));
    }

    #[test]
    fn single_compile_hit_and_no_cache_mode() {
        let service = CompileService::with_defaults();
        let spec = JobSpec::from_model("g", gain_model(2.0), GeneratorStyle::Frodo);
        let first = service.compile(spec).unwrap();
        assert_eq!(first.report.cache, CacheStatus::Miss);
        assert!(first.program.is_some());
        assert_eq!(first.report.metrics.blocks, 3);

        let again = service
            .compile(JobSpec::from_model(
                "g",
                gain_model(2.0),
                GeneratorStyle::Frodo,
            ))
            .unwrap();
        assert_eq!(again.report.cache, CacheStatus::Memory);
        assert_eq!(again.code, first.code);
        assert!(again.program.is_some());
        // hits skip analysis: no dfg/lower/emit time is attributed
        assert_eq!(again.report.timings.dfg, std::time::Duration::ZERO);
        assert_eq!(again.report.timings.emit, std::time::Duration::ZERO);

        let uncached = CompileService::new(ServiceConfig {
            no_cache: true,
            ..ServiceConfig::default()
        });
        let a = uncached
            .compile(JobSpec::from_model(
                "g",
                gain_model(2.0),
                GeneratorStyle::Frodo,
            ))
            .unwrap();
        let b = uncached
            .compile(JobSpec::from_model(
                "g",
                gain_model(2.0),
                GeneratorStyle::Frodo,
            ))
            .unwrap();
        assert_eq!(a.report.cache, CacheStatus::Miss);
        assert_eq!(b.report.cache, CacheStatus::Miss);
        assert_eq!(a.code, b.code);
        assert_eq!(uncached.cache_stats().entries, 0);
    }

    #[test]
    fn traced_jobs_share_a_sink_with_isolated_timings() {
        use std::time::Duration;
        let service = CompileService::with_defaults();
        let trace = Trace::new();
        let spec = |_: usize| {
            JobSpec::from_model("g", gain_model(2.0), GeneratorStyle::Frodo).with_trace(&trace)
        };
        let first = service.compile(spec(0)).unwrap();
        let again = service.compile(spec(1)).unwrap();
        let snap = trace.snapshot();
        assert_eq!(snap.spans.iter().filter(|s| s.name == "job:g").count(), 2);
        assert_eq!(trace.counter_total("cache_hits"), 1);
        // per-job timings come from each job's own subtree, not the sum
        assert!(first.report.timings.emit > Duration::ZERO);
        assert_eq!(again.report.timings.emit, Duration::ZERO);
        assert!(again.report.timings.cache > Duration::ZERO);
    }

    #[test]
    fn verified_compile_passes_and_records_the_stage() {
        let service = CompileService::new(ServiceConfig {
            no_cache: true,
            ..ServiceConfig::default()
        });
        let trace = Trace::new();
        let spec = JobSpec::from_model("g", gain_model(2.0), GeneratorStyle::Frodo)
            .with_options(CompileOptions::builder().verify(true).build())
            .with_trace(&trace);
        let out = service.compile(spec).unwrap();
        assert!(!out.code.is_empty());
        assert!(trace.counter_total("verify_stmts") > 0);
        assert!(trace.counter_total("verify_buffers") > 0);
        assert_eq!(trace.counter_total("verify_outputs"), 1);
        assert_eq!(trace.counter_total("verify_diagnostics"), 0);
        assert!(trace.snapshot().spans.iter().any(|s| s.name == "verify"));
    }

    #[test]
    fn analyze_option_runs_the_dataflow_stage_and_passes_clean_models() {
        let trace = Trace::new();
        let spec = JobSpec::from_model("g", gain_model(3.0), GeneratorStyle::Frodo)
            .with_options(CompileOptions::builder().analyze(true).build())
            .with_trace(&trace);
        let out = CompileService::new(ServiceConfig {
            no_cache: true,
            ..ServiceConfig::default()
        })
        .compile(spec)
        .unwrap();
        assert!(!out.code.is_empty());
        assert!(trace.counter_total("analyze_stmts") > 0);
        assert!(trace.counter_total("analyze_schedule_units") > 0);
        assert_eq!(trace.counter_total("analyze_diagnostics"), 0);
        assert_eq!(trace.counter_total("analyze_residual_elements"), 0);
        assert!(trace.snapshot().spans.iter().any(|s| s.name == "analyze"));
    }

    #[test]
    fn cache_key_is_invariant_under_every_exec_option() {
        // the key's signature only admits KeyedOptions, so any combination
        // of exec knobs maps to the same key by construction; assert it
        // end to end through the builder anyway
        let base = gain_model(2.0)
            .flattened(&frodo_obs::Trace::noop())
            .unwrap();
        let plain = CompileOptions::default();
        let exec_heavy = CompileOptions::builder()
            .intra_threads(7)
            .verify(true)
            .timeout_ms(1234)
            .build();
        assert_eq!(plain.keyed, exec_heavy.keyed);
        assert_ne!(plain.exec, exec_heavy.exec);
        assert_eq!(
            cache_key(&base, GeneratorStyle::Frodo, &plain.keyed),
            cache_key(&base, GeneratorStyle::Frodo, &exec_heavy.keyed)
        );
        // every ExecOptions field, one at a time
        for exec in [
            ExecOptions {
                intra_threads: 3,
                ..ExecOptions::default()
            },
            ExecOptions {
                verify: true,
                ..ExecOptions::default()
            },
            ExecOptions {
                analyze: true,
                ..ExecOptions::default()
            },
            ExecOptions {
                timeout_ms: 99,
                ..ExecOptions::default()
            },
        ] {
            let opts = CompileOptions {
                keyed: plain.keyed,
                exec,
            };
            assert_eq!(
                cache_key(&base, GeneratorStyle::Frodo, &plain.keyed),
                cache_key(&base, GeneratorStyle::Frodo, &opts.keyed)
            );
        }
    }

    #[test]
    fn builder_and_bad_path_errors() {
        let service = CompileService::with_defaults();
        let err = service
            .compile(JobSpec::from_builder("nope", GeneratorStyle::Frodo, || {
                Err("builder says no".to_string())
            }))
            .unwrap_err();
        assert!(matches!(err, JobError::Load { .. }));
        assert_eq!(err.job(), "nope");

        let err = service
            .compile(JobSpec::from_path(
                "/does/not/exist.mdl",
                GeneratorStyle::Frodo,
            ))
            .unwrap_err();
        assert!(matches!(err, JobError::Load { .. }));
    }

    #[test]
    fn batch_preserves_submission_order_and_isolates_panics() {
        let service = CompileService::new(ServiceConfig {
            workers: 3,
            ..ServiceConfig::default()
        });
        let specs = vec![
            JobSpec::from_model("a", gain_model(1.0), GeneratorStyle::Frodo),
            JobSpec::from_builder("boom", GeneratorStyle::Frodo, || {
                panic!("deliberate test panic")
            }),
            JobSpec::from_model("c", gain_model(4.0), GeneratorStyle::Frodo),
        ];
        let report = service.compile_batch(specs);
        assert_eq!(report.jobs.len(), 3);
        assert_eq!(report.jobs[0].as_ref().unwrap().report.job, "a");
        match &report.jobs[1] {
            Err(JobError::Panicked { job, message }) => {
                assert_eq!(job, "boom");
                assert!(message.contains("deliberate test panic"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
        assert_eq!(report.jobs[2].as_ref().unwrap().report.job, "c");
        assert_eq!(report.succeeded(), 2);
        assert_eq!(report.failed(), 1);
        let table = report.render_table();
        assert!(table.contains("boom"));
        assert!(table.contains("2 ok, 1 failed"));
        let lines = report.machine_lines();
        assert!(lines.contains("frodo-batch jobs=3 ok=2 failed=1"));
    }
}
