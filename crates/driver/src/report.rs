//! Per-job and per-batch compilation reports: stage timings, redundancy
//! counters, and the human/machine renderings.

use crate::cache::{CacheStats, CacheStatus};
use crate::{JobError, JobOutput};
use frodo_codegen::GeneratorStyle;
use frodo_core::Analysis;
use frodo_slx::fnv::ContentDigest;
use std::fmt::Write as _;
use std::time::Duration;

/// Monotonic wall-clock cost of each pipeline stage for one job.
///
/// Stages a cache hit skips (everything from `dfg` on) stay at zero; the
/// stages that always run (`parse`, `flatten`, `hash`) are measured on
/// hits too, so the table shows what a hit actually costs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Model acquisition: file read + `.slx`/`.mdl` parse, or running a
    /// programmatic builder.
    pub parse: Duration,
    /// Subsystem flattening of the parsed model.
    pub flatten: Duration,
    /// Content-digest computation over the flattened model + options.
    pub hash: Duration,
    /// Graph construction (validate, shape inference, adjacency).
    pub dfg: Duration,
    /// I/O-mapping derivation.
    pub iomap: Duration,
    /// Algorithm 1 (calculation ranges) + optimizable-block classification.
    pub algorithm1: Duration,
    /// Lowering to the loop IR.
    pub lower: Duration,
    /// C emission.
    pub emit: Duration,
}

impl StageTimings {
    /// Stage names and durations in pipeline order.
    pub fn rows(&self) -> [(&'static str, Duration); 8] {
        [
            ("parse", self.parse),
            ("flatten", self.flatten),
            ("hash", self.hash),
            ("dfg", self.dfg),
            ("iomap", self.iomap),
            ("algorithm1", self.algorithm1),
            ("lower", self.lower),
            ("emit", self.emit),
        ]
    }

    /// Sum of all stages.
    pub fn total(&self) -> Duration {
        self.rows().iter().map(|&(_, d)| d).sum()
    }
}

/// Redundancy-elimination counters for one job, lifted from the analysis
/// classification (`OptimizationReport`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobMetrics {
    /// Blocks analyzed (flattened model).
    pub blocks: usize,
    /// Blocks whose calculation range shrank.
    pub optimizable_blocks: usize,
    /// Total output elements across all ports.
    pub total_elements: usize,
    /// Element computations eliminated by Algorithm 1.
    pub eliminated_elements: usize,
}

impl JobMetrics {
    /// Extracts the counters from a completed analysis.
    pub fn from_analysis(analysis: &Analysis) -> Self {
        let report = analysis.report();
        JobMetrics {
            blocks: report.stats().len(),
            optimizable_blocks: report.optimizable_blocks().len(),
            total_elements: report.total_elements(),
            eliminated_elements: report.total_eliminated(),
        }
    }
}

/// Everything the service reports about one compiled job, next to the
/// generated code itself.
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// Job display name.
    pub job: String,
    /// Generator style the job compiled with.
    pub style: GeneratorStyle,
    /// Content digest of the flattened model + options (the cache key).
    pub digest: ContentDigest,
    /// Whether this job hit the cache, and which layer.
    pub cache: CacheStatus,
    /// Redundancy counters.
    pub metrics: JobMetrics,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// Size of the emitted C, in bytes.
    pub code_bytes: usize,
}

/// The result of one batch submission.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job results, in submission order.
    pub jobs: Vec<Result<JobOutput, JobError>>,
    /// Wall-clock duration of the whole batch.
    pub wall: Duration,
    /// Worker threads the batch ran on.
    pub workers: usize,
    /// Cumulative service cache statistics after the batch.
    pub cache: CacheStats,
}

impl BatchReport {
    /// Jobs that completed successfully.
    pub fn succeeded(&self) -> usize {
        self.jobs.iter().filter(|j| j.is_ok()).count()
    }

    /// Jobs that failed (including panics).
    pub fn failed(&self) -> usize {
        self.jobs.len() - self.succeeded()
    }

    /// Successful jobs that were served from the cache (either layer).
    pub fn cache_hits(&self) -> usize {
        self.jobs
            .iter()
            .filter_map(|j| j.as_ref().ok())
            .filter(|o| o.report.cache.is_hit())
            .count()
    }

    /// Successful jobs that were compiled from scratch.
    pub fn cache_misses(&self) -> usize {
        self.succeeded() - self.cache_hits()
    }

    /// The human-readable batch table: one row per job with cache status,
    /// counters, and per-stage timings, plus a summary line.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:<9} {:<6} {:>6} {:>5} {:>13} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
            "job",
            "style",
            "cache",
            "blocks",
            "opt",
            "elim/total",
            "parse",
            "flatten",
            "dfg",
            "iomap",
            "alg1",
            "lower",
            "emit",
            "total",
            "code"
        );
        for job in &self.jobs {
            match job {
                Ok(o) => {
                    let r = &o.report;
                    let t = &r.timings;
                    let _ = writeln!(
                        out,
                        "{:<14} {:<9} {:<6} {:>6} {:>5} {:>13} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}B",
                        r.job,
                        r.style.label(),
                        r.cache.label(),
                        r.metrics.blocks,
                        r.metrics.optimizable_blocks,
                        format!(
                            "{}/{}",
                            r.metrics.eliminated_elements, r.metrics.total_elements
                        ),
                        fmt_duration(t.parse),
                        fmt_duration(t.flatten),
                        fmt_duration(t.dfg),
                        fmt_duration(t.iomap),
                        fmt_duration(t.algorithm1),
                        fmt_duration(t.lower),
                        fmt_duration(t.emit),
                        fmt_duration(t.total()),
                        r.code_bytes
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "{:<14} ERROR  {e}", e.job());
                }
            }
        }
        let _ = writeln!(
            out,
            "batch: {} jobs, {} ok, {} failed; {} cache hits / {} misses this batch \
             (service: {} hits, {} misses, {} entries); wall {} on {} worker{}",
            self.jobs.len(),
            self.succeeded(),
            self.failed(),
            self.cache_hits(),
            self.cache_misses(),
            self.cache.hits,
            self.cache.misses,
            self.cache.entries,
            fmt_duration(self.wall),
            self.workers,
            if self.workers == 1 { "" } else { "s" }
        );
        out
    }

    /// The machine-readable rendering: one `frodo-job` line per job and a
    /// closing `frodo-batch` line, all `key=value` pairs with durations in
    /// integer nanoseconds.
    pub fn machine_lines(&self) -> String {
        let mut out = String::new();
        for job in &self.jobs {
            match job {
                Ok(o) => {
                    let r = &o.report;
                    let _ = write!(
                        out,
                        "frodo-job job={} style={} cache={} digest={} blocks={} optimizable={} \
                         elements={} eliminated={} code_bytes={}",
                        machine_token(&r.job),
                        r.style.label(),
                        r.cache.label(),
                        r.digest,
                        r.metrics.blocks,
                        r.metrics.optimizable_blocks,
                        r.metrics.total_elements,
                        r.metrics.eliminated_elements,
                        r.code_bytes
                    );
                    for (name, d) in r.timings.rows() {
                        let _ = write!(out, " {name}_ns={}", d.as_nanos());
                    }
                    let _ = writeln!(out, " total_ns={}", r.timings.total().as_nanos());
                }
                Err(e) => {
                    let _ = writeln!(
                        out,
                        "frodo-job job={} error={:?}",
                        machine_token(e.job()),
                        e.to_string()
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "frodo-batch jobs={} ok={} failed={} hits={} misses={} workers={} wall_ns={}",
            self.jobs.len(),
            self.succeeded(),
            self.failed(),
            self.cache_hits(),
            self.cache_misses(),
            self.workers,
            self.wall.as_nanos()
        );
        out
    }
}

/// Replaces whitespace so a job name stays a single `key=value` token.
fn machine_token(s: &str) -> String {
    s.replace(char::is_whitespace, "_")
}

/// Formats a duration compactly for the human table (ns/us/ms/s).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_total_sums_rows() {
        let t = StageTimings {
            parse: Duration::from_nanos(1),
            flatten: Duration::from_nanos(2),
            hash: Duration::from_nanos(3),
            dfg: Duration::from_nanos(4),
            iomap: Duration::from_nanos(5),
            algorithm1: Duration::from_nanos(6),
            lower: Duration::from_nanos(7),
            emit: Duration::from_nanos(8),
        };
        assert_eq!(t.total(), Duration::from_nanos(36));
        assert_eq!(t.rows().len(), 8);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(17)), "17ns");
        assert_eq!(fmt_duration(Duration::from_micros(17)), "17.0us");
        assert_eq!(fmt_duration(Duration::from_millis(17)), "17.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(17)), "17.00s");
    }

    #[test]
    fn machine_token_has_no_spaces() {
        assert_eq!(machine_token("a b\tc"), "a_b_c");
    }
}
