//! Per-job and per-batch compilation reports: stage timings, redundancy
//! counters, and the human/machine renderings.

use crate::cache::{CacheStats, CacheStatus};
use crate::{JobError, JobOutput};
use frodo_codegen::GeneratorStyle;
use frodo_core::Analysis;
use frodo_slx::fnv::ContentDigest;
use std::fmt::Write as _;
use std::time::Duration;

// The one per-stage timing type of the workspace lives in `frodo-obs`
// and is *derived* from the job's trace; re-exported here so driver
// consumers keep their import paths.
use frodo_obs::Trace;
pub use frodo_obs::{fmt_duration, LedgerEntry, ServiceMetrics, StageTimings};

/// Redundancy-elimination counters for one job, lifted from the analysis
/// classification (`OptimizationReport`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobMetrics {
    /// Blocks analyzed (flattened model).
    pub blocks: usize,
    /// Blocks whose calculation range shrank.
    pub optimizable_blocks: usize,
    /// Total output elements across all ports.
    pub total_elements: usize,
    /// Element computations eliminated by Algorithm 1.
    pub eliminated_elements: usize,
}

impl JobMetrics {
    /// Extracts the counters from a completed analysis.
    pub fn from_analysis(analysis: &Analysis) -> Self {
        let report = analysis.report();
        JobMetrics {
            blocks: report.stats().len(),
            optimizable_blocks: report.optimizable_blocks().len(),
            total_elements: report.total_elements(),
            eliminated_elements: report.total_eliminated(),
        }
    }
}

/// Everything the service reports about one compiled job, next to the
/// generated code itself.
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// Job display name.
    pub job: String,
    /// Generator style the job compiled with.
    pub style: GeneratorStyle,
    /// Content digest of the flattened model + options (the cache key).
    pub digest: ContentDigest,
    /// Whether this job hit the cache, and which layer.
    pub cache: CacheStatus,
    /// Redundancy counters.
    pub metrics: JobMetrics,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// Size of the emitted C, in bytes.
    pub code_bytes: usize,
}

/// The result of one batch submission.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job results, in submission order.
    pub jobs: Vec<Result<JobOutput, JobError>>,
    /// Wall-clock duration of the whole batch.
    pub wall: Duration,
    /// Worker threads the batch ran on.
    pub workers: usize,
    /// Cumulative service cache statistics after the batch.
    pub cache: CacheStats,
    /// The trace the batch recorded into, when one was attached via
    /// [`crate::CompileService::compile_batch_traced`]; `None` otherwise.
    pub trace: Option<Trace>,
}

impl BatchReport {
    /// Jobs that completed successfully.
    pub fn succeeded(&self) -> usize {
        self.jobs.iter().filter(|j| j.is_ok()).count()
    }

    /// Jobs that failed (including panics).
    pub fn failed(&self) -> usize {
        self.jobs.len() - self.succeeded()
    }

    /// Successful jobs that were served from the cache (either layer).
    pub fn cache_hits(&self) -> usize {
        self.jobs
            .iter()
            .filter_map(|j| j.as_ref().ok())
            .filter(|o| o.report.cache.is_hit())
            .count()
    }

    /// Successful jobs that were compiled from scratch.
    pub fn cache_misses(&self) -> usize {
        self.succeeded() - self.cache_hits()
    }

    /// The human-readable batch table: one row per job with cache status,
    /// counters, and per-stage timings, plus a summary line.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:<9} {:<6} {:>6} {:>5} {:>13} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
            "job",
            "style",
            "cache",
            "blocks",
            "opt",
            "elim/total",
            "parse",
            "flatten",
            "dfg",
            "iomap",
            "alg1",
            "lower",
            "emit",
            "total",
            "code"
        );
        for job in &self.jobs {
            match job {
                Ok(o) => {
                    let r = &o.report;
                    let t = &r.timings;
                    let _ = writeln!(
                        out,
                        "{:<14} {:<9} {:<6} {:>6} {:>5} {:>13} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}B",
                        r.job,
                        r.style.label(),
                        r.cache.label(),
                        r.metrics.blocks,
                        r.metrics.optimizable_blocks,
                        format!(
                            "{}/{}",
                            r.metrics.eliminated_elements, r.metrics.total_elements
                        ),
                        fmt_duration(t.parse),
                        fmt_duration(t.flatten),
                        fmt_duration(t.dfg),
                        fmt_duration(t.iomap),
                        fmt_duration(t.algorithm1()),
                        fmt_duration(t.lower),
                        fmt_duration(t.emit),
                        fmt_duration(t.total()),
                        r.code_bytes
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "{:<14} ERROR  {e}", e.job());
                    for line in frodo_verify::render_human(e.diagnostics()).lines() {
                        let _ = writeln!(out, "{:<14}   {line}", "");
                    }
                }
            }
        }
        let _ = writeln!(
            out,
            "batch: {} jobs, {} ok, {} failed; {} cache hits / {} misses this batch \
             (service: {} hits, {} misses, {} entries); wall {} on {} worker{}",
            self.jobs.len(),
            self.succeeded(),
            self.failed(),
            self.cache_hits(),
            self.cache_misses(),
            self.cache.hits,
            self.cache.misses,
            self.cache.entries,
            fmt_duration(self.wall),
            self.workers,
            if self.workers == 1 { "" } else { "s" }
        );
        out
    }

    /// The machine-readable rendering: one `frodo-job` line per job and a
    /// closing `frodo-batch` line, all `key=value` pairs with durations in
    /// integer nanoseconds.
    pub fn machine_lines(&self) -> String {
        let mut out = String::new();
        for job in &self.jobs {
            match job {
                Ok(o) => {
                    let r = &o.report;
                    let _ = write!(
                        out,
                        "frodo-job job={} style={} cache={} digest={} blocks={} optimizable={} \
                         elements={} eliminated={} code_bytes={}",
                        machine_token(&r.job),
                        r.style.label(),
                        r.cache.label(),
                        r.digest,
                        r.metrics.blocks,
                        r.metrics.optimizable_blocks,
                        r.metrics.total_elements,
                        r.metrics.eliminated_elements,
                        r.code_bytes
                    );
                    for (name, d) in r.timings.rows() {
                        let _ = write!(out, " {name}_ns={}", d.as_nanos());
                    }
                    let _ = writeln!(out, " total_ns={}", r.timings.total().as_nanos());
                }
                Err(e) => {
                    let _ = writeln!(
                        out,
                        "frodo-job job={} error={:?}",
                        machine_token(e.job()),
                        e.to_string()
                    );
                    for d in e.diagnostics() {
                        let _ = write!(
                            out,
                            "frodo-diag job={} code={} severity={}",
                            machine_token(e.job()),
                            d.code,
                            d.severity
                        );
                        if let Some(b) = &d.block {
                            let _ = write!(out, " block={}", machine_token(b));
                        }
                        if let Some(l) = &d.location {
                            let _ = write!(out, " location={}", machine_token(l));
                        }
                        let _ = writeln!(out, " message={:?}", d.message);
                    }
                }
            }
        }
        let _ = writeln!(
            out,
            "frodo-batch jobs={} ok={} failed={} hits={} misses={} workers={} wall_ns={}",
            self.jobs.len(),
            self.succeeded(),
            self.failed(),
            self.cache_hits(),
            self.cache_misses(),
            self.workers,
            self.wall.as_nanos()
        );
        out
    }

    /// Renders the recorded span tree when the batch ran with a trace
    /// attached; `None` for untraced batches.
    pub fn render_trace(&self) -> Option<String> {
        self.trace.as_ref().map(|t| t.render_tree())
    }

    /// Folds the batch's trace into a perf-ledger entry: per-stage
    /// summaries and deterministic counters from the aggregated spans,
    /// plus driver service metrics (this batch's cache traffic, queue
    /// wait, and worker utilization from the pool's `queue_wait_ns` /
    /// `worker_busy_ns` histograms). `None` for untraced batches — the
    /// ledger only records runs that were measured.
    pub fn ledger_entry(&self, label: &str, engine: &str, threads: u64) -> Option<LedgerEntry> {
        let trace = self.trace.as_ref()?;
        let snap = trace.snapshot();
        let agg = frodo_obs::aggregate(&snap);
        let wall_ns = self.wall.as_nanos() as u64;
        let mut entry =
            LedgerEntry::from_agg(&agg, label, engine, threads, self.workers as u64, wall_ns);
        let hist = |name: &str| {
            snap.histograms
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h)
        };
        let (queue_p50, queue_max) = hist("queue_wait_ns")
            .map(|h| (h.percentile(50.0) as u64, h.max() as u64))
            .unwrap_or((0, 0));
        let busy_ns = hist("worker_busy_ns").map(|h| h.sum() as u64).unwrap_or(0);
        let capacity_ns = wall_ns.saturating_mul(self.workers as u64);
        entry.svc = Some(ServiceMetrics {
            cache_hits: self.cache_hits() as u64,
            cache_misses: self.cache_misses() as u64,
            queue_wait_p50_ns: queue_p50,
            queue_wait_max_ns: queue_max,
            worker_busy_ns: busy_ns,
            utilization_pct: if capacity_ns == 0 {
                0.0
            } else {
                busy_ns as f64 / capacity_ns as f64 * 100.0
            },
            // cumulative over the service, like `self.cache` itself
            cache_evictions: self.cache.evictions as u64,
            job_timeouts: self
                .jobs
                .iter()
                .filter(|j| matches!(j, Err(JobError::Timeout { .. })))
                .count() as u64,
            // request-level rollups exist only on the daemon path
            ..Default::default()
        });
        Some(entry)
    }
}

/// Replaces whitespace so a job name stays a single `key=value` token.
fn machine_token(s: &str) -> String {
    s.replace(char::is_whitespace, "_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_token_has_no_spaces() {
        assert_eq!(machine_token("a b\tc"), "a_b_c");
    }
}
