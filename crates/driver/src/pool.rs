//! The `std::thread` worker pool behind batch submissions.
//!
//! Workers drain a shared job queue; each job runs under
//! [`std::panic::catch_unwind`], so a job that panics — a poisoned model,
//! a bug in a lowering path — surfaces as [`JobError::Panicked`] in its
//! result slot while every other job in the batch completes normally.

use crate::{CompileService, JobError, JobOutput, JobSpec};
use frodo_obs::Trace;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

/// Runs `specs` on `workers` threads, returning results in submission
/// order. `workers` is clamped to `1..=specs.len()`.
///
/// When `trace` is enabled, each dequeue records the job's queue wait
/// (nanoseconds from batch start until a worker picked it up) into the
/// `queue_wait_ns` histogram, and each worker records its total busy
/// time into `worker_busy_ns` — the raw material for the service-level
/// utilization metrics in the perf ledger.
pub(crate) fn run_batch(
    service: &CompileService,
    specs: Vec<JobSpec>,
    workers: usize,
    trace: &Trace,
) -> Vec<Result<JobOutput, JobError>> {
    let n = specs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let start = Instant::now();
    let queue: Mutex<VecDeque<(usize, JobSpec)>> =
        Mutex::new(specs.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<Result<JobOutput, JobError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut busy_ns = 0u128;
                loop {
                    let (idx, spec) = match queue.lock().unwrap().pop_front() {
                        Some(job) => job,
                        None => break,
                    };
                    trace.observe("queue_wait_ns", start.elapsed().as_nanos() as f64);
                    let job_start = Instant::now();
                    let job_name = spec.name.clone();
                    let result = match catch_unwind(AssertUnwindSafe(|| service.compile(spec))) {
                        Ok(result) => result,
                        Err(payload) => Err(JobError::Panicked {
                            job: job_name,
                            // deref past the Box: `&payload` would unsize the
                            // Box itself into `&dyn Any` and never downcast
                            message: panic_message(&*payload),
                        }),
                    };
                    busy_ns += job_start.elapsed().as_nanos();
                    *slots[idx].lock().unwrap() = Some(result);
                }
                if busy_ns > 0 {
                    trace.observe("worker_busy_ns", busy_ns as f64);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no panic escapes a worker")
                .expect("every queued job writes its slot")
        })
        .collect()
}

/// Extracts the conventional string payload from a caught panic.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_payload_extraction() {
        let payload = catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(panic_message(&*payload), "boom 7");
        let payload = catch_unwind(|| std::panic::panic_any(42i32)).unwrap_err();
        assert_eq!(panic_message(&*payload), "non-string panic payload");
    }
}
