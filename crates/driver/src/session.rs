//! Compile sessions: incremental recompilation across submissions.
//!
//! The artifact cache in [`CompileService`] is all-or-nothing: an edited
//! model misses and recompiles from scratch. A [`CompileSession`] holds
//! the finer-grained state — a per-region range cache
//! ([`frodo_core::incremental::RegionCache`]) and a lowered-fragment
//! cache ([`frodo_codegen::FragmentCache`]) — so resubmitting an edited
//! model re-runs Algorithm 1 and lowering only on the regions the edit
//! actually dirtied, while still emitting C byte-identical to a cold
//! compile.
//!
//! A session is pinned to one generator style and one set of
//! [`CompileOptions`] at construction: the per-region cache keys cover
//! model content, boundary demand, and keyed options, so a session never
//! needs the artifact cache's full-model digest to stay sound — but
//! pinning keeps the handle's contract obvious and the caches warm.
//!
//! ```
//! use frodo_codegen::GeneratorStyle;
//! use frodo_driver::CompileSession;
//! use frodo_model::{Block, BlockKind, Model};
//! use frodo_ranges::Shape;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gain = |g: f64| {
//!     let mut m = Model::new("twice");
//!     let i = m.add(Block::new("in", BlockKind::Inport { index: 0, shape: Shape::Vector(8) }));
//!     let b = m.add(Block::new("g", BlockKind::Gain { gain: g }));
//!     let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
//!     m.connect(i, 0, b, 0).unwrap();
//!     m.connect(b, 0, o, 0).unwrap();
//!     m
//! };
//! let mut session = CompileSession::builder(GeneratorStyle::Frodo).build();
//! let cold = session.compile("twice", gain(2.0), &frodo_obs::Trace::noop())?;
//! let warm = session.compile("twice", gain(2.0), &frodo_obs::Trace::noop())?;
//! assert_eq!(cold.code, warm.code);
//! assert_eq!(session.stats().last_region_hits, session.stats().last_region_total);
//! # Ok(())
//! # }
//! ```

use crate::report::{CompileReport, JobMetrics, StageTimings};
use crate::{cache_key, CacheStatus, CompileOptions, JobError, JobOutput};
use frodo_codegen::{emit_c_traced, generate_from_fragments, FragmentCache, GeneratorStyle};
use frodo_core::incremental::{analyze_incremental, RegionCache};
use frodo_model::Model;
use frodo_obs::Trace;

/// Default region-size bound (blocks per region). Small enough that a
/// one-block edit of a large model dirties a sliver of it; large enough
/// that per-region key overhead stays negligible.
pub const DEFAULT_REGION_MAX: usize = 24;

/// Builds a [`CompileSession`]; the style is fixed up front, options and
/// region sizing are optional.
#[derive(Debug)]
pub struct SessionBuilder {
    style: GeneratorStyle,
    options: CompileOptions,
    region_max: usize,
}

impl SessionBuilder {
    /// Compile options for every submission (keyed *and* exec halves;
    /// [`crate::ExecOptions::timeout_ms`] is ignored — sessions run on
    /// the calling thread).
    pub fn options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Region-size bound in blocks (`0` = one region per connected
    /// component). Defaults to [`DEFAULT_REGION_MAX`].
    pub fn region_max(mut self, max: usize) -> Self {
        self.region_max = max;
        self
    }

    /// Finishes the build with empty caches.
    pub fn build(self) -> CompileSession {
        CompileSession {
            style: self.style,
            options: self.options,
            region_max: self.region_max,
            regions: RegionCache::new(),
            fragments: FragmentCache::new(),
            stats: SessionStats::default(),
        }
    }
}

/// Cumulative and last-submission cache effectiveness of a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Submissions compiled through this session.
    pub compiles: u64,
    /// Regions in the last submission's partition.
    pub last_region_total: u64,
    /// Region range-cache hits in the last submission.
    pub last_region_hits: u64,
    /// Blocks re-analyzed in the last submission (the dirty cone).
    pub last_dirty_blocks: u64,
    /// Fragment-cache hits in the last submission.
    pub last_fragment_hits: u64,
    /// Cumulative region hits across all submissions.
    pub region_hits: u64,
    /// Cumulative region misses across all submissions.
    pub region_misses: u64,
}

/// A stateful compile handle: one style, one set of options, and warm
/// per-region caches carried across submissions. See the module docs.
///
/// Unlike [`CompileService`], a session compiles on the calling thread,
/// takes `&mut self` (the caches mutate), and always reports
/// [`CacheStatus::Miss`] — region reuse is reported through the trace's
/// `region_*`/`fragment_*` counters and [`CompileSession::stats`], not
/// the artifact-cache field.
///
/// [`CompileService`]: crate::CompileService
#[derive(Debug)]
pub struct CompileSession {
    style: GeneratorStyle,
    options: CompileOptions,
    region_max: usize,
    regions: RegionCache,
    fragments: FragmentCache,
    stats: SessionStats,
}

impl CompileSession {
    /// Starts building a session pinned to `style`.
    pub fn builder(style: GeneratorStyle) -> SessionBuilder {
        SessionBuilder {
            style,
            options: CompileOptions::default(),
            region_max: DEFAULT_REGION_MAX,
        }
    }

    /// The style this session compiles with.
    pub fn style(&self) -> GeneratorStyle {
        self.style
    }

    /// The options this session compiles with.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Cache effectiveness so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Drops all cached regions and fragments (the next submission is a
    /// cold compile).
    pub fn invalidate(&mut self) {
        self.regions.clear();
        self.fragments.clear();
    }

    /// Compiles one submission, reusing every region the caches still
    /// cover. The generated C is byte-identical to a cold
    /// [`CompileService::compile`] of the same model with the same style
    /// and options.
    ///
    /// Stage spans (`job:{name}` root, then parse-less flatten → hash →
    /// dfg → iomap → ranges → classify → lower → emit) land on `trace`;
    /// the `ranges` span carries `region_*` counters and the `lower` span
    /// `fragment_*` counters.
    ///
    /// # Errors
    ///
    /// [`JobError::Analysis`] when the pipeline rejects the model, and
    /// [`JobError::Verify`] when [`crate::ExecOptions::verify`] is on and
    /// the checker finds the lowered program unsound.
    ///
    /// [`CompileService::compile`]: crate::CompileService::compile
    pub fn compile(
        &mut self,
        name: &str,
        model: Model,
        trace: &Trace,
    ) -> Result<JobOutput, JobError> {
        let trace = if trace.is_enabled() {
            trace.clone()
        } else {
            Trace::new()
        };
        let job_span = trace.span(&format!("job:{name}"));
        let job_id = job_span.id();
        let jt = job_span.trace();

        let flat = model.flattened(&jt).map_err(|e| JobError::Analysis {
            job: name.to_string(),
            message: e.to_string(),
        })?;

        // same digest a cold compile would report, so ledgers and clients
        // can correlate incremental and cold artifacts
        let digest = {
            let _s = jt.span("hash");
            cache_key(&flat, self.style, &self.options.keyed)
        };

        let inc = analyze_incremental(
            flat,
            self.options.keyed.range,
            self.region_max,
            &mut self.regions,
            &jt,
        )
        .map_err(|e| JobError::Analysis {
            job: name.to_string(),
            message: e.to_string(),
        })?;

        let (program, frag_stats) = generate_from_fragments(
            &inc.analysis,
            self.style,
            self.options.keyed.lower,
            &inc.regions,
            &mut self.fragments,
            &jt,
        );

        if self.options.exec.verify {
            let span = jt.span("verify");
            let soundness = frodo_verify::check_compile(&inc.analysis, &program);
            span.count("verify_stmts", soundness.stmts_checked as u64);
            span.count("verify_buffers", soundness.buffers_checked as u64);
            span.count("verify_outputs", soundness.outputs_checked as u64);
            span.count("verify_diagnostics", soundness.diagnostics.len() as u64);
            if !soundness.is_sound() {
                return Err(JobError::Verify {
                    job: name.to_string(),
                    diagnostics: soundness.diagnostics,
                });
            }
        }

        let threads = self.options.resolved_intra_threads();
        let code = emit_c_traced(&program, self.options.keyed.emit, threads, &jt);

        self.stats.compiles += 1;
        self.stats.last_region_total = inc.stats.regions;
        self.stats.last_region_hits = inc.stats.hits;
        self.stats.last_dirty_blocks = inc.stats.dirty_blocks;
        self.stats.last_fragment_hits = frag_stats.hits;
        self.stats.region_hits += inc.stats.hits;
        self.stats.region_misses += inc.stats.misses;

        let metrics = JobMetrics::from_analysis(&inc.analysis);
        job_span.end();
        let timings = StageTimings::for_span(&trace, job_id);
        Ok(JobOutput {
            report: CompileReport {
                job: name.to_string(),
                style: self.style,
                digest,
                cache: CacheStatus::Miss,
                metrics,
                timings,
                code_bytes: code.len(),
            },
            code,
            program: Some(program),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileService, JobSpec, ServiceConfig};
    use frodo_model::{Block, BlockKind};
    use frodo_ranges::Shape;

    fn chain(edited_gain: f64) -> Model {
        let mut m = Model::new("chain");
        let mut prev = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(16),
            },
        ));
        for k in 0..40 {
            let gain = if k == 20 { edited_gain } else { 2.0 };
            let g = m.add(Block::new(format!("g{k}"), BlockKind::Gain { gain }));
            m.connect(prev, 0, g, 0).unwrap();
            prev = g;
        }
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(prev, 0, o, 0).unwrap();
        m
    }

    fn cold_code(model: Model) -> String {
        let service = CompileService::new(ServiceConfig {
            no_cache: true,
            ..ServiceConfig::default()
        });
        service
            .compile(JobSpec::from_model("chain", model, GeneratorStyle::Frodo))
            .unwrap()
            .code
    }

    #[test]
    fn session_recompile_is_byte_identical_to_cold() {
        let mut session = CompileSession::builder(GeneratorStyle::Frodo)
            .region_max(8)
            .build();
        let noop = Trace::noop();
        let first = session.compile("chain", chain(2.0), &noop).unwrap();
        assert_eq!(first.code, cold_code(chain(2.0)));
        assert_eq!(session.stats().last_region_hits, 0);

        // identical resubmission: everything replays
        let again = session.compile("chain", chain(2.0), &noop).unwrap();
        assert_eq!(again.code, first.code);
        let s = session.stats();
        assert_eq!(s.last_region_hits, s.last_region_total);

        // a one-block parameter edit dirties exactly one region, and the
        // output still matches a cold compile of the edited model
        let edited = session.compile("chain", chain(9.0), &noop).unwrap();
        assert_eq!(edited.code, cold_code(chain(9.0)));
        let s = session.stats();
        assert_eq!(s.last_region_total - s.last_region_hits, 1);
        assert!(s.last_dirty_blocks <= 8);
        // reports carry the same digest a cold compile would
        assert_ne!(edited.report.digest, first.report.digest);
    }

    #[test]
    fn session_records_region_and_fragment_counters() {
        let mut session = CompileSession::builder(GeneratorStyle::Frodo)
            .region_max(8)
            .build();
        let noop = Trace::noop();
        session.compile("chain", chain(2.0), &noop).unwrap();
        let trace = Trace::new();
        session.compile("chain", chain(2.0), &trace).unwrap();
        assert!(trace.counter_total("region_hits") > 0);
        assert_eq!(trace.counter_total("region_misses"), 0);
        assert!(trace.counter_total("fragment_hits") > 0);
        assert_eq!(trace.counter_total("fragment_misses"), 0);
        assert!(trace
            .snapshot()
            .spans
            .iter()
            .any(|s| s.name.starts_with("job:")));
    }

    #[test]
    fn verify_on_session_passes_for_sound_programs() {
        let mut session = CompileSession::builder(GeneratorStyle::Frodo)
            .options(CompileOptions::builder().verify(true).build())
            .build();
        let out = session
            .compile("chain", chain(2.0), &Trace::noop())
            .unwrap();
        assert!(!out.code.is_empty());
    }

    #[test]
    fn invalidate_forces_a_cold_recompile() {
        let mut session = CompileSession::builder(GeneratorStyle::Frodo).build();
        session
            .compile("chain", chain(2.0), &Trace::noop())
            .unwrap();
        session.invalidate();
        session
            .compile("chain", chain(2.0), &Trace::noop())
            .unwrap();
        assert_eq!(session.stats().last_region_hits, 0);
    }
}
