//! The shared job lifecycle: a long-lived worker pool with admission
//! control, fairness, timeouts, and graceful drain.
//!
//! PR 1's batch pool spun up scoped workers per `compile_batch` call and
//! tore them down when the batch returned. A long-running service needs
//! the inverse shape — one pool, many concurrent submitters — so the
//! lifecycle lives here as [`JobPool`]:
//!
//! - **Admission control** — a bounded queue ([`PoolConfig::queue_cap`]).
//!   A full queue rejects the submission with [`SubmitError::Full`]
//!   carrying a `retry_after_ms` hint instead of blocking the caller or
//!   dropping the job silently.
//! - **Fairness** — jobs queue per client id and workers dequeue
//!   round-robin across clients, so one client's thousand-job batch
//!   cannot starve another client's single compile.
//! - **Panic isolation** — each job runs under
//!   [`std::panic::catch_unwind`]; a poisoned job becomes
//!   [`JobError::Panicked`] in its own result, nothing else is affected.
//! - **Timeouts** — a job with [`CompileOptions::timeout_ms`] set runs on
//!   a detached runner thread; if it overruns, the worker abandons it,
//!   fails the job with [`JobError::Timeout`], and records a
//!   `svc_job_timeouts` counter, so a hung job cannot occupy a worker
//!   forever.
//! - **Graceful drain** — [`JobPool::drain`] rejects new submissions and
//!   blocks until queued and in-flight jobs complete;
//!   [`JobPool::shutdown`] drains and joins the workers.
//!
//! When the pool's trace is enabled, each dequeue records the job's queue
//! wait into the `queue_wait_ns` histogram and each worker its cumulative
//! busy time into `worker_busy_ns` — the raw material for the ledger's
//! service metrics.
//!
//! [`CompileOptions::timeout_ms`]: crate::CompileOptions::timeout_ms

use crate::{CompileService, JobError, JobOutput, JobSpec};
use frodo_obs::Trace;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Pool sizing and admission policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Queued (not yet running) jobs admitted before submissions are
    /// rejected with [`SubmitError::Full`]; `0` means unbounded.
    pub queue_cap: usize,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The pool is draining or shut down; it will never accept this job.
    Draining,
    /// The admission queue is at capacity. Back off and retry.
    Full {
        /// Jobs queued at rejection time.
        queued: usize,
        /// Suggested backoff before retrying, scaled to the backlog.
        retry_after_ms: u64,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Draining => write!(f, "pool is draining"),
            SubmitError::Full {
                queued,
                retry_after_ms,
            } => write!(
                f,
                "queue full ({queued} queued); retry after {retry_after_ms}ms"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A claim on one admitted job's eventual result.
#[derive(Debug)]
pub struct JobTicket {
    rx: mpsc::Receiver<Result<JobOutput, JobError>>,
    job: String,
}

impl JobTicket {
    /// Blocks until the job completes and returns its result.
    pub fn wait(self) -> Result<JobOutput, JobError> {
        let JobTicket { rx, job } = self;
        rx.recv().unwrap_or_else(|_| {
            Err(JobError::Panicked {
                job,
                message: "worker disappeared before delivering a result".to_string(),
            })
        })
    }
}

/// A point-in-time view of the pool, for status endpoints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Worker threads serving the pool.
    pub workers: usize,
    /// Jobs admitted but not yet picked up.
    pub queue_depth: usize,
    /// Jobs currently executing on workers.
    pub in_flight: usize,
    /// Jobs admitted since the pool started.
    pub submitted: u64,
    /// Jobs completed (successfully or not) since the pool started.
    pub completed: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Jobs failed with [`JobError::Timeout`].
    pub timeouts: u64,
    /// Cumulative worker busy nanoseconds.
    pub busy_ns: u64,
    /// Whether the pool is draining (rejecting new submissions).
    pub draining: bool,
}

struct QueuedJob {
    spec: JobSpec,
    enqueued: Instant,
    tx: mpsc::Sender<Result<JobOutput, JobError>>,
}

#[derive(Default)]
struct PoolState {
    /// Per-client FIFO queues in round-robin order: workers pop one job
    /// from the front client, then rotate it to the back.
    ring: VecDeque<(u64, VecDeque<QueuedJob>)>,
    queued: usize,
    in_flight: usize,
    draining: bool,
    stopping: bool,
}

struct PoolInner {
    service: CompileService,
    trace: Trace,
    workers: usize,
    queue_cap: usize,
    state: Mutex<PoolState>,
    /// Signaled when a job is queued or the pool is stopping.
    ready: Condvar,
    /// Signaled when the pool goes idle (nothing queued or in flight).
    idle: Condvar,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    timeouts: AtomicU64,
    busy_ns: AtomicU64,
}

/// A long-lived worker pool over one [`CompileService`]. See the module
/// docs for the lifecycle it implements.
pub struct JobPool {
    inner: Arc<PoolInner>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for JobPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobPool")
            .field("workers", &self.inner.workers)
            .field("queue_cap", &self.inner.queue_cap)
            .finish()
    }
}

impl JobPool {
    /// Starts `config.workers` workers over a clone of `service` (the
    /// artifact cache is shared). Jobs record into `trace` semantics as
    /// in [`CompileService::compile`]; the pool additionally records its
    /// queue-wait and busy-time histograms there.
    pub fn start(service: &CompileService, config: PoolConfig, trace: &Trace) -> Self {
        let workers = if config.workers > 0 {
            config.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let inner = Arc::new(PoolInner {
            service: service.clone(),
            trace: trace.clone(),
            workers,
            queue_cap: config.queue_cap,
            state: Mutex::new(PoolState::default()),
            ready: Condvar::new(),
            idle: Condvar::new(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
        });
        let threads = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        JobPool {
            inner,
            threads: Mutex::new(threads),
        }
    }

    /// Submits one job on behalf of `client`. Admission is immediate:
    /// the call never blocks on queue space — a full queue returns
    /// [`SubmitError::Full`] with a backoff hint instead.
    pub fn submit(&self, client: u64, spec: JobSpec) -> Result<JobTicket, SubmitError> {
        let inner = &self.inner;
        let mut state = inner.state.lock().unwrap();
        if state.draining || state.stopping {
            inner.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Draining);
        }
        if inner.queue_cap > 0 && state.queued >= inner.queue_cap {
            inner.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Full {
                queued: state.queued,
                retry_after_ms: retry_hint(state.queued, inner.workers),
            });
        }
        let job = spec.name.clone();
        let (tx, rx) = mpsc::channel();
        let queued_job = QueuedJob {
            spec,
            enqueued: Instant::now(),
            tx,
        };
        match state.ring.iter_mut().find(|(id, _)| *id == client) {
            Some((_, jobs)) => jobs.push_back(queued_job),
            None => {
                let mut jobs = VecDeque::new();
                jobs.push_back(queued_job);
                state.ring.push_back((client, jobs));
            }
        }
        state.queued += 1;
        inner.submitted.fetch_add(1, Ordering::Relaxed);
        drop(state);
        inner.ready.notify_one();
        Ok(JobTicket { rx, job })
    }

    /// Stops admitting jobs and blocks until everything queued or in
    /// flight has completed. Workers stay alive (for [`Self::shutdown`]
    /// to join); further submissions fail with [`SubmitError::Draining`].
    pub fn drain(&self) {
        let inner = &self.inner;
        let mut state = inner.state.lock().unwrap();
        state.draining = true;
        while state.queued > 0 || state.in_flight > 0 {
            state = inner.idle.wait(state).unwrap();
        }
    }

    /// Drains, then stops and joins the workers. Idempotent.
    pub fn shutdown(&self) {
        self.drain();
        {
            let mut state = self.inner.state.lock().unwrap();
            state.stopping = true;
        }
        self.inner.ready.notify_all();
        let threads = std::mem::take(&mut *self.threads.lock().unwrap());
        for t in threads {
            let _ = t.join();
        }
    }

    /// A point-in-time view for status endpoints.
    pub fn snapshot(&self) -> PoolSnapshot {
        let inner = &self.inner;
        let state = inner.state.lock().unwrap();
        PoolSnapshot {
            workers: inner.workers,
            queue_depth: state.queued,
            in_flight: state.in_flight,
            submitted: inner.submitted.load(Ordering::Relaxed),
            completed: inner.completed.load(Ordering::Relaxed),
            rejected: inner.rejected.load(Ordering::Relaxed),
            timeouts: inner.timeouts.load(Ordering::Relaxed),
            busy_ns: inner.busy_ns.load(Ordering::Relaxed),
            draining: state.draining,
        }
    }

    /// The worker count the pool runs with.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }
}

impl Drop for JobPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Backoff hint scaled to the backlog per worker, capped at a second.
fn retry_hint(queued: usize, workers: usize) -> u64 {
    let per_worker = (queued / workers.max(1)) as u64;
    ((per_worker + 1) * 25).min(1000)
}

fn worker_loop(inner: &PoolInner) {
    let mut busy_total_ns = 0u128;
    loop {
        let job = {
            let mut state = inner.state.lock().unwrap();
            loop {
                if let Some(job) = pop_round_robin(&mut state) {
                    break job;
                }
                if state.stopping {
                    if busy_total_ns > 0 {
                        inner.trace.observe("worker_busy_ns", busy_total_ns as f64);
                    }
                    return;
                }
                state = inner.ready.wait(state).unwrap();
            }
        };
        inner
            .trace
            .observe("queue_wait_ns", job.enqueued.elapsed().as_nanos() as f64);
        let started = Instant::now();
        let result = run_job(inner, job.spec);
        let elapsed = started.elapsed().as_nanos();
        busy_total_ns += elapsed;
        inner.busy_ns.fetch_add(elapsed as u64, Ordering::Relaxed);
        inner.completed.fetch_add(1, Ordering::Relaxed);
        // the submitter may have dropped its ticket; that's its business
        let _ = job.tx.send(result);
        let mut state = inner.state.lock().unwrap();
        state.in_flight -= 1;
        if state.queued == 0 && state.in_flight == 0 {
            inner.idle.notify_all();
        }
    }
}

/// Pops one job from the front client and rotates that client to the
/// back of the ring. Must run under the state lock.
fn pop_round_robin(state: &mut PoolState) -> Option<QueuedJob> {
    let (client, mut jobs) = state.ring.pop_front()?;
    let job = jobs.pop_front().expect("ring never holds empty queues");
    if !jobs.is_empty() {
        state.ring.push_back((client, jobs));
    }
    state.queued -= 1;
    state.in_flight += 1;
    Some(job)
}

/// Runs one job with panic isolation, and — when the job carries a
/// timeout budget — on a detached runner thread the worker abandons on
/// overrun.
fn run_job(inner: &PoolInner, spec: JobSpec) -> Result<JobOutput, JobError> {
    let timeout_ms = spec.options.exec.timeout_ms;
    let job = spec.name.clone();
    if timeout_ms == 0 {
        return run_isolated(&inner.service, spec, &job);
    }
    let (tx, rx) = mpsc::channel();
    let service = inner.service.clone();
    let runner_job = job.clone();
    std::thread::spawn(move || {
        let _ = tx.send(run_isolated(&service, spec, &runner_job));
    });
    match rx.recv_timeout(Duration::from_millis(timeout_ms)) {
        Ok(result) => result,
        Err(_) => {
            inner.timeouts.fetch_add(1, Ordering::Relaxed);
            inner.trace.count("svc_job_timeouts", 1);
            Err(JobError::Timeout { job, timeout_ms })
        }
    }
}

fn run_isolated(service: &CompileService, spec: JobSpec, job: &str) -> Result<JobOutput, JobError> {
    match catch_unwind(AssertUnwindSafe(|| service.compile(spec))) {
        Ok(result) => result,
        Err(payload) => Err(JobError::Panicked {
            job: job.to_string(),
            // deref past the Box: `&payload` would unsize the Box itself
            // into `&dyn Any` and never downcast
            message: panic_message(&*payload),
        }),
    }
}

/// Extracts the conventional string payload from a caught panic.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileOptions, ServiceConfig};
    use frodo_codegen::GeneratorStyle;
    use frodo_model::{Block, BlockKind, Model};
    use frodo_ranges::Shape;
    use std::sync::mpsc::Receiver;

    fn tiny_model(name: &str) -> Model {
        let mut m = Model::new(name);
        let i = m.add(Block::new(
            "in",
            BlockKind::Inport {
                index: 0,
                shape: Shape::Vector(4),
            },
        ));
        let g = m.add(Block::new("g", BlockKind::Gain { gain: 2.0 }));
        let o = m.add(Block::new("out", BlockKind::Outport { index: 0 }));
        m.connect(i, 0, g, 0).unwrap();
        m.connect(g, 0, o, 0).unwrap();
        m
    }

    /// A job that blocks in its builder until `gate` yields a value, so
    /// tests can hold a worker busy deterministically.
    fn gated_job(name: &str, gate: Receiver<()>) -> JobSpec {
        let model = tiny_model(name);
        JobSpec::from_builder(name, GeneratorStyle::Frodo, move || {
            gate.recv().map_err(|e| e.to_string())?;
            Ok(model)
        })
    }

    fn wait_until(pool: &JobPool, pred: impl Fn(PoolSnapshot) -> bool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !pred(pool.snapshot()) {
            assert!(Instant::now() < deadline, "pool never reached the state");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn full_queue_rejects_with_backoff_instead_of_blocking() {
        let service = CompileService::new(ServiceConfig {
            no_cache: true,
            ..ServiceConfig::default()
        });
        let pool = JobPool::start(
            &service,
            PoolConfig {
                workers: 1,
                queue_cap: 1,
            },
            &Trace::noop(),
        );
        let (open, gate) = mpsc::channel();
        let blocked = pool.submit(1, gated_job("blocked", gate)).unwrap();
        // wait until the worker holds it, so the queue slot is free
        wait_until(&pool, |s| s.in_flight == 1);
        let queued = pool.submit(
            1,
            JobSpec::from_model("q", tiny_model("q"), GeneratorStyle::Frodo),
        );
        let queued = queued.expect("one slot in the queue");
        let rejected = pool
            .submit(
                1,
                JobSpec::from_model("r", tiny_model("r"), GeneratorStyle::Frodo),
            )
            .unwrap_err();
        match rejected {
            SubmitError::Full {
                queued,
                retry_after_ms,
            } => {
                assert_eq!(queued, 1);
                assert!(retry_after_ms > 0);
            }
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(pool.snapshot().rejected, 1);
        open.send(()).unwrap();
        assert!(blocked.wait().is_ok());
        assert!(queued.wait().is_ok());
    }

    #[test]
    fn round_robin_interleaves_clients_under_one_worker() {
        let service = CompileService::new(ServiceConfig {
            no_cache: true,
            ..ServiceConfig::default()
        });
        let pool = JobPool::start(
            &service,
            PoolConfig {
                workers: 1,
                queue_cap: 0,
            },
            &Trace::noop(),
        );
        let order = Arc::new(Mutex::new(Vec::<String>::new()));
        let tracked = |name: &str| {
            let order = Arc::clone(&order);
            let model = tiny_model(name);
            let name = name.to_string();
            JobSpec::from_builder(name.clone(), GeneratorStyle::Frodo, move || {
                order.lock().unwrap().push(name);
                Ok(model)
            })
        };
        // hold the worker while both clients queue up
        let (open, gate) = mpsc::channel();
        let held = pool.submit(1, gated_job("held", gate)).unwrap();
        wait_until(&pool, |s| s.in_flight == 1);
        let mut tickets = vec![
            pool.submit(1, tracked("a1")).unwrap(),
            pool.submit(1, tracked("a2")).unwrap(),
            pool.submit(1, tracked("a3")).unwrap(),
            pool.submit(2, tracked("b1")).unwrap(),
        ];
        open.send(()).unwrap();
        assert!(held.wait().is_ok());
        for t in tickets.drain(..) {
            assert!(t.wait().is_ok());
        }
        // client 2's lone job ran second, not after all of client 1's
        let order = order.lock().unwrap().clone();
        assert_eq!(order, ["a1", "b1", "a2", "a3"]);
    }

    #[test]
    fn overrunning_job_times_out_without_occupying_the_worker() {
        let service = CompileService::new(ServiceConfig {
            no_cache: true,
            ..ServiceConfig::default()
        });
        let trace = Trace::new();
        let pool = JobPool::start(
            &service,
            PoolConfig {
                workers: 1,
                queue_cap: 0,
            },
            &trace,
        );
        // never opened: the job would hang forever without the timeout
        let (_open, gate) = mpsc::channel::<()>();
        let hung = pool
            .submit(
                1,
                gated_job("hung", gate)
                    .with_options(CompileOptions::builder().timeout_ms(50).build()),
            )
            .unwrap();
        match hung.wait() {
            Err(JobError::Timeout { job, timeout_ms }) => {
                assert_eq!(job, "hung");
                assert_eq!(timeout_ms, 50);
            }
            other => panic!("expected a timeout, got {other:?}"),
        }
        // the worker is free again: a normal job completes
        let ok = pool
            .submit(
                1,
                JobSpec::from_model("ok", tiny_model("ok"), GeneratorStyle::Frodo),
            )
            .unwrap();
        assert!(ok.wait().is_ok());
        assert_eq!(pool.snapshot().timeouts, 1);
        assert_eq!(trace.counter_total("svc_job_timeouts"), 1);
    }

    #[test]
    fn drain_completes_the_backlog_then_rejects() {
        let service = CompileService::new(ServiceConfig {
            no_cache: true,
            ..ServiceConfig::default()
        });
        let pool = JobPool::start(
            &service,
            PoolConfig {
                workers: 1,
                queue_cap: 0,
            },
            &Trace::noop(),
        );
        let tickets: Vec<JobTicket> = (0..4)
            .map(|i| {
                pool.submit(
                    1,
                    JobSpec::from_model(format!("m{i}"), tiny_model("m"), GeneratorStyle::Frodo),
                )
                .unwrap()
            })
            .collect();
        pool.drain();
        let snap = pool.snapshot();
        assert_eq!(snap.completed, 4);
        assert_eq!((snap.queue_depth, snap.in_flight), (0, 0));
        assert!(snap.draining);
        let err = pool
            .submit(
                1,
                JobSpec::from_model("late", tiny_model("m"), GeneratorStyle::Frodo),
            )
            .unwrap_err();
        assert_eq!(err, SubmitError::Draining);
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        pool.shutdown();
    }

    #[test]
    fn panic_payload_extraction() {
        let payload = catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(panic_message(&*payload), "boom 7");
        let payload = catch_unwind(|| std::panic::panic_any(42i32)).unwrap_err();
        assert_eq!(panic_message(&*payload), "non-string panic payload");
    }
}
