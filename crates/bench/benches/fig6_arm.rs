//! Criterion bench behind Figure 6: the cost-model evaluation itself for
//! the ARM profiles, per model and generator.
//!
//! Unlike `table2_x86` (which measures VM execution), this measures the
//! deterministic ARM-profile duration estimate — the quantity Figure 6's
//! bars are computed from — and reports it per (model, style) so regression
//! in either the generated programs or the cost model is caught.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frodo_bench::build_suite;
use frodo_sim::CostModel;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let suite = build_suite();
    let arm = [CostModel::arm_gcc(), CostModel::arm_clang()];
    let mut group = c.benchmark_group("fig6_arm");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(400));
    group.warm_up_time(std::time::Duration::from_millis(100));
    for entry in &suite {
        for cm in &arm {
            group.bench_with_input(
                BenchmarkId::new(entry.name, cm.label().replace('/', "_")),
                &entry.programs,
                |b, programs| {
                    b.iter(|| {
                        for (_, p) in programs {
                            black_box(cm.program_ns(black_box(p)));
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
