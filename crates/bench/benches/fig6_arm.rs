//! The bench behind Figure 6: the cost-model evaluation itself for the
//! ARM profiles, per model and generator.
//!
//! Unlike `table2_x86` (which measures VM execution), this measures the
//! deterministic ARM-profile duration estimate — the quantity Figure 6's
//! bars are computed from — and reports it per (model, cost model) so
//! regression in either the generated programs or the cost model is
//! caught. Programs come through the batch service, so this bench also
//! exercises the artifact cache.

use frodo_bench::{harness, programs_via_service};
use frodo_driver::CompileService;
use frodo_sim::CostModel;
use std::hint::black_box;

fn main() {
    let service = CompileService::with_defaults();
    let (suite, batch) = programs_via_service(&service);
    println!(
        "compiled {} programs via service: {} hits / {} misses",
        batch.jobs.len(),
        batch.cache_hits(),
        batch.cache_misses()
    );

    let arm = [CostModel::arm_gcc(), CostModel::arm_clang()];
    for entry in &suite {
        for cm in &arm {
            harness::bench(
                "fig6_arm",
                &format!("{}/{}", entry.name, cm.label().replace('/', "_")),
                || {
                    for (_, p) in &entry.programs {
                        black_box(cm.program_ns(black_box(p)));
                    }
                },
            );
        }
    }
}
