//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - **Algorithm-1 engine**: the paper's recursive formulation vs the
//!   iterative reverse-topological sweep (identical results, different
//!   analysis cost).
//! - **Dead-end elimination**: the optional extension beyond the paper's
//!   conservative full-range rule for unconsumed ports.
//! - **End-to-end generation**: the cost of FRODO's own pipeline (parse-to-
//!   program), which the paper claims is practical for deployment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frodo_codegen::{generate, GeneratorStyle};
use frodo_core::{determine_ranges, Analysis, IoMappings, RangeEngine, RangeOptions};
use frodo_graph::Dfg;
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let models = frodo_benchmodels::all();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(500));
    group.warm_up_time(std::time::Duration::from_millis(100));

    // biggest model exercises the analysis hardest
    let maintenance = models
        .iter()
        .find(|b| b.name == "Maintenance")
        .expect("suite contains Maintenance");
    let dfg = Dfg::new(maintenance.model.clone()).expect("analyzable");
    let maps = IoMappings::derive(&dfg);

    for engine in [RangeEngine::Recursive, RangeEngine::Iterative] {
        group.bench_with_input(
            BenchmarkId::new("algorithm1", format!("{engine:?}")),
            &engine,
            |b, &engine| {
                let opts = RangeOptions {
                    engine,
                    ..Default::default()
                };
                b.iter(|| black_box(determine_ranges(black_box(&dfg), black_box(&maps), opts)));
            },
        );
    }

    for (label, eliminate) in [("paper_rule", false), ("dead_end_elim", true)] {
        group.bench_with_input(
            BenchmarkId::new("dead_ends", label),
            &eliminate,
            |b, &eliminate| {
                let opts = RangeOptions {
                    eliminate_dead_ends: eliminate,
                    ..Default::default()
                };
                b.iter(|| black_box(determine_ranges(black_box(&dfg), black_box(&maps), opts)));
            },
        );
    }

    for bench in &models {
        group.bench_with_input(
            BenchmarkId::new("pipeline", bench.name),
            &bench.model,
            |b, model| {
                b.iter(|| {
                    let analysis = Analysis::run(black_box(model.clone())).expect("analyzes");
                    black_box(generate(&analysis, GeneratorStyle::Frodo))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
