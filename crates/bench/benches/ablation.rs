//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - **Algorithm-1 engine**: the paper's recursive formulation vs the
//!   iterative reverse-topological sweep (identical results, different
//!   analysis cost).
//! - **Dead-end elimination**: the optional extension beyond the paper's
//!   conservative full-range rule for unconsumed ports.
//! - **End-to-end generation**: the cost of FRODO's own pipeline (parse-to-
//!   program), which the paper claims is practical for deployment.

use frodo_bench::harness;
use frodo_codegen::{generate, GeneratorStyle};
use frodo_core::{determine_ranges, Analysis, IoMappings, RangeEngine, RangeOptions};
use frodo_graph::Dfg;
use std::hint::black_box;

fn main() {
    let models = frodo_benchmodels::all();

    // biggest model exercises the analysis hardest
    let maintenance = models
        .iter()
        .find(|b| b.name == "Maintenance")
        .expect("suite contains Maintenance");
    let dfg = Dfg::new(maintenance.model.clone(), &frodo_obs::Trace::noop()).expect("analyzable");
    let maps = IoMappings::derive(&dfg);

    for engine in [RangeEngine::Recursive, RangeEngine::Iterative] {
        let opts = RangeOptions {
            engine,
            ..Default::default()
        };
        harness::bench("ablation", &format!("algorithm1/{engine:?}"), || {
            black_box(determine_ranges(black_box(&dfg), black_box(&maps), opts));
        });
    }

    for (label, eliminate) in [("paper_rule", false), ("dead_end_elim", true)] {
        let opts = RangeOptions {
            eliminate_dead_ends: eliminate,
            ..Default::default()
        };
        harness::bench("ablation", &format!("dead_ends/{label}"), || {
            black_box(determine_ranges(black_box(&dfg), black_box(&maps), opts));
        });
    }

    for bench in &models {
        harness::bench("ablation", &format!("pipeline/{}", bench.name), || {
            let analysis = Analysis::run(black_box(bench.model.clone())).expect("analyzes");
            black_box(generate(
                &analysis,
                GeneratorStyle::Frodo,
                &frodo_obs::Trace::noop(),
            ));
        });
    }
}
