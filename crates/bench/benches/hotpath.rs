//! Analysis hot-path microbench: isolates the pipeline stages this repo's
//! intra-model parallelism targets — I/O-mapping derivation, Algorithm 1
//! range determination, and C emission — and times each at several thread
//! counts on the Table-1 models plus large synthetic models
//! (`frodo_benchmodels::random`) where the paper's benchmarks are too
//! small to show scaling.
//!
//! ```text
//! cargo bench -p frodo-bench --bench hotpath [-- [--quick] [--json out.json] [--ledger F]]
//! ```
//!
//! `--quick` runs a single sample per subject (the CI smoke path);
//! `--json PATH` additionally writes the per-(model, stage, threads)
//! medians as a JSON document (`BENCH_pr3.json` in this repo is a
//! committed run of it); `--ledger F` appends a perf-ledger entry
//! (label `bench:hotpath`, single-thread medians per stage) readable by
//! `frodo obs diff`/`report`.

use frodo_bench::harness;
use frodo_benchmodels::random::random_model;
use frodo_codegen::{emit_c_threaded, generate, CEmitOptions, GeneratorStyle};
use frodo_core::{determine_ranges, IoMappings, RangeEngine, RangeOptions};
use frodo_graph::Dfg;
use frodo_model::Model;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Thread counts each stage is timed at.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

struct Subject {
    name: String,
    model: Model,
}

fn subjects() -> Vec<Subject> {
    let mut out: Vec<Subject> = frodo_benchmodels::all()
        .into_iter()
        .map(|b| Subject {
            name: b.name.to_string(),
            model: b.model,
        })
        .collect();
    // Large feed-forward synthetics: wide levels, thousands of ports —
    // the regime intra-model parallelism exists for.
    for (seed, size) in [(11, 500), (7, 2000)] {
        out.push(Subject {
            name: format!("random_s{seed}_n{size}"),
            model: random_model(seed, size),
        });
    }
    out
}

struct Row {
    model: String,
    blocks: usize,
    stage: &'static str,
    threads: usize,
    median_ns: f64,
    iters: usize,
    samples: usize,
}

fn run<F: FnMut()>(quick: bool, group: &str, id: &str, mut f: F) -> (f64, usize, usize) {
    if quick {
        // one untimed warmup + one timed iteration: enough to prove the
        // path executes, which is all the CI smoke step needs
        f();
        let start = Instant::now();
        f();
        let ns = start.elapsed().as_nanos() as f64;
        println!("bench {group}/{id} once {ns:.0} ns/iter (quick)");
        (ns, 1, 1)
    } else {
        let m = harness::bench(group, id, f);
        (m.median_ns, m.iters, m.samples)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `cargo bench` forwards `--bench`; ignore it like the other targets
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .windows(2)
        .find(|w| w[0] == "--json")
        .map(|w| w[1].clone());
    let ledger_path = args
        .windows(2)
        .find(|w| w[0] == "--ledger")
        .map(|w| w[1].clone());

    let mut rows: Vec<Row> = Vec::new();

    for subject in subjects() {
        let blocks = subject.model.deep_len();
        let flat = subject
            .model
            .flattened(&frodo_obs::Trace::noop())
            .expect("subjects flatten");
        let dfg = Dfg::new(flat, &frodo_obs::Trace::noop()).expect("subjects analyze");

        for &threads in &THREAD_COUNTS {
            // iomap: block-property derivation, chunked across workers
            let (ns, iters, samples) = run(
                quick,
                "hotpath",
                &format!("{}/iomap/t{threads}", subject.name),
                || {
                    black_box(IoMappings::derive_with(black_box(&dfg), threads));
                },
            );
            rows.push(Row {
                model: subject.name.clone(),
                blocks,
                stage: "iomap",
                threads,
                median_ns: ns,
                iters,
                samples,
            });

            // ranges: Algorithm 1; t1 is today's sequential engine, t>1
            // the level-scheduled parallel engine
            let maps = IoMappings::derive(&dfg);
            let opts = if threads <= 1 {
                RangeOptions::default()
            } else {
                RangeOptions {
                    engine: RangeEngine::Parallel,
                    threads,
                    ..Default::default()
                }
            };
            let (ns, iters, samples) = run(
                quick,
                "hotpath",
                &format!("{}/ranges/t{threads}", subject.name),
                || {
                    black_box(determine_ranges(black_box(&dfg), black_box(&maps), opts));
                },
            );
            rows.push(Row {
                model: subject.name.clone(),
                blocks,
                stage: "ranges",
                threads,
                median_ns: ns,
                iters,
                samples,
            });
        }

        // emit: per-statement rendering into per-thread buffers
        let analysis = frodo_core::Analysis::run(dfg.model().clone()).expect("subjects analyze");
        let program = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        for &threads in &THREAD_COUNTS {
            let (ns, iters, samples) = run(
                quick,
                "hotpath",
                &format!("{}/emit/t{threads}", subject.name),
                || {
                    black_box(emit_c_threaded(
                        black_box(&program),
                        CEmitOptions::default(),
                        threads,
                    ));
                },
            );
            rows.push(Row {
                model: subject.name.clone(),
                blocks,
                stage: "emit",
                threads,
                median_ns: ns,
                iters,
                samples,
            });
        }
    }

    // analysis = iomap + ranges: the stage pair the PR's acceptance
    // criterion is written against, summarized as speedup over t1
    println!("\nanalysis (iomap+ranges) speedup vs 1 thread:");
    let models: Vec<String> = subjects().iter().map(|s| s.name.clone()).collect();
    for model in &models {
        let total = |threads: usize| -> f64 {
            rows.iter()
                .filter(|r| {
                    r.model == *model
                        && r.threads == threads
                        && (r.stage == "iomap" || r.stage == "ranges")
                })
                .map(|r| r.median_ns)
                .sum()
        };
        let base = total(1);
        let cells: Vec<String> = THREAD_COUNTS
            .iter()
            .map(|&t| format!("t{t} {:.2}x", base / total(t)))
            .collect();
        println!("  {model:<16} {}", cells.join("  "));
    }

    if let Some(path) = json_path {
        let json = to_json(&rows, quick);
        std::fs::write(&path, json).expect("write --json output");
        println!("wrote {path}");
    }

    if let Some(path) = ledger_path {
        let entry = ledger_entry(&rows);
        frodo_obs::append_entry(std::path::Path::new(&path), &entry)
            .expect("append --ledger entry");
        println!("appended ledger entry to {path}");
    }
}

/// Folds the single-thread medians into a perf-ledger entry: one
/// [`frodo_obs::StageSummary`] per measured stage (the other canonical
/// stages ride along zeroed so the line schema stays stable), the row
/// count as a counter, and the summed t1 medians as the wall time.
fn ledger_entry(rows: &[Row]) -> frodo_obs::LedgerEntry {
    use frodo_obs::{Histogram, LedgerEntry, StageSummary, TraceAgg, STAGE_NAMES};
    let mut agg = TraceAgg::default();
    for stage in STAGE_NAMES {
        let mut h = Histogram::new();
        for r in rows.iter().filter(|r| r.stage == stage && r.threads == 1) {
            h.record(r.median_ns);
        }
        agg.stages
            .push((stage.to_string(), StageSummary::from_histogram(&h)));
    }
    agg.counters
        .push(("bench_rows".to_string(), rows.len() as i64));
    agg.jobs = subjects().len() as u64;
    let wall_ns: f64 = rows
        .iter()
        .filter(|r| r.threads == 1)
        .map(|r| r.median_ns)
        .sum();
    LedgerEntry::from_agg(&agg, "bench:hotpath", "recursive", 1, 1, wall_ns as u64)
}

fn to_json(rows: &[Row], quick: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"hotpath\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(
        s,
        "  \"host\": {{ \"os\": \"{}\", \"arch\": \"{}\", \"cores\": {} }},",
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"model\": \"{}\", \"blocks\": {}, \"stage\": \"{}\", \"threads\": {}, \
             \"median_ns\": {:.0}, \"iters\": {}, \"samples\": {} }}",
            r.model, r.blocks, r.stage, r.threads, r.median_ns, r.iters, r.samples
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
