//! Criterion bench behind the paper's Table 2: measured execution of every
//! generator's program for every benchmark model.
//!
//! The measured subject is the loop-IR VM executing one step — real work
//! whose duration scales with the element computations each generator
//! emits, so FRODO's redundancy elimination shows up directly in the
//! measured times (the absolute scale belongs to the VM, not to `gcc -O3`;
//! the native harness in `table2 --native` covers that).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frodo_bench::build_suite;
use frodo_sim::{workload, Vm};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let suite = build_suite();
    let mut group = c.benchmark_group("table2_x86");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(600));
    group.warm_up_time(std::time::Duration::from_millis(150));
    for entry in &suite {
        let inputs = workload::random_input_vecs(entry.analysis.dfg(), 7);
        for (style, program) in &entry.programs {
            let mut vm = Vm::new(program);
            group.bench_with_input(
                BenchmarkId::new(entry.name, style.label()),
                program,
                |b, program| {
                    b.iter(|| black_box(vm.step(program, black_box(&inputs))));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
