//! The bench behind the paper's Table 2: measured execution of every
//! generator's program for every benchmark model.
//!
//! The measured subject is the loop-IR VM executing one step — real work
//! whose duration scales with the element computations each generator
//! emits, so FRODO's redundancy elimination shows up directly in the
//! measured times (the absolute scale belongs to the VM, not to `gcc -O3`;
//! the native harness in `table2 --native` covers that).
//!
//! Programs are compiled through the batch [`CompileService`], twice: the
//! first submission populates the content-addressed cache, the second must
//! be served entirely from it. The cold pass's per-stage timing table and
//! both passes' cache counters are printed before the timing runs, so cache
//! behavior is exercised — and visible — on every bench run.

use frodo_bench::{harness, programs_via_service};
use frodo_driver::CompileService;
use frodo_sim::{workload, Vm};
use std::hint::black_box;

fn main() {
    let service = CompileService::with_defaults();
    let (suite, cold) = programs_via_service(&service);
    println!("cold batch (miss pass):");
    print!("{}", cold.render_table());
    let (_, warm) = programs_via_service(&service);
    assert_eq!(
        warm.cache_hits(),
        warm.jobs.len(),
        "identical resubmission must be served from the cache"
    );
    println!(
        "warm batch: {} jobs, {} cache hits, {} misses",
        warm.jobs.len(),
        warm.cache_hits(),
        warm.cache_misses()
    );

    for entry in &suite {
        let inputs = workload::random_input_vecs(entry.analysis.dfg(), 7);
        for (style, program) in &entry.programs {
            let mut vm = Vm::new(program);
            harness::bench(
                "table2_x86",
                &format!("{}/{}", entry.name, style.label()),
                || {
                    black_box(vm.step(program, black_box(&inputs)));
                },
            );
        }
    }
}
