//! Benchmark harness regenerating the paper's tables and figures.
//!
//! Binaries (run with `cargo run -p frodo-bench --bin <name>`):
//!
//! - `table1` — the benchmark inventory (paper Table 1);
//! - `table2` — x86 execution durations for Simulink/DFSynth/HCG/FRODO under
//!   GCC-like and Clang-like profiles (paper Table 2); `--native` adds real
//!   `gcc -O3` wall-clock measurements when a compiler is available;
//! - `figure6` — ARM improvement ratios (paper Figure 6);
//! - `memory` — static memory parity across generators (paper §5);
//! - `calibrate` — measured-vs-predicted cost-model ratios per statement
//!   kind (see [`calibrate`]); `--native` joins self-profiling `gcc -O3`
//!   binaries instead of the VM.
//!
//! The library surface exposes the measurement primitives the binaries and
//! the bench targets share, plus [`programs_via_service`] which routes
//! suite compilation through the batch [`CompileService`] so the benches
//! exercise the artifact cache.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod harness;

use frodo_codegen::lir::Program;
use frodo_codegen::{generate, GeneratorStyle};
use frodo_core::Analysis;
use frodo_driver::{BatchReport, CompileService, JobSpec};
use frodo_obs::Trace;
use frodo_sim::{CostModel, MemoryReport};

/// The paper's measurement protocol: 10 000 repetitions, averaged.
pub const PAPER_ITERS: usize = 10_000;

/// Generated programs for one benchmark model, one per generator style.
#[derive(Debug, Clone)]
pub struct ModelPrograms {
    /// Model name (Table 1).
    pub name: &'static str,
    /// The analysis the programs were generated from.
    pub analysis: Analysis,
    /// Programs in [`GeneratorStyle::ALL`] order.
    pub programs: Vec<(GeneratorStyle, Program)>,
}

/// Analyzes every Table-1 model and generates all four programs for each.
pub fn build_suite() -> Vec<ModelPrograms> {
    frodo_benchmodels::all()
        .into_iter()
        .map(|bench| {
            let analysis = Analysis::run(bench.model).expect("benchmark models analyze");
            let programs = GeneratorStyle::ALL
                .iter()
                .map(|&style| (style, generate(&analysis, style, &frodo_obs::Trace::noop())))
                .collect();
            ModelPrograms {
                name: bench.name,
                analysis,
                programs,
            }
        })
        .collect()
}

/// The Table-1 suite as a batch of driver jobs: every benchmark model
/// crossed with every generator style, in suite-then-style order.
pub fn suite_specs() -> Vec<JobSpec> {
    frodo_benchmodels::all()
        .into_iter()
        .flat_map(|bench| {
            GeneratorStyle::ALL
                .into_iter()
                .map(move |style| JobSpec::from_model(bench.name, bench.model.clone(), style))
        })
        .collect()
}

/// Compiles the whole Table-1 suite through the batch service and returns
/// the per-(model, style) programs for execution-based benches.
///
/// # Panics
///
/// Panics if any suite job fails or comes back without a lowered program
/// (benchmark models always compile, and in-process cache hits retain
/// their programs).
pub fn programs_via_service(service: &CompileService) -> (Vec<ModelPrograms>, BatchReport) {
    programs_via_service_traced(service, &Trace::noop())
}

/// Same as [`programs_via_service`], but every suite job records into
/// `trace`, so callers can derive per-stage compile costs for the whole
/// suite ([`frodo_obs::StageTimings::from_trace`]) next to the programs.
///
/// # Panics
///
/// Panics under the same conditions as [`programs_via_service`].
pub fn programs_via_service_traced(
    service: &CompileService,
    trace: &Trace,
) -> (Vec<ModelPrograms>, BatchReport) {
    let report = service.compile_batch_traced(suite_specs(), trace);
    let mut outputs = report.jobs.iter();
    let suite = frodo_benchmodels::all()
        .into_iter()
        .map(|bench| {
            let analysis = Analysis::run(bench.model).expect("benchmark models analyze");
            let programs = GeneratorStyle::ALL
                .iter()
                .map(|&style| {
                    let out = outputs
                        .next()
                        .expect("one job per (model, style)")
                        .as_ref()
                        .unwrap_or_else(|e| panic!("suite job failed: {e}"));
                    assert_eq!(out.report.style, style, "job order matches suite order");
                    let program = out
                        .program
                        .clone()
                        .expect("in-process jobs retain their programs");
                    (style, program)
                })
                .collect();
            ModelPrograms {
                name: bench.name,
                analysis,
                programs,
            }
        })
        .collect();
    (suite, report)
}

/// One Table-2-style cell: estimated execution duration in seconds for
/// `PAPER_ITERS` repetitions.
pub fn duration_seconds(cm: &CostModel, program: &Program) -> f64 {
    cm.execution_seconds(program, PAPER_ITERS)
}

/// Per-model speedup of FRODO over each baseline under one cost model:
/// `(Simulink, DFSynth, HCG)` ratios, each `> 1` when FRODO is faster.
pub fn improvement(cm: &CostModel, programs: &[(GeneratorStyle, Program)]) -> (f64, f64, f64) {
    let time = |want: GeneratorStyle| {
        programs
            .iter()
            .find(|(s, _)| *s == want)
            .map(|(_, p)| cm.program_ns(p))
            .expect("all styles present")
    };
    let frodo = time(GeneratorStyle::Frodo);
    (
        time(GeneratorStyle::SimulinkCoder) / frodo,
        time(GeneratorStyle::DfSynth) / frodo,
        time(GeneratorStyle::Hcg) / frodo,
    )
}

/// Memory reports per style for one model (the §5 parity check).
pub fn memory_parity(
    programs: &[(GeneratorStyle, Program)],
) -> Vec<(GeneratorStyle, MemoryReport)> {
    programs
        .iter()
        .map(|(s, p)| (*s, MemoryReport::of(p)))
        .collect()
}

/// Formats seconds the way the paper's Table 2 prints them (e.g. `0.333s`).
pub fn fmt_seconds(s: f64) -> String {
    format!("{s:.3}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_models_and_styles() {
        let suite = build_suite();
        assert_eq!(suite.len(), 10);
        for entry in &suite {
            assert_eq!(entry.programs.len(), 4);
        }
    }

    #[test]
    fn frodo_wins_on_every_model_and_config() {
        // The paper's headline: FRODO is 1.17×–8.55× faster than every
        // baseline across all models, compilers, and architectures.
        let suite = build_suite();
        for cm in CostModel::all() {
            for entry in &suite {
                let (vs_sim, vs_df, vs_hcg) = improvement(&cm, &entry.programs);
                assert!(
                    vs_sim > 1.0 && vs_df > 1.0 && vs_hcg > 1.0,
                    "{} on {}: {vs_sim:.2}/{vs_df:.2}/{vs_hcg:.2}",
                    entry.name,
                    cm.label()
                );
            }
        }
    }

    #[test]
    fn memory_is_style_independent_everywhere() {
        for entry in build_suite() {
            let reports = memory_parity(&entry.programs);
            let first = reports[0].1;
            assert!(
                reports.iter().all(|(_, r)| *r == first),
                "{}: {reports:?}",
                entry.name
            );
        }
    }

    #[test]
    fn fmt_matches_paper_style() {
        assert_eq!(fmt_seconds(0.333), "0.333s");
    }

    #[test]
    fn service_suite_matches_direct_generation_and_caches() {
        let service = CompileService::with_defaults();
        let (suite, first) = programs_via_service(&service);
        assert_eq!(first.jobs.len(), 40);
        assert_eq!(first.cache_misses(), 40);

        // programs produced through the service equal direct generation
        for (direct, via) in build_suite().iter().zip(&suite) {
            assert_eq!(direct.name, via.name);
            for ((s1, p1), (s2, p2)) in direct.programs.iter().zip(&via.programs) {
                assert_eq!(s1, s2);
                assert_eq!(p1, p2, "{}/{}", direct.name, s1.label());
            }
        }

        // an identical resubmission is served entirely from the cache
        let (_, second) = programs_via_service(&service);
        assert_eq!(second.cache_hits(), 40);
        assert_eq!(second.cache_misses(), 0);
    }
}
