//! Benchmark harness regenerating the paper's tables and figures.
//!
//! Binaries (run with `cargo run -p frodo-bench --bin <name>`):
//!
//! - `table1` — the benchmark inventory (paper Table 1);
//! - `table2` — x86 execution durations for Simulink/DFSynth/HCG/FRODO under
//!   GCC-like and Clang-like profiles (paper Table 2); `--native` adds real
//!   `gcc -O3` wall-clock measurements when a compiler is available;
//! - `figure6` — ARM improvement ratios (paper Figure 6);
//! - `memory` — static memory parity across generators (paper §5).
//!
//! The library surface exposes the measurement primitives the binaries and
//! the Criterion benches share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use frodo_codegen::lir::Program;
use frodo_codegen::{generate, GeneratorStyle};
use frodo_core::Analysis;
use frodo_sim::{CostModel, MemoryReport};

/// The paper's measurement protocol: 10 000 repetitions, averaged.
pub const PAPER_ITERS: usize = 10_000;

/// Generated programs for one benchmark model, one per generator style.
#[derive(Debug, Clone)]
pub struct ModelPrograms {
    /// Model name (Table 1).
    pub name: &'static str,
    /// The analysis the programs were generated from.
    pub analysis: Analysis,
    /// Programs in [`GeneratorStyle::ALL`] order.
    pub programs: Vec<(GeneratorStyle, Program)>,
}

/// Analyzes every Table-1 model and generates all four programs for each.
pub fn build_suite() -> Vec<ModelPrograms> {
    frodo_benchmodels::all()
        .into_iter()
        .map(|bench| {
            let analysis = Analysis::run(bench.model).expect("benchmark models analyze");
            let programs = GeneratorStyle::ALL
                .iter()
                .map(|&style| (style, generate(&analysis, style)))
                .collect();
            ModelPrograms {
                name: bench.name,
                analysis,
                programs,
            }
        })
        .collect()
}

/// One Table-2-style cell: estimated execution duration in seconds for
/// `PAPER_ITERS` repetitions.
pub fn duration_seconds(cm: &CostModel, program: &Program) -> f64 {
    cm.execution_seconds(program, PAPER_ITERS)
}

/// Per-model speedup of FRODO over each baseline under one cost model:
/// `(Simulink, DFSynth, HCG)` ratios, each `> 1` when FRODO is faster.
pub fn improvement(cm: &CostModel, programs: &[(GeneratorStyle, Program)]) -> (f64, f64, f64) {
    let time = |want: GeneratorStyle| {
        programs
            .iter()
            .find(|(s, _)| *s == want)
            .map(|(_, p)| cm.program_ns(p))
            .expect("all styles present")
    };
    let frodo = time(GeneratorStyle::Frodo);
    (
        time(GeneratorStyle::SimulinkCoder) / frodo,
        time(GeneratorStyle::DfSynth) / frodo,
        time(GeneratorStyle::Hcg) / frodo,
    )
}

/// Memory reports per style for one model (the §5 parity check).
pub fn memory_parity(
    programs: &[(GeneratorStyle, Program)],
) -> Vec<(GeneratorStyle, MemoryReport)> {
    programs
        .iter()
        .map(|(s, p)| (*s, MemoryReport::of(p)))
        .collect()
}

/// Formats seconds the way the paper's Table 2 prints them (e.g. `0.333s`).
pub fn fmt_seconds(s: f64) -> String {
    format!("{s:.3}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_models_and_styles() {
        let suite = build_suite();
        assert_eq!(suite.len(), 10);
        for entry in &suite {
            assert_eq!(entry.programs.len(), 4);
        }
    }

    #[test]
    fn frodo_wins_on_every_model_and_config() {
        // The paper's headline: FRODO is 1.17×–8.55× faster than every
        // baseline across all models, compilers, and architectures.
        let suite = build_suite();
        for cm in CostModel::all() {
            for entry in &suite {
                let (vs_sim, vs_df, vs_hcg) = improvement(&cm, &entry.programs);
                assert!(
                    vs_sim > 1.0 && vs_df > 1.0 && vs_hcg > 1.0,
                    "{} on {}: {vs_sim:.2}/{vs_df:.2}/{vs_hcg:.2}",
                    entry.name,
                    cm.label()
                );
            }
        }
    }

    #[test]
    fn memory_is_style_independent_everywhere() {
        for entry in build_suite() {
            let reports = memory_parity(&entry.programs);
            let first = reports[0].1;
            assert!(
                reports.iter().all(|(_, r)| *r == first),
                "{}: {reports:?}",
                entry.name
            );
        }
    }

    #[test]
    fn fmt_matches_paper_style() {
        assert_eq!(fmt_seconds(0.333), "0.333s");
    }
}
