//! Cost-model calibration: measured statement costs vs [`CostModel`]
//! predictions, per statement kind, across the whole Table-1 suite.
//!
//! The cost model predicts native nanoseconds per statement; this module
//! joins those predictions against *measured* per-statement profiles —
//! from the [`Vm`](frodo_sim::Vm) interpreter (always available) or from
//! self-profiling native binaries (`gcc` hosts) — and reports the
//! measured/predicted ratio per statement kind as p50/p95 over every
//! statement of that kind in the suite. The ratios are not expected to be
//! 1.0 (the VM interprets; native timings include harness jitter); what CI
//! gates on is that each kind's p50 ratio stays inside a committed
//! tolerance band, so a cost-model or VM change that silently skews one
//! statement kind against the others shows up as a band violation.

use crate::build_suite;
use frodo_codegen::lir::Program;
use frodo_codegen::VectorMode;
use frodo_obs::{Histogram, LedgerEntry, Trace};
use frodo_sim::native::{self, NativeError};
use frodo_sim::{workload, CostModel, Profile, Vm};

/// Ratios are persisted as integers scaled by this factor (the ledger and
/// the bands file carry no floats).
pub const RATIO_SCALE: f64 = 1000.0;

/// Measured-vs-predicted summary for one statement kind.
#[derive(Debug, Clone)]
pub struct KindCalibration {
    /// Statement kind label ([`frodo_codegen::lir::Stmt::kind_label`]).
    pub kind: &'static str,
    /// Statements of this kind that executed across the suite.
    pub samples: u64,
    /// Per-statement `measured_mean_ns / predicted_ns` ratios, scaled by
    /// [`RATIO_SCALE`].
    pub ratio_x1000: Histogram,
}

impl KindCalibration {
    /// Median ratio, scaled by [`RATIO_SCALE`].
    pub fn p50_x1000(&self) -> u64 {
        self.ratio_x1000.percentile(50.0) as u64
    }

    /// 95th-percentile ratio, scaled by [`RATIO_SCALE`].
    pub fn p95_x1000(&self) -> u64 {
        self.ratio_x1000.percentile(95.0) as u64
    }
}

/// One calibration run: every statement kind the suite exercises.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// Where the measurements came from: `"vm"` or `"native"`.
    pub source: &'static str,
    /// Per-kind summaries, sorted by kind label.
    pub kinds: Vec<KindCalibration>,
    /// Benchmark models profiled.
    pub models: u64,
    /// Statements that contributed a sample.
    pub statements: u64,
}

impl CalibrationReport {
    /// Looks up one kind's summary.
    pub fn kind(&self, kind: &str) -> Option<&KindCalibration> {
        self.kinds.iter().find(|k| k.kind == kind)
    }

    /// Renders the human table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cost-model calibration ({}, {} models, {} statements):",
            self.source, self.models, self.statements
        );
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>12} {:>12}",
            "kind", "samples", "p50 ratio", "p95 ratio"
        );
        for k in &self.kinds {
            let _ = writeln!(
                out,
                "{:<14} {:>8} {:>11.2}x {:>11.2}x",
                k.kind,
                k.samples,
                k.p50_x1000() as f64 / RATIO_SCALE,
                k.p95_x1000() as f64 / RATIO_SCALE
            );
        }
        out
    }

    /// Folds the report into a perf-ledger entry (label `calibrate`,
    /// engine = the measurement source) carrying one
    /// `calib_<kind>_ratio_{p50,p95}_x1000` counter pair plus a
    /// `calib_<kind>_samples` counter per kind — flat, diffable, and
    /// round-trippable like every other ledger line.
    pub fn ledger_entry(&self, wall_ns: u64) -> LedgerEntry {
        let trace = Trace::new();
        {
            let job = trace.span("job:calibrate");
            for k in &self.kinds {
                job.count(&format!("calib_{}_ratio_p50_x1000", k.kind), k.p50_x1000());
                job.count(&format!("calib_{}_ratio_p95_x1000", k.kind), k.p95_x1000());
                job.count(&format!("calib_{}_samples", k.kind), k.samples);
            }
        }
        let agg = frodo_obs::aggregate(&trace.snapshot());
        LedgerEntry::from_agg(&agg, "calibrate", self.source, 0, 0, wall_ns)
    }
}

/// Accumulates per-kind ratio histograms as statements are joined.
#[derive(Default)]
struct Accum {
    kinds: Vec<KindCalibration>,
    statements: u64,
}

impl Accum {
    fn record(&mut self, kind: &'static str, measured_mean_ns: f64, predicted_ns: f64) {
        let ratio = measured_mean_ns / predicted_ns;
        let slot = match self.kinds.iter_mut().find(|k| k.kind == kind) {
            Some(k) => k,
            None => {
                self.kinds.push(KindCalibration {
                    kind,
                    samples: 0,
                    ratio_x1000: Histogram::new(),
                });
                self.kinds.last_mut().expect("just pushed")
            }
        };
        slot.samples += 1;
        slot.ratio_x1000.record(ratio * RATIO_SCALE);
        self.statements += 1;
    }

    fn finish(mut self, source: &'static str, models: u64) -> CalibrationReport {
        self.kinds.sort_by(|a, b| a.kind.cmp(b.kind));
        CalibrationReport {
            source,
            kinds: self.kinds,
            models,
            statements: self.statements,
        }
    }
}

fn predicted_ns(cm: &CostModel, program: &Program, idx: usize) -> f64 {
    cm.stmt_ns_with(program.style, &program.stmts[idx], VectorMode::Auto)
}

/// Calibrates against the VM: every Table-1 model's FRODO program runs
/// `steps` profiled steps on deterministic random inputs, and each
/// executed statement contributes one measured/predicted ratio sample.
pub fn calibrate_vm(steps: usize) -> CalibrationReport {
    let cm = CostModel::x86_gcc();
    let mut acc = Accum::default();
    let suite = build_suite();
    let models = suite.len() as u64;
    for entry in suite {
        let (_, program) = entry
            .programs
            .iter()
            .find(|(s, _)| *s == frodo_codegen::GeneratorStyle::Frodo)
            .expect("suite has a FRODO program");
        let mut vm = Vm::new(program);
        let mut profile = Profile::new(program);
        for step in 0..steps {
            let inputs = workload::random_input_vecs(entry.analysis.dfg(), 0xCA11B + step as u64);
            vm.step_profiled(program, &inputs, &mut profile);
        }
        for (i, s) in profile.stmts().iter().enumerate() {
            if s.calls == 0 {
                continue;
            }
            let mean = s.ns.sum() / s.calls as f64;
            acc.record(s.kind, mean, predicted_ns(&cm, program, i));
        }
    }
    acc.finish("vm", models)
}

/// Calibrates against self-profiling native binaries: every Table-1
/// model's FRODO program is compiled with `gcc -O3` under profiled
/// emission and run for `iters` harness iterations; the dumped NDJSON
/// profile is joined back onto the statements by index.
///
/// # Errors
///
/// [`NativeError::CompilerUnavailable`] on hosts without `gcc`, plus any
/// compile/run failure. A profile that fails to parse back through
/// [`frodo_obs::ndjson::snapshot`] is reported as
/// [`NativeError::RunFailed`] — that would be a bug in the emitted
/// profiling runtime.
pub fn calibrate_native(iters: usize) -> Result<CalibrationReport, NativeError> {
    calibrate_native_opts(iters, false)
}

/// [`calibrate_native`] with an ASan/UBSan toggle: with `sanitize` the
/// harness binaries are built with [`native::SANITIZE_FLAGS`] instead of
/// `-O3`, so every benchmark's generated step function and profiling
/// runtime execute under dynamic memory/UB checking — the runtime
/// counterpart of the static `analyze` stage. Timing ratios from a
/// sanitized run are not comparable to the committed bands (shadow-memory
/// instrumentation dominates); the `source` field is `"native-sanitized"`
/// so downstream consumers can tell.
///
/// # Errors
///
/// Same as [`calibrate_native`]; additionally
/// [`NativeError::CompilerUnavailable`] when `gcc` lacks sanitizer
/// runtimes (probe with [`native::sanitizer_available`]).
pub fn calibrate_native_opts(
    iters: usize,
    sanitize: bool,
) -> Result<CalibrationReport, NativeError> {
    let cm = CostModel::x86_gcc();
    let mut acc = Accum::default();
    let suite = build_suite();
    let models = suite.len() as u64;
    for entry in suite {
        let (_, program) = entry
            .programs
            .iter()
            .find(|(s, _)| *s == frodo_codegen::GeneratorStyle::Frodo)
            .expect("suite has a FRODO program");
        let run = if sanitize {
            native::compile_and_run_sanitized
        } else {
            native::compile_and_run_profiled
        };
        let (_, profile) = run(
            program,
            frodo_codegen::GeneratorStyle::Frodo,
            iters,
            frodo_codegen::CEmitOptions::default(),
        )?;
        let snap = frodo_obs::ndjson::snapshot(&profile).map_err(|e| NativeError::RunFailed {
            reason: format!("{}: unparseable profile: {e}", entry.name),
        })?;
        for (i, stmt) in program.stmts.iter().enumerate() {
            let key = format!("stmt_{i}_{}", stmt.kind_label());
            let calls = snap
                .counters
                .iter()
                .find(|c| c.name == format!("{key}_calls"))
                .map(|c| c.value)
                .unwrap_or(0);
            if calls == 0 {
                continue;
            }
            let total_ns = snap
                .spans
                .iter()
                .find(|s| s.name == key)
                .map(|s| s.dur_ns)
                .unwrap_or(0);
            let mean = total_ns as f64 / calls as f64;
            acc.record(stmt.kind_label(), mean, predicted_ns(&cm, program, i));
        }
    }
    Ok(acc.finish(
        if sanitize {
            "native-sanitized"
        } else {
            "native"
        },
        models,
    ))
}

/// One committed tolerance band: the p50 ratio of `kind` must stay in
/// `[p50_min_x1000, p50_max_x1000]` (inclusive, [`RATIO_SCALE`]d).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Band {
    /// Statement kind the band constrains.
    pub kind: String,
    /// Lower bound on the p50 ratio, scaled by [`RATIO_SCALE`].
    pub p50_min_x1000: u64,
    /// Upper bound on the p50 ratio, scaled by [`RATIO_SCALE`].
    pub p50_max_x1000: u64,
}

/// Parses a bands file: one NDJSON line per kind,
/// `{"type":"calib_band","kind":"conv","p50_min_x1000":N,"p50_max_x1000":N}`.
/// Blank lines and `#` comment lines are skipped.
///
/// # Errors
///
/// Reports the 1-based line number of the first malformed line.
pub fn parse_bands(text: &str) -> Result<Vec<Band>, String> {
    let mut bands = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = frodo_obs::ndjson::parse_line(line)
            .map_err(|e| format!("bands line {}: {e}", i + 1))?;
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let text_field = |key: &str| {
            get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("bands line {}: missing string field {key:?}", i + 1))
        };
        let num = |key: &str| {
            get(key)
                .and_then(|v| v.as_num())
                .map(|n| n as u64)
                .ok_or_else(|| format!("bands line {}: missing numeric field {key:?}", i + 1))
        };
        if text_field("type")? != "calib_band" {
            return Err(format!("bands line {}: type != \"calib_band\"", i + 1));
        }
        bands.push(Band {
            kind: text_field("kind")?,
            p50_min_x1000: num("p50_min_x1000")?,
            p50_max_x1000: num("p50_max_x1000")?,
        });
    }
    Ok(bands)
}

/// Checks a report against committed bands. Returns one message per
/// violation: a kind whose p50 ratio left its band, or a measured kind
/// with no band at all (the bands file must cover everything the suite
/// exercises, so new statement kinds cannot dodge the gate).
pub fn check_bands(report: &CalibrationReport, bands: &[Band]) -> Vec<String> {
    let mut violations = Vec::new();
    for k in &report.kinds {
        match bands.iter().find(|b| b.kind == k.kind) {
            None => violations.push(format!("kind '{}' has no committed band", k.kind)),
            Some(b) => {
                let p50 = k.p50_x1000();
                if p50 < b.p50_min_x1000 || p50 > b.p50_max_x1000 {
                    violations.push(format!(
                        "kind '{}': p50 ratio {:.3}x outside band [{:.3}x, {:.3}x]",
                        k.kind,
                        p50 as f64 / RATIO_SCALE,
                        b.p50_min_x1000 as f64 / RATIO_SCALE,
                        b.p50_max_x1000 as f64 / RATIO_SCALE
                    ));
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_calibration_covers_every_exercised_kind_with_positive_ratios() {
        let report = calibrate_vm(2);
        assert_eq!(report.models, 10);
        assert!(!report.kinds.is_empty());
        assert!(report.statements > 0);
        for k in &report.kinds {
            assert!(k.samples > 0, "{}", k.kind);
            assert!(k.p50_x1000() > 0, "{}: zero p50 ratio", k.kind);
            assert!(k.p50_x1000() <= k.p95_x1000(), "{}", k.kind);
        }
        // kinds are sorted and unique
        for w in report.kinds.windows(2) {
            assert!(w[0].kind < w[1].kind);
        }
        // the suite's staple statement kinds all appear
        for kind in ["binary", "conv", "state_load", "state_store"] {
            assert!(report.kind(kind).is_some(), "suite exercises {kind}");
        }
    }

    #[test]
    fn ledger_entry_round_trips_with_calib_counters() {
        let report = calibrate_vm(1);
        let entry = report.ledger_entry(123_456);
        assert_eq!(entry.label, "calibrate");
        assert_eq!(entry.engine, "vm");
        let back = LedgerEntry::from_line(&entry.to_line()).expect("parses");
        for k in &report.kinds {
            assert_eq!(
                back.counter(&format!("calib_{}_ratio_p50_x1000", k.kind)),
                k.p50_x1000() as i64
            );
            assert_eq!(
                back.counter(&format!("calib_{}_samples", k.kind)),
                k.samples as i64
            );
        }
    }

    #[test]
    fn bands_parse_check_and_flag_violations() {
        let text = "# tolerance bands\n\
                    {\"type\":\"calib_band\",\"kind\":\"conv\",\"p50_min_x1000\":10,\"p50_max_x1000\":99999999}\n\
                    \n\
                    {\"type\":\"calib_band\",\"kind\":\"binary\",\"p50_min_x1000\":50000000,\"p50_max_x1000\":60000000}\n";
        let bands = parse_bands(text).expect("parses");
        assert_eq!(bands.len(), 2);

        let mut in_band = Histogram::new();
        in_band.record(5_000.0);
        let report = CalibrationReport {
            source: "vm",
            kinds: vec![
                KindCalibration {
                    kind: "conv",
                    samples: 1,
                    ratio_x1000: in_band.clone(),
                },
                KindCalibration {
                    kind: "binary",
                    samples: 1,
                    ratio_x1000: in_band,
                },
                KindCalibration {
                    kind: "fir",
                    samples: 1,
                    ratio_x1000: Histogram::new(),
                },
            ],
            models: 1,
            statements: 3,
        };
        let violations = check_bands(&report, &bands);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(
            violations.iter().any(|v| v.contains("'binary'")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("'fir'")),
            "{violations:?}"
        );

        assert!(parse_bands("{\"type\":\"span\"}").is_err());
        assert!(parse_bands("nonsense")
            .unwrap_err()
            .starts_with("bands line 1"));
    }

    #[test]
    fn committed_bands_cover_the_vm_calibration() {
        // the same gate ci.sh runs, pinned as a unit test so a cost-model
        // or VM change that skews one statement kind fails fast
        let bands_text = include_str!("../../../CALIBRATION_BANDS.ndjson");
        let bands = parse_bands(bands_text).expect("committed bands parse");
        let report = calibrate_vm(3);
        let violations = check_bands(&report, &bands);
        assert!(
            violations.is_empty(),
            "{violations:#?}\n{}",
            report.render()
        );
    }

    #[test]
    fn native_calibration_joins_profiles_when_gcc_is_present() {
        if !native::gcc_available() {
            eprintln!("skipping: gcc not available");
            return;
        }
        let report = calibrate_native(5).expect("native calibration");
        assert_eq!(report.source, "native");
        assert!(!report.kinds.is_empty());
        for k in &report.kinds {
            assert!(k.samples > 0, "{}", k.kind);
        }
        assert!(report.kind("conv").is_some());
    }
}
