//! Regenerates the paper's Figure 6: execution improvement of FRODO versus
//! the other generators on ARM (GCC and Clang profiles).
//!
//! The paper plots one bar per (model, baseline): the baseline's duration
//! relative to FRODO's (FRODO itself is the red baseline at 1.0×). We print
//! the same series as text bars.

use frodo_bench::build_suite;
use frodo_sim::CostModel;

fn bar(ratio: f64) -> String {
    let blocks = (ratio * 6.0).round() as usize;
    "#".repeat(blocks.clamp(1, 60))
}

fn main() {
    let suite = build_suite();
    for (fig, cm) in [
        ("Figure 6(a): ARM with GCC", CostModel::arm_gcc()),
        ("Figure 6(b): ARM with Clang", CostModel::arm_clang()),
    ] {
        println!("{fig} — improvement of FRODO vs each generator (1.0 = FRODO)");
        println!(
            "{:<14} {:>9} {:>9} {:>9}",
            "Model", "Simulink", "DFSynth", "HCG"
        );
        println!("{}", "-".repeat(46));
        let mut sim = (f64::MAX, f64::MIN);
        let mut df = (f64::MAX, f64::MIN);
        let mut hcg = (f64::MAX, f64::MIN);
        for entry in &suite {
            let (s, d, h) = frodo_bench::improvement(&cm, &entry.programs);
            sim = (sim.0.min(s), sim.1.max(s));
            df = (df.0.min(d), df.1.max(d));
            hcg = (hcg.0.min(h), hcg.1.max(h));
            println!("{:<14} {s:>8.2}x {d:>8.2}x {h:>8.2}x", entry.name);
            println!("{:<14} S {}", "", bar(s));
            println!("{:<14} D {}", "", bar(d));
            println!("{:<14} H {}", "", bar(h));
        }
        println!();
        println!(
            "ranges: vs Simulink {:.2}x-{:.2}x, vs DFSynth {:.2}x-{:.2}x, vs HCG {:.2}x-{:.2}x",
            sim.0, sim.1, df.0, df.1, hcg.0, hcg.1
        );
        println!(
            "(paper, {}: Simulink {}, DFSynth {}, HCG {})",
            if cm.compiler == frodo_sim::CompilerProfile::Gcc {
                "GCC"
            } else {
                "Clang"
            },
            if cm.compiler == frodo_sim::CompilerProfile::Gcc {
                "1.71x-8.55x"
            } else {
                "1.68x-6.46x"
            },
            if cm.compiler == frodo_sim::CompilerProfile::Gcc {
                "1.44x-4.10x"
            } else {
                "1.40x-2.85x"
            },
            if cm.compiler == frodo_sim::CompilerProfile::Gcc {
                "1.17x-3.75x"
            } else {
                "1.34x-3.17x"
            },
        );
        println!();
    }
}
