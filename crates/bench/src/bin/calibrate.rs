//! `calibrate` — cost-model calibration over the Table-1 suite.
//!
//! ```text
//! cargo run -p frodo-bench --bin calibrate -- [--steps N] [--native [--iters N]]
//!     [--check BANDS.ndjson] [--ledger-out FILE]
//! ```
//!
//! Runs every benchmark's FRODO program through the profiled VM (and,
//! with `--native`, through self-profiling `gcc -O3` binaries), joins the
//! measured per-statement costs against the [`frodo_sim::CostModel`]
//! predictions, and prints per-kind p50/p95 measured/predicted ratios.
//! `--check` exits nonzero when any kind's p50 leaves its committed band;
//! `--ledger-out` appends the report as a perf-ledger entry.

use frodo_bench::calibrate::{calibrate_native, calibrate_vm, check_bands, parse_bands};
use frodo_sim::native;
use std::process::ExitCode;
use std::time::Instant;

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].as_str())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("calibrate: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let steps: usize = flag_value(args, "--steps")
        .map(|s| s.parse().map_err(|_| "bad --steps".to_string()))
        .transpose()?
        .unwrap_or(5);
    let start = Instant::now();
    let report = if args.iter().any(|a| a == "--native") {
        if !native::gcc_available() {
            return Err("--native requested but gcc is unavailable".into());
        }
        let iters: usize = flag_value(args, "--iters")
            .map(|s| s.parse().map_err(|_| "bad --iters".to_string()))
            .transpose()?
            .unwrap_or(200);
        calibrate_native(iters).map_err(|e| e.to_string())?
    } else {
        calibrate_vm(steps)
    };
    let wall_ns = start.elapsed().as_nanos() as u64;
    print!("{}", report.render());

    if let Some(path) = flag_value(args, "--ledger-out") {
        let entry = report.ledger_entry(wall_ns);
        frodo_obs::append_entry(std::path::Path::new(path), &entry)?;
        eprintln!("appended calibration entry to {path}");
    }
    if let Some(path) = flag_value(args, "--check") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let bands = parse_bands(&text).map_err(|e| format!("{path}: {e}"))?;
        let violations = check_bands(&report, &bands);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("calibrate: {v}");
            }
            return Err(format!(
                "{} band violation(s) against {path}",
                violations.len()
            ));
        }
        eprintln!(
            "all {} kinds inside their bands ({path})",
            report.kinds.len()
        );
    }
    Ok(())
}
