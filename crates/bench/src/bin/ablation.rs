//! Ablation study over FRODO's design choices (DESIGN.md §3):
//!
//! 1. **Truncation awareness** — FRODO with ranges vs FRODO forced to full
//!    ranges (isolates the contribution of Algorithm 1 from code style).
//! 2. **Run coalescing** — the §5 discontinuous-range remedy, swept over
//!    the gap parameter.
//! 3. **Dead-end elimination** — the optional extension beyond the paper's
//!    conservative rule for unconsumed ports.
//! 4. **Shared convolution helper** — the §5 code-size remedy (generic
//!    function interface with range parameters).
//! 5. **Expression folding** — the optional LIR fusion pass.
//! 6. **Vectorization mode** — scalar vs hinted vs explicitly batched
//!    emission, under the per-arch cost model.
//! 7. **Sliding-window reuse** — the inter-invocation delta-update rewrite,
//!    in arch-independent FLOPs and estimated time.

use frodo_codegen::lir::Stmt;
use frodo_codegen::optimize::{fold_expressions, window_reuse};
use frodo_codegen::{
    emit_c, emit_c_with, generate, generate_with, CEmitOptions, GeneratorStyle, LowerOptions,
    VectorMode,
};
use frodo_core::{Analysis, RangeOptions};
use frodo_sim::{program_flops, CostModel};

fn main() {
    let suite = frodo_benchmodels::all();
    let cm = CostModel::x86_gcc();

    println!("Ablation 1: contribution of calculation-range elimination alone");
    println!("(FRODO codegen at full ranges vs derived ranges, x86/gcc estimate)");
    println!(
        "{:<14} {:>12} {:>12} {:>9}",
        "model", "full-range", "eliminated", "gain"
    );
    println!("{}", "-".repeat(52));
    for bench in &suite {
        let analysis = Analysis::run(bench.model.clone()).expect("analyzes");
        // DFSynth emits the same (tight, auto-vec) code at full ranges,
        // so it is exactly "FRODO minus range elimination".
        let full = cm.program_ns(&generate(
            &analysis,
            GeneratorStyle::DfSynth,
            &frodo_obs::Trace::noop(),
        ));
        let frodo = cm.program_ns(&generate(
            &analysis,
            GeneratorStyle::Frodo,
            &frodo_obs::Trace::noop(),
        ));
        println!(
            "{:<14} {:>10.1}us {:>10.1}us {:>8.2}x",
            bench.name,
            full / 1e3,
            frodo / 1e3,
            full / frodo
        );
    }

    println!();
    println!("Ablation 2: run coalescing gap (§5 discontinuous-range remedy)");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10}  (x86/gcc us; stmts in parens)",
        "model", "gap=0", "gap=4", "gap=16", "gap=64"
    );
    println!("{}", "-".repeat(72));
    for bench in &suite {
        let analysis = Analysis::run(bench.model.clone()).expect("analyzes");
        let mut cells = Vec::new();
        for gap in [0usize, 4, 16, 64] {
            let p = generate_with(
                &analysis,
                GeneratorStyle::Frodo,
                LowerOptions {
                    coalesce_gap: gap,
                    ..Default::default()
                },
                &frodo_obs::Trace::noop(),
            );
            cells.push(format!("{:.1}({})", cm.program_ns(&p) / 1e3, p.stmts.len()));
        }
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>10}",
            bench.name, cells[0], cells[1], cells[2], cells[3]
        );
    }

    println!();
    println!("Ablation 3: dead-end elimination (extension beyond the paper)");
    println!(
        "{:<14} {:>16} {:>16}",
        "model", "paper rule", "dead-end elim"
    );
    println!("{}", "-".repeat(48));
    for bench in &suite {
        let paper = Analysis::run(bench.model.clone()).expect("analyzes");
        let aggressive = Analysis::run_with(
            bench.model.clone(),
            RangeOptions {
                eliminate_dead_ends: true,
                ..Default::default()
            },
        )
        .expect("analyzes");
        println!(
            "{:<14} {:>13.1}% {:>15.1}%",
            bench.name,
            100.0 * paper.report().elimination_ratio(),
            100.0 * aggressive.report().elimination_ratio()
        );
    }

    println!(
        "(identical columns mean the suite's dead code is terminator-fed,\n\
         which the paper's own rule already removes; the extension matters\n\
         for ports left dangling without a Terminator)"
    );

    println!();
    println!("Ablation 4: shared convolution helper (§5 code-size remedy)");
    println!(
        "{:<14} {:>14} {:>14} {:>9}",
        "model", "inline C", "shared helper", "shrink"
    );
    println!("{}", "-".repeat(55));
    for bench in &suite {
        let analysis = Analysis::run(bench.model.clone()).expect("analyzes");
        let p = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let inline = emit_c(&p).len();
        let shared = emit_c_with(
            &p,
            CEmitOptions {
                shared_conv_helper: true,
                ..Default::default()
            },
        )
        .len();
        println!(
            "{:<14} {:>12} B {:>12} B {:>8.1}%",
            bench.name,
            inline,
            shared,
            100.0 * (inline as f64 - shared as f64) / inline as f64
        );
    }

    println!();
    println!("Ablation 5: expression folding (optional LIR pass)");
    println!(
        "{:<14} {:>8} {:>8} {:>12} {:>12}",
        "model", "stmts", "folded", "est. before", "est. after"
    );
    println!("{}", "-".repeat(60));
    for bench in &suite {
        let analysis = Analysis::run(bench.model.clone()).expect("analyzes");
        let p = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let folded = fold_expressions(&p);
        println!(
            "{:<14} {:>8} {:>8} {:>10.1}us {:>10.1}us",
            bench.name,
            p.stmts.len(),
            folded.stmts.len(),
            cm.program_ns(&p) / 1e3,
            cm.program_ns(&folded) / 1e3
        );
    }

    println!();
    println!("Ablation 6: vectorization mode (FRODO emission, per-arch estimate)");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10}  (us)",
        "model", "off", "hints", "batch:8", "x86 gain", "arm batch:2"
    );
    println!("{}", "-".repeat(72));
    let arm = CostModel::arm_gcc();
    for bench in &suite {
        let analysis = Analysis::run(bench.model.clone()).expect("analyzes");
        let p = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let off = cm.program_ns_with(&p, VectorMode::Off);
        let hints = cm.program_ns_with(&p, VectorMode::Hints);
        let batch = cm.program_ns_with(&p, VectorMode::Batch(cm.lanes()));
        let arm_batch = arm.program_ns_with(&p, VectorMode::Batch(arm.lanes()));
        println!(
            "{:<14} {:>10.1} {:>10.1} {:>10.1} {:>9.2}x {:>10.1}",
            bench.name,
            off / 1e3,
            hints / 1e3,
            batch / 1e3,
            off / batch,
            arm_batch / 1e3
        );
    }

    println!();
    println!("Ablation 7: sliding-window reuse (inter-invocation delta updates)");
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "model", "rewrit.", "FLOPs scalar", "FLOPs reuse", "est. before", "est. after"
    );
    println!("{}", "-".repeat(76));
    for bench in &suite {
        let analysis = Analysis::run(bench.model.clone()).expect("analyzes");
        let p = generate(&analysis, GeneratorStyle::Frodo, &frodo_obs::Trace::noop());
        let reused = window_reuse(&p);
        let rewritten = reused
            .stmts
            .iter()
            .filter(|s| matches!(s, Stmt::WindowedReuse { .. }))
            .count();
        println!(
            "{:<14} {:>8} {:>12} {:>12} {:>10.1}us {:>10.1}us",
            bench.name,
            rewritten,
            program_flops(&p),
            program_flops(&reused),
            cm.program_ns(&p) / 1e3,
            cm.program_ns(&reused) / 1e3
        );
    }
}
