//! Regenerates the paper's Table 1: the benchmark model inventory.

fn main() {
    println!("Table 1: Benchmark Simulink models (reconstruction)");
    println!("{:<14} {:<42} {:>7}", "Model", "Functionality", "#Block");
    println!("{}", "-".repeat(65));
    for bench in frodo_benchmodels::all() {
        println!(
            "{:<14} {:<42} {:>7}",
            bench.name,
            bench.functionality,
            bench.model.deep_len()
        );
    }
    println!();
    println!("Analysis summary (FRODO redundancy elimination):");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10}",
        "Model", "truncations", "optimizable", "eliminated", "ratio"
    );
    println!("{}", "-".repeat(65));
    for bench in frodo_benchmodels::all() {
        let analysis = frodo_core::Analysis::run(bench.model).expect("model analyzes");
        let report = analysis.report();
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>9.1}%",
            bench.name,
            analysis.dfg().truncation_count(),
            report.optimizable_blocks().len(),
            report.total_eliminated(),
            100.0 * report.elimination_ratio()
        );
    }
}
