//! Regenerates the paper's Table 2: execution duration on x86 with GCC and
//! Clang profiles, for all four generators.
//!
//! By default the durations come from the deterministic cost model (see
//! `frodo_sim::CostModel` for the substitution rationale). With `--native`,
//! a real `gcc -O3` compile-and-run pass is added for the x86/GCC column —
//! the configuration this host can actually measure.

use frodo_bench::{duration_seconds, fmt_seconds, programs_via_service_traced, PAPER_ITERS};
use frodo_codegen::GeneratorStyle;
use frodo_driver::CompileService;
use frodo_obs::{fmt_duration, StageTimings, Trace};
use frodo_sim::{native, CostModel};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let native_requested = args.iter().any(|a| a == "--native");
    let ledger_path = args
        .windows(2)
        .find(|w| w[0] == "--ledger")
        .map(|w| w[1].clone());
    let trace = Trace::new();
    let service = CompileService::with_defaults();
    let (suite, batch) = programs_via_service_traced(&service, &trace);
    let gcc = CostModel::x86_gcc();
    let clang = CostModel::x86_clang();

    println!("Table 2: Code execution duration on x86 (GCC and Clang profiles),");
    println!("{PAPER_ITERS} iterations, cost-model estimate.");
    println!();
    let header = "Simulink   DFSynth    HCG        Frodo";
    println!("{:<14} | {header} | {header}", "Model");
    println!("{:<14} | {:^42} | {:^42}", "", "GCC", "Clang");
    println!("{}", "-".repeat(105));
    for entry in &suite {
        let cell = |cm: &CostModel, style: GeneratorStyle| {
            let p = &entry
                .programs
                .iter()
                .find(|(s, _)| *s == style)
                .expect("style present")
                .1;
            fmt_seconds(duration_seconds(cm, p))
        };
        let row = |cm: &CostModel| {
            GeneratorStyle::ALL
                .iter()
                .map(|&s| format!("{:<10}", cell(cm, s)))
                .collect::<String>()
        };
        println!("{:<14} | {} | {}", entry.name, row(&gcc), row(&clang));
    }

    println!();
    println!("FRODO speedup ranges (paper: GCC 1.26–5.64× / 1.32–5.75× / 1.22–2.89×):");
    for cm in [&gcc, &clang] {
        let mut sim = (f64::MAX, f64::MIN);
        let mut df = (f64::MAX, f64::MIN);
        let mut hcg = (f64::MAX, f64::MIN);
        for entry in &suite {
            let (s, d, h) = frodo_bench::improvement(cm, &entry.programs);
            sim = (sim.0.min(s), sim.1.max(s));
            df = (df.0.min(d), df.1.max(d));
            hcg = (hcg.0.min(h), hcg.1.max(h));
        }
        println!(
            "  {:<10} vs Simulink {:.2}x-{:.2}x, vs DFSynth {:.2}x-{:.2}x, vs HCG {:.2}x-{:.2}x",
            cm.label(),
            sim.0,
            sim.1,
            df.0,
            df.1,
            hcg.0,
            hcg.1
        );
    }

    println!();
    println!(
        "Suite compile cost per stage ({} jobs through the batch service):",
        batch.jobs.len()
    );
    let stages = StageTimings::from_trace(&trace);
    for (name, d) in stages.rows() {
        println!("  {name:<10} {}", fmt_duration(d));
    }
    println!("  {:<10} {}", "total", fmt_duration(stages.total()));

    if let Some(path) = ledger_path {
        let entry = batch
            .ledger_entry("bench:table2", "auto", 0)
            .expect("table2 batch always runs traced");
        frodo_obs::append_entry(std::path::Path::new(&path), &entry)
            .expect("append --ledger entry");
        println!("appended ledger entry to {path}");
    }

    if native_requested {
        if !native::gcc_available() {
            eprintln!("\n--native requested but gcc is not available on this host");
            return;
        }
        println!();
        println!("Native x86 gcc -O3 wall-clock (ns per iteration, {PAPER_ITERS} reps):");
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>12} {:>10}",
            "Model", "Simulink", "DFSynth", "HCG", "Frodo", "speedup"
        );
        println!("{}", "-".repeat(78));
        for entry in &suite {
            let mut row = Vec::new();
            for (style, program) in &entry.programs {
                match native::compile_and_run(program, *style, PAPER_ITERS) {
                    Ok(r) => row.push(r.ns_per_iter),
                    Err(e) => {
                        eprintln!("{}/{style}: {e}", entry.name);
                        row.push(f64::NAN);
                    }
                }
            }
            // GeneratorStyle::ALL order: Simulink, DFSynth, HCG, Frodo
            let best_other = row[..3].iter().cloned().fold(f64::MAX, f64::min);
            println!(
                "{:<14} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>9.2}x",
                entry.name,
                row[0],
                row[1],
                row[2],
                row[3],
                best_other / row[3]
            );
        }
    }
}
