//! A minimal self-contained timing harness.
//!
//! The workspace builds with zero registry access, so the bench targets
//! cannot use Criterion; this module provides the small slice of it they
//! need: warmup, automatic iteration calibration, repeated samples, and a
//! median/min/max report on the monotonic clock. Output is one line per
//! benchmark in a stable machine-greppable shape:
//!
//! ```text
//! bench group/id median 1234 ns/iter (min 1200, max 1310, 15 samples x 1000 iters)
//! ```

use std::time::{Duration, Instant};

/// How long each calibrated sample should run.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);
/// Samples per benchmark.
const SAMPLES: usize = 15;
/// Iteration cap, so pathologically fast subjects don't spin forever
/// during calibration.
const MAX_ITERS: usize = 1_000_000;

/// One benchmark's aggregated measurement.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median over samples, nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
    /// Samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: usize,
}

/// Times `f`, auto-calibrating iterations so each sample runs for roughly
/// [`TARGET_SAMPLE`], then takes [`SAMPLES`] samples.
pub fn measure<F: FnMut()>(mut f: F) -> Measurement {
    // warmup + calibration: double until one batch clears the target
    let mut iters = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= TARGET_SAMPLE || iters >= MAX_ITERS {
            break;
        }
        iters = if elapsed.is_zero() {
            (iters * 8).min(MAX_ITERS)
        } else {
            let scale = TARGET_SAMPLE.as_secs_f64() / elapsed.as_secs_f64();
            ((iters as f64 * scale.clamp(1.5, 8.0)) as usize).min(MAX_ITERS)
        };
    }

    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    Measurement {
        median_ns: per_iter[per_iter.len() / 2],
        min_ns: per_iter[0],
        max_ns: per_iter[per_iter.len() - 1],
        samples: SAMPLES,
        iters,
    }
}

/// Measures `f` and prints the standard report line for `group/id`.
pub fn bench<F: FnMut()>(group: &str, id: &str, f: F) -> Measurement {
    let m = measure(f);
    println!(
        "bench {group}/{id} median {:.0} ns/iter (min {:.0}, max {:.0}, {} samples x {} iters)",
        m.median_ns, m.min_ns, m.max_ns, m.samples, m.iters
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_ordered_positive_stats() {
        let mut acc = 0u64;
        let m = measure(|| {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            std::hint::black_box(acc);
        });
        assert!(m.min_ns > 0.0);
        assert!(m.min_ns <= m.median_ns);
        assert!(m.median_ns <= m.max_ns);
        assert!(m.iters > 1);
    }
}
