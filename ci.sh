#!/bin/sh
# Offline CI gate: the workspace must build, test, and lint with zero
# registry access (see DESIGN.md §4 — no external crates).
set -eux

cargo build --release --offline
cargo test -q --offline
cargo test -q --workspace --offline
# --all-targets keeps the harness-less bench targets compiling too
cargo clippy --all-targets --offline -- -D warnings

# frodo-obs must stay dependency-free: its cargo tree is exactly one line
test "$(cargo tree -p frodo-obs --offline --edges normal | wc -l)" -eq 1

# the analysis hot-path bench must at least execute (1 quick pass per
# subject; real measurements are BENCH_pr3.json)
cargo bench -q -p frodo-bench --bench hotpath --offline -- --quick >/dev/null

# a traced compile of a Table-1 model emits parseable NDJSON covering
# every pipeline stage; --threads 1 pins the determinism-contract
# reference path (sequential engines, sequential emitter)
trace_out="$(mktemp)"
./target/release/frodo compile --threads 1 --trace "$trace_out" Kalman >/dev/null
for stage in parse flatten hash cache dfg iomap ranges classify lower emit; do
    grep -q "\"name\":\"$stage\"" "$trace_out"
done
# every line is one flat JSON object
if grep -qv '^{.*}$' "$trace_out"; then
    echo "malformed NDJSON line in $trace_out"
    exit 1
fi
rm -f "$trace_out"
