#!/bin/sh
# Offline CI gate: the workspace must build, test, and lint with zero
# registry access (see DESIGN.md §4 — no external crates).
set -eux

cargo build --release --offline
cargo test -q --offline
cargo test -q --workspace --offline
# --all-targets keeps the harness-less bench targets compiling too
cargo clippy --all-targets --offline -- -D warnings
