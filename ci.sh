#!/bin/sh
# Offline CI gate: the workspace must build, test, and lint with zero
# registry access (see DESIGN.md §4 — no external crates).
set -eux

cargo fmt --all -- --check

cargo build --release --offline
cargo test -q --offline
cargo test -q --workspace --offline
# --all-targets keeps the harness-less bench targets compiling too
cargo clippy --all-targets --offline -- -D warnings

# frodo-obs must stay dependency-free: its cargo tree is exactly one line
test "$(cargo tree -p frodo-obs --offline --edges normal | wc -l)" -eq 1

# the analysis hot-path bench must at least execute (1 quick pass per
# subject; real measurements are BENCH_pr3.json/BENCH_pr8.json)
cargo bench -q -p frodo-bench --bench hotpath --offline -- --quick >/dev/null

# a traced compile of a Table-1 model emits parseable NDJSON covering
# every pipeline stage; --threads 1 pins the determinism-contract
# reference path (sequential engines, sequential emitter); --verify
# turns the opt-in verify stage on so its span is covered too
trace_out="$(mktemp)"
./target/release/frodo compile --threads 1 --verify --analyze --trace "$trace_out" Kalman >/dev/null
for stage in parse flatten hash cache dfg iomap ranges classify lower verify analyze emit; do
    grep -q "\"name\":\"$stage\"" "$trace_out"
done
# every line is one flat JSON object
if grep -qv '^{.*}$' "$trace_out"; then
    echo "malformed NDJSON line in $trace_out"
    exit 1
fi

# counter determinism: two traced compiles of the same model must agree
# exactly on every deterministic counter (set-op stats, cache traffic,
# statement counts); --fail-over 0 turns wall-time gating off, so only
# counters are compared
trace_out2="$(mktemp)"
./target/release/frodo compile --threads 1 --verify --analyze --trace "$trace_out2" Kalman >/dev/null
./target/release/frodo obs diff "$trace_out" "$trace_out2" --fail-over 0

# the chrome-trace export of the same trace is one trace_event document
chrome_out="$(mktemp)"
./target/release/frodo obs export "$trace_out" --format chrome -o "$chrome_out"
grep -q '"traceEvents"' "$chrome_out"
./target/release/frodo obs export "$trace_out" --format collapsed | grep -q '^job:Kalman;ranges '
rm -f "$trace_out" "$trace_out2" "$chrome_out"

# perf-ledger regression gate: a fresh single-threaded batch of the
# Table-1 suite must be counter-identical to the committed baseline
# (LEDGER.ndjson); counters are model/code-derived, so this holds across
# hosts — wall times are informational only at --fail-over 0
ledger_out="$(mktemp)"
./target/release/frodo batch AudioProcess Decryption HighPass HT Kalman Back \
    Maintenance Maunfacture RunningDiff Simpson \
    --threads 1 --workers 1 --ledger-out "$ledger_out" >/dev/null
./target/release/frodo obs diff LEDGER.ndjson "$ledger_out" --fail-over 0
./target/release/frodo obs report "$ledger_out" >/dev/null
rm -f "$ledger_out"

# static verification gate: every benchmark model must lint clean of
# errors, and every compile must pass the range-soundness checker under
# all three range engines (no uninitialized reads, no OOB, outputs
# written exactly as demanded)
for model in AudioProcess Decryption HighPass HT Kalman Back \
    Maintenance Maunfacture RunningDiff Simpson; do
    ./target/release/frodo lint "$model" >/dev/null
    for engine in recursive iterative parallel; do
        ./target/release/frodo compile --no-cache --verify --threads 1 \
            --engine "$engine" "$model" >/dev/null
        # the SIMD/window-reuse modes must stay range-sound too: the
        # two-invocation checker treats stale ring-buffer state as poison
        ./target/release/frodo compile --no-cache --verify --threads 1 \
            --engine "$engine" --vectorize batch --window-reuse "$model" >/dev/null
    done
done

# dataflow-analysis gate: the injected-defect selftest must catch every
# planted bug, and every benchmark under every engine and vector mode —
# including the window-reuse ring-buffer lowering — must come out with
# zero findings: no numeric hazards (F2xx), no residual redundancy
# (F204), and a schedule proved race-free (no F3xx)
./target/release/frodo analyze --selftest >/dev/null
for model in AudioProcess Decryption HighPass HT Kalman Back \
    Maintenance Maunfacture RunningDiff Simpson; do
    for engine in recursive iterative parallel; do
        ./target/release/frodo analyze "$model" --engine "$engine" --gate >/dev/null
    done
    for mode in auto hints batch:8; do
        ./target/release/frodo analyze "$model" --engine parallel \
            --vectorize "$mode" --gate >/dev/null
    done
    ./target/release/frodo analyze "$model" --engine parallel \
        --window-reuse --gate >/dev/null
done
# ...while the Simulink-style baseline must trip the residual detector
# on a convolution benchmark: over-computation is real and detectable
if ./target/release/frodo analyze HT -s simulink --gate >/dev/null 2>&1; then
    echo "analyze gate failed to flag the over-computing baseline"
    exit 1
fi
./target/release/frodo analyze HT -s simulink --format json 2>/dev/null \
    | grep -q '"code":"F204"'

# sanitizer lane: the self-profiling native harness must run clean under
# AddressSanitizer and UndefinedBehaviorSanitizer (buffer sizing, ring
# indices, and the profiling hooks are all exercised); probed first since
# some toolchains ship without libasan
if command -v gcc >/dev/null 2>&1; then
    san_dir="$(mktemp -d)"
    printf 'int main(void){return 0;}\n' > "$san_dir/probe.c"
    if gcc -fsanitize=address,undefined -g -O1 -o "$san_dir/probe" \
        "$san_dir/probe.c" >/dev/null 2>&1 && "$san_dir/probe"; then
        for model in HT AudioProcess; do
            ./target/release/frodo build "$model" --profile --harness 5 \
                -o "$san_dir/harness.c"
            gcc -fsanitize=address,undefined -fno-sanitize-recover=all \
                -g -O1 -o "$san_dir/harness" "$san_dir/harness.c" -lm
            "$san_dir/harness" >/dev/null 2>&1
        done
        # and the full Table-1 suite via the calibrate path: every
        # benchmark's generated step function under ASan/UBSan
        ./target/release/frodo calibrate --native --sanitize --iters 2 \
            | grep -q "native-sanitized"
    else
        echo "NOTICE: gcc lacks -fsanitize=address,undefined support; skipping sanitizer lane"
    fi
    rm -rf "$san_dir"
else
    echo "NOTICE: no gcc on PATH; skipping sanitizer lane"
fi

# compile-daemon parity gate: the same jobs through a resident daemon
# must be counter-identical to a fresh one-shot batch (serve and batch
# record through the same trace schema); shutdown must drain, flush the
# daemon's ledger entry, and remove the socket file
serve_dir="$(mktemp -d)"
serve_sock="$serve_dir/serve.sock"
./target/release/frodo serve --socket "$serve_sock" --workers 1 \
    --ledger-out "$serve_dir/serve-ledger.ndjson" &
serve_pid=$!
# probe with a real request, not just the socket file: the file appears
# between the daemon's bind() and listen(), where connects still refuse
for _ in $(seq 1 200); do
    ./target/release/frodo client --socket "$serve_sock" status \
        >/dev/null 2>&1 && break
    sleep 0.05
done
test -S "$serve_sock"
./target/release/frodo client --socket "$serve_sock" batch Kalman HT \
    -s all --threads 1 >/dev/null
./target/release/frodo client --socket "$serve_sock" status \
    | grep -q '"completed":8'
./target/release/frodo client --socket "$serve_sock" shutdown \
    | grep -q '"type":"shutdown"'
wait "$serve_pid"
test ! -e "$serve_sock"
./target/release/frodo batch Kalman HT -s all --threads 1 --workers 1 \
    --ledger-out "$serve_dir/batch-ledger.ndjson" >/dev/null
./target/release/frodo obs diff "$serve_dir/batch-ledger.ndjson" \
    "$serve_dir/serve-ledger.ndjson" --fail-over 0
rm -rf "$serve_dir"

# SIMD-emission gate: batched output must be deterministic (two cold
# compiles byte-identical) and carry the hint surface (restrict-qualified
# pointers plus the ivdep pragma); the default mode must be byte-identical
# with and without an explicit --vectorize auto, preserving the
# pre-VectorMode emission exactly
simd_dir="$(mktemp -d)"
./target/release/frodo compile --no-cache --threads 1 --vectorize batch \
    AudioProcess -o "$simd_dir/batch1.c" >/dev/null
./target/release/frodo compile --no-cache --threads 1 --vectorize batch \
    AudioProcess -o "$simd_dir/batch2.c" >/dev/null
cmp "$simd_dir/batch1.c" "$simd_dir/batch2.c"
grep -q 'restrict' "$simd_dir/batch1.c"
grep -q 'explicit simd batch' "$simd_dir/batch1.c"
./target/release/frodo compile --no-cache --threads 1 --vectorize hints \
    AudioProcess -o "$simd_dir/hints.c" >/dev/null
grep -q 'ivdep' "$simd_dir/hints.c"
./target/release/frodo compile --no-cache --threads 1 \
    AudioProcess -o "$simd_dir/auto1.c" >/dev/null
./target/release/frodo compile --no-cache --threads 1 --vectorize auto \
    AudioProcess -o "$simd_dir/auto2.c" >/dev/null
cmp "$simd_dir/auto1.c" "$simd_dir/auto2.c"
! grep -q 'restrict' "$simd_dir/auto1.c"
# the batched emission must still be compilable C when a compiler exists
if command -v gcc >/dev/null 2>&1; then
    gcc -fsyntax-only -O0 "$simd_dir/batch1.c"
fi
rm -rf "$simd_dir"

# window-reuse gate: the delta-update rewrite must cut arch-independent
# FLOPs on the convolution-heavy benchmarks (ablation study 7, columns:
# model, rewritten, FLOPs scalar, FLOPs reuse, est. before, est. after)
ablation_out="$(mktemp)"
./target/release/ablation > "$ablation_out"
for model in AudioProcess HighPass; do
    line="$(sed -n '/Ablation 7/,$p' "$ablation_out" | grep "^$model ")"
    rewritten="$(echo "$line" | awk '{print $2}')"
    scalar_flops="$(echo "$line" | awk '{print $3}')"
    reuse_flops="$(echo "$line" | awk '{print $4}')"
    test "$rewritten" -ge 1
    test "$reuse_flops" -lt "$scalar_flops"
done
rm -f "$ablation_out"

# the SARIF rendering keeps the minimal schema code-scanning UIs need,
# for the model-lint families and the analyze (F2xx/F3xx/F204) families
sarif_out="$(mktemp)"
./target/release/frodo lint Kalman --format sarif -o "$sarif_out"
for key in '"version":"2.1.0"' '"\$schema"' '"name":"frodo-verify"' '"rules"'; do
    grep -q "$key" "$sarif_out"
done
./target/release/frodo analyze HT -s simulink --format sarif -o "$sarif_out" >/dev/null
for key in '"version":"2.1.0"' '"ruleId":"F204"' '"level":"warning"'; do
    grep -q "$key" "$sarif_out"
done
rm -f "$sarif_out"

# incremental-recompilation gate: the 2000-block synthetic cold, then the
# same model with one gain edited, through one compile session
# (`batch --incremental` writes one ledger entry per job). The edit must
# reuse >=90% of the region cache, recompile faster than the cold run,
# and stitch C byte-identical to a cold compile of the edited model.
inc_dir="$(mktemp -d)"
./target/release/frodo batch random:42:2000 random:42:2000:edit:1 \
    --incremental --threads 1 --ledger-out "$inc_dir/ledger.ndjson" \
    -o "$inc_dir/out" >/dev/null
./target/release/frodo obs report "$inc_dir/ledger.ndjson" \
    | grep -q 'random:42:2000:edit:1'
./target/release/frodo compile --no-cache --threads 1 \
    random:42:2000:edit:1 -o "$inc_dir/cold-edit.c" >/dev/null
cmp "$inc_dir/out/random_42_2000_edit_1_frodo.c" "$inc_dir/cold-edit.c"
region_hits="$(grep -o '"counter_region_hits":[0-9]*' "$inc_dir/ledger.ndjson" | tail -1 | cut -d: -f2)"
region_total="$(grep -o '"counter_region_total":[0-9]*' "$inc_dir/ledger.ndjson" | tail -1 | cut -d: -f2)"
test "$((region_hits * 10))" -ge "$((region_total * 9))"
cold_wall="$(grep -o '"wall_ns":[0-9]*' "$inc_dir/ledger.ndjson" | head -1 | cut -d: -f2)"
inc_wall="$(grep -o '"wall_ns":[0-9]*' "$inc_dir/ledger.ndjson" | tail -1 | cut -d: -f2)"
test "$inc_wall" -lt "$cold_wall"
rm -rf "$inc_dir"

# serve-daemon recompile parity: the same edit pair through a named
# session on a resident daemon must also reuse regions and answer with
# the session's protocol version
inc_sock_dir="$(mktemp -d)"
./target/release/frodo serve --socket "$inc_sock_dir/serve.sock" --workers 1 &
inc_serve_pid=$!
for _ in $(seq 1 200); do
    ./target/release/frodo client --socket "$inc_sock_dir/serve.sock" status \
        >/dev/null 2>&1 && break
    sleep 0.05
done
./target/release/frodo client --socket "$inc_sock_dir/serve.sock" recompile \
    random:42:400 --session ci-edit --threads 1 >/dev/null
./target/release/frodo client --socket "$inc_sock_dir/serve.sock" recompile \
    random:42:400:edit:1 --session ci-edit --threads 1 >/dev/null 2>"$inc_sock_dir/warm.err"
grep -q 'regions 3[0-9]/3[0-9] reused' "$inc_sock_dir/warm.err"
./target/release/frodo client --socket "$inc_sock_dir/serve.sock" status \
    | grep -q '"proto_version":4'

# live-metrics smoke on the same daemon, before any drain: three compile
# requests must land in the rolling per-verb latency window, with the
# histogram-derived percentile columns rendering real durations
for _ in 1 2 3; do
    ./target/release/frodo client --socket "$inc_sock_dir/serve.sock" \
        compile Kalman --threads 1 >/dev/null
done
./target/release/frodo client --socket "$inc_sock_dir/serve.sock" metrics \
    > "$inc_sock_dir/metrics.txt"
grep -q '^uptime ' "$inc_sock_dir/metrics.txt"
compile_window="$(awk '$1 == "compile" {print $2}' "$inc_sock_dir/metrics.txt")"
test "$compile_window" -ge 3
awk '$1 == "compile" {print $3}' "$inc_sock_dir/metrics.txt" | grep -Eq '^[0-9]'
awk '$1 == "compile" {print $4}' "$inc_sock_dir/metrics.txt" | grep -Eq '^[0-9]'

./target/release/frodo client --socket "$inc_sock_dir/serve.sock" shutdown >/dev/null
wait "$inc_serve_pid"
rm -rf "$inc_sock_dir"

# self-profiling emission gate: --profile compiles per-statement hooks
# and the NDJSON dumper into the generated C; the default emission must
# stay free of any profiling symbol
prof_dir="$(mktemp -d)"
./target/release/frodo compile --no-cache --threads 1 --profile \
    Kalman -o "$prof_dir/prof.c" >/dev/null
grep -q 'frodo_prof_dump' "$prof_dir/prof.c"
grep -q 'stmt_%d_%s' "$prof_dir/prof.c"
grep -q 'frodo_prof_kind' "$prof_dir/prof.c"
if command -v gcc >/dev/null 2>&1; then
    gcc -fsyntax-only -O0 "$prof_dir/prof.c"
fi
./target/release/frodo compile --no-cache --threads 1 \
    Kalman -o "$prof_dir/plain.c" >/dev/null
! grep -q 'frodo_prof' "$prof_dir/plain.c"
rm -rf "$prof_dir"

# cost-model calibration gate: the VM calibration must report a ratio
# for every exercised statement kind inside the committed bands, and
# append a label:"calibrate" ledger entry
calib_ledger="$(mktemp)"
./target/release/frodo calibrate --check CALIBRATION_BANDS.ndjson \
    --ledger-out "$calib_ledger" >/dev/null
grep -q '"label":"calibrate"' "$calib_ledger"
grep -q 'calib_fir_ratio_p50_x1000' "$calib_ledger"
rm -f "$calib_ledger"
